//! Simulation-world helpers shared by examples, integration tests and the
//! experiment harness.
//!
//! A [`SimWorld`] bundles everything the paper's evaluation environment
//! provides: a city, landmarks with HITS-inferred significance, a driver
//! population with trip histories, and LBSN check-ins. The consensus
//! driver preference defines the ground-truth best route per OD pair, so
//! experiments can measure accuracy exactly.

use cp_core::{Config, CoreError, CrowdPlanner};
use cp_crowd::{AnswerModel, CrowdDesk, Platform, PopulationParams, SharedCrowd, WorkerPopulation};
use cp_roadnet::{
    generate_city, generate_landmarks, City, CityParams, LandmarkGenParams, LandmarkId,
    LandmarkSet, NodeId, Path, RoadGraph, RoadNetError,
};
use cp_service::{CrowdServing, OracleFactory};
use cp_traj::{
    calibrate_path, generate_checkins, generate_trips, infer_significance, CalibrationParams,
    CheckIn, CheckInGenParams, DriverPreference, SignificanceParams, TripDataset, TripGenParams,
};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Scale presets for simulation worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 60-intersection city, 200 drivers — unit-test sized.
    Small,
    /// 400-intersection city, 400 drivers — example/integration sized.
    Medium,
    /// 1600-intersection city, 800 drivers — benchmark sized.
    Large,
}

/// A fully-generated simulation world.
pub struct SimWorld {
    /// The city.
    pub city: City,
    /// Landmarks (with latent fame driving the check-in generator).
    pub landmarks: LandmarkSet,
    /// HITS-inferred landmark significance, indexed by [`LandmarkId`].
    pub significance: Vec<f64>,
    /// Driver population + trip histories.
    pub trips: TripDataset,
    /// LBSN check-ins.
    pub checkins: Vec<CheckIn>,
    /// Calibration settings used throughout.
    pub calibration: CalibrationParams,
    /// Seed the world was built from.
    pub seed: u64,
    /// Lazily built shared handles (each clones the underlying data at
    /// most once, no matter how many planners/desks/factories are built
    /// from this world).
    arcs: SharedHandles,
}

/// One-time `Arc` copies of the world's owned data.
#[derive(Default)]
struct SharedHandles {
    graph: OnceLock<Arc<RoadGraph>>,
    landmarks: OnceLock<Arc<LandmarkSet>>,
    significance: OnceLock<Arc<Vec<f64>>>,
    trips: OnceLock<Arc<Vec<cp_traj::Trip>>>,
}

impl SimWorld {
    /// Builds a world at the given scale, deterministically from `seed`.
    pub fn build(scale: Scale, seed: u64) -> Result<SimWorld, RoadNetError> {
        let (city_params, lm_count, trip_params, checkin_params) = match scale {
            Scale::Small => (
                CityParams::small(),
                120,
                TripGenParams::default(),
                CheckInGenParams::default(),
            ),
            Scale::Medium => (
                CityParams::medium(),
                300,
                TripGenParams {
                    drivers: 900,
                    trips_per_driver: 20,
                    heterogeneity: 0.12,
                    ..TripGenParams::default()
                },
                CheckInGenParams {
                    users: 300,
                    ..CheckInGenParams::default()
                },
            ),
            Scale::Large => (
                CityParams::large(),
                800,
                TripGenParams {
                    drivers: 800,
                    trips_per_driver: 12,
                    ..TripGenParams::default()
                },
                CheckInGenParams {
                    users: 600,
                    ..CheckInGenParams::default()
                },
            ),
        };
        let city = generate_city(&city_params, seed)?;
        let landmarks = generate_landmarks(
            &city.graph,
            &LandmarkGenParams {
                count: lm_count,
                ..LandmarkGenParams::default()
            },
            seed,
        );
        let trips = generate_trips(&city.graph, &trip_params, seed)?;
        let checkins = generate_checkins(&city.graph, &landmarks, &checkin_params, seed);
        let calibration = CalibrationParams::default();
        let significance = infer_significance(
            &city.graph,
            &landmarks,
            &checkins,
            &trips,
            &calibration,
            &SignificanceParams::default(),
        );
        Ok(SimWorld {
            city,
            landmarks,
            significance,
            trips,
            checkins,
            calibration,
            seed,
            arcs: SharedHandles::default(),
        })
    }

    /// The ground-truth best route for an OD pair: the consensus
    /// experienced-driver preference.
    pub fn ground_truth_route(&self, from: NodeId, to: NodeId) -> Result<Path, RoadNetError> {
        DriverPreference::consensus().preferred_route(&self.city.graph, from, to)
    }

    /// The crowd-knowledge oracle for an OD pair: answers "does the best
    /// route pass landmark l?" from the ground truth.
    pub fn oracle(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<impl Fn(LandmarkId) -> bool + '_, RoadNetError> {
        let truth = self.ground_truth_route(from, to)?;
        let on_route: HashSet<LandmarkId> =
            calibrate_path(&self.city.graph, &self.landmarks, &truth, &self.calibration)
                .into_iter()
                .collect();
        Ok(move |l: LandmarkId| on_route.contains(&l))
    }

    /// Whether `path` matches the ground-truth best route for its own
    /// endpoints, using the calibrated landmark view (the paper's notion
    /// of route identity at human resolution).
    pub fn is_best(&self, path: &Path) -> bool {
        let Ok(truth) = self.ground_truth_route(path.source(), path.destination()) else {
            return false;
        };
        if *path == truth {
            return true;
        }
        // Landmark-level identity: indistinguishable to a human.
        let a = calibrate_path(&self.city.graph, &self.landmarks, path, &self.calibration);
        let b = calibrate_path(&self.city.graph, &self.landmarks, &truth, &self.calibration);
        a == b
    }

    /// Packages this world's graph and trips into an owned, shareable
    /// serving world for the `cp-service` layer (clones both once; the
    /// returned `Arc<World>` is self-contained and `'static`, ready for
    /// `RouteService::new` or `Platform::register_city`).
    pub fn service_world(&self) -> std::sync::Arc<cp_service::World> {
        std::sync::Arc::new(cp_service::World::new(
            self.city.graph.clone(),
            self.trips.trips.clone(),
        ))
    }

    /// A shared handle to this world's road graph (the graph is cloned
    /// once, on first call; later calls clone the `Arc`).
    pub fn graph_arc(&self) -> Arc<RoadGraph> {
        Arc::clone(
            self.arcs
                .graph
                .get_or_init(|| Arc::new(self.city.graph.clone())),
        )
    }

    /// A shared handle to this world's landmarks (cloned once, cached).
    pub fn landmarks_arc(&self) -> Arc<LandmarkSet> {
        Arc::clone(
            self.arcs
                .landmarks
                .get_or_init(|| Arc::new(self.landmarks.clone())),
        )
    }

    /// A shared handle to this world's significance scores (cloned once,
    /// cached).
    pub fn significance_arc(&self) -> Arc<Vec<f64>> {
        Arc::clone(
            self.arcs
                .significance
                .get_or_init(|| Arc::new(self.significance.clone())),
        )
    }

    /// A shared handle to this world's trips (cloned once, cached).
    pub fn trips_arc(&self) -> Arc<Vec<cp_traj::Trip>> {
        Arc::clone(
            self.arcs
                .trips
                .get_or_init(|| Arc::new(self.trips.trips.clone())),
        )
    }

    /// Builds an owned, `Send + 'static` [`CrowdPlanner`] over this
    /// world, resolving its crowd tasks through `desk`.
    pub fn owned_planner(
        &self,
        desk: Arc<dyn CrowdDesk>,
        cfg: Config,
    ) -> Result<CrowdPlanner, CoreError> {
        CrowdPlanner::new(
            self.graph_arc(),
            self.landmarks_arc(),
            self.significance_arc(),
            self.trips_arc(),
            desk,
            cfg,
        )
    }

    /// Builds a warmed-up, `Arc`-shareable crowd desk for this world: a
    /// [`SharedCrowd`] whose per-worker outstanding-task count is hard
    /// capped at `max_outstanding` across all concurrent resolvers.
    pub fn shared_crowd(
        &self,
        workers: usize,
        warmup_rounds: usize,
        seed: u64,
        max_outstanding: u32,
    ) -> Arc<SharedCrowd> {
        Arc::new(SharedCrowd::new(
            self.platform(workers, warmup_rounds, seed),
            max_outstanding,
        ))
    }

    /// The ground-truth oracle factory for crowd-backed serving: owned
    /// (`'static`), it recomputes the consensus best route per request
    /// and answers "does it pass landmark l?".
    pub fn oracle_factory(&self) -> GroundTruthOracle {
        GroundTruthOracle {
            graph: self.graph_arc(),
            landmarks: self.landmarks_arc(),
            calibration: self.calibration,
        }
    }

    /// Bundles everything [`cp_service::Platform::register_city_crowd`]
    /// needs to serve this world with crowd-backed resolution on the
    /// resident pool.
    pub fn crowd_serving(
        &self,
        workers: usize,
        warmup_rounds: usize,
        seed: u64,
        max_outstanding: u32,
    ) -> CrowdServing {
        let shared = self.shared_crowd(workers, warmup_rounds, seed, max_outstanding);
        CrowdServing::new(
            self.landmarks_arc(),
            self.significance_arc(),
            Arc::clone(&shared) as Arc<dyn CrowdDesk>,
            Arc::new(self.oracle_factory()),
        )
        // The same desk, as its stateful side: platform snapshots then
        // capture the crowd (history, rewards, RNG) and its answers
        // reach the WAL when durability is on.
        .with_persist(shared)
    }

    /// Builds a warmed-up crowd platform for this world.
    pub fn platform(&self, workers: usize, warmup_rounds: usize, seed: u64) -> Platform {
        let pop = WorkerPopulation::generate(
            &self.city.graph,
            &PopulationParams {
                workers,
                ..PopulationParams::default()
            },
            seed,
        );
        let mut platform = Platform::new(pop, AnswerModel::default(), seed);
        platform.warm_up(&self.landmarks, warmup_rounds);
        platform
    }

    /// Deterministic pseudo-random OD pairs with both endpoints distinct,
    /// at least `min_grid_dist` grid cells apart (so requests are real
    /// journeys, not next-door hops).
    pub fn request_stream(
        &self,
        count: usize,
        min_grid_dist: usize,
        seed: u64,
    ) -> Vec<(NodeId, NodeId)> {
        let rows = self.city.params.rows;
        let cols = self.city.params.cols;
        let mut out = Vec::with_capacity(count);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        while out.len() < count {
            let a = (next() as usize) % (rows * cols);
            let b = (next() as usize) % (rows * cols);
            if a == b {
                continue;
            }
            let (ar, ac) = (a / cols, a % cols);
            let (br, bc) = (b / cols, b % cols);
            if ar.abs_diff(br) + ac.abs_diff(bc) < min_grid_dist {
                continue;
            }
            out.push((NodeId(a as u32), NodeId(b as u32)));
        }
        out
    }
}

/// Owned [`OracleFactory`]: stands in for the crowd's latent collective
/// knowledge by deriving, per request, which landmarks the
/// consensus-driver best route passes. Self-contained (`Arc` graph +
/// landmarks), so crowd-backed cities on a resident serving pool can
/// share one instance.
pub struct GroundTruthOracle {
    graph: Arc<RoadGraph>,
    landmarks: Arc<LandmarkSet>,
    calibration: CalibrationParams,
}

impl OracleFactory for GroundTruthOracle {
    fn oracle_for(&self, from: NodeId, to: NodeId) -> Box<dyn Fn(LandmarkId) -> bool + '_> {
        let on_route: HashSet<LandmarkId> = DriverPreference::consensus()
            .preferred_route(&self.graph, from, to)
            .map(|truth| {
                calibrate_path(&self.graph, &self.landmarks, &truth, &self.calibration)
                    .into_iter()
                    .collect()
            })
            .unwrap_or_default();
        Box::new(move |l| on_route.contains(&l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_builds() {
        let w = SimWorld::build(Scale::Small, 5).unwrap();
        assert_eq!(w.city.graph.node_count(), 60);
        assert_eq!(w.landmarks.len(), 120);
        assert_eq!(w.significance.len(), 120);
        assert!(!w.trips.trips.is_empty());
        assert!(!w.checkins.is_empty());
    }

    #[test]
    fn ground_truth_is_its_own_best() {
        let w = SimWorld::build(Scale::Small, 5).unwrap();
        let p = w.ground_truth_route(NodeId(0), NodeId(59)).unwrap();
        assert!(w.is_best(&p));
    }

    #[test]
    fn oracle_consistent_with_truth() {
        let w = SimWorld::build(Scale::Small, 5).unwrap();
        let oracle = w.oracle(NodeId(0), NodeId(59)).unwrap();
        let truth = w.ground_truth_route(NodeId(0), NodeId(59)).unwrap();
        let on = calibrate_path(&w.city.graph, &w.landmarks, &truth, &w.calibration);
        for l in w.landmarks.ids() {
            assert_eq!(oracle(l), on.contains(&l));
        }
    }

    #[test]
    fn request_stream_respects_distance() {
        let w = SimWorld::build(Scale::Small, 5).unwrap();
        let reqs = w.request_stream(50, 4, 9);
        assert_eq!(reqs.len(), 50);
        for (a, b) in reqs {
            assert_ne!(a, b);
            let (ar, ac) = w.city.grid_of(a);
            let (br, bc) = w.city.grid_of(b);
            assert!(ar.abs_diff(br) + ac.abs_diff(bc) >= 4);
        }
    }

    #[test]
    fn oracle_factory_matches_borrowed_oracle() {
        let w = SimWorld::build(Scale::Small, 5).unwrap();
        let factory = w.oracle_factory();
        let owned = factory.oracle_for(NodeId(0), NodeId(59));
        let borrowed = w.oracle(NodeId(0), NodeId(59)).unwrap();
        for l in w.landmarks.ids() {
            assert_eq!(owned(l), borrowed(l));
        }
    }

    #[test]
    fn owned_planner_serves_through_shared_desk() {
        let w = SimWorld::build(Scale::Small, 5).unwrap();
        let desk = w.shared_crowd(120, 10, 5, 5);
        let mut planner = w
            .owned_planner(desk.clone() as Arc<dyn CrowdDesk>, Config::default())
            .unwrap();
        let oracle = w.oracle(NodeId(0), NodeId(59)).unwrap();
        let rec = planner
            .handle_request(
                NodeId(0),
                NodeId(59),
                cp_traj::TimeOfDay::from_hours(8.0),
                &oracle,
            )
            .unwrap();
        assert_eq!(rec.path.source(), NodeId(0));
        assert!(desk.desk_stats().is_drained());
    }

    #[test]
    fn deterministic() {
        let a = SimWorld::build(Scale::Small, 11).unwrap();
        let b = SimWorld::build(Scale::Small, 11).unwrap();
        assert_eq!(a.significance, b.significance);
        assert_eq!(a.trips.trips.len(), b.trips.trips.len());
    }
}
