//! # CrowdPlanner
//!
//! A crowd-based route recommendation system — an open-source reproduction
//! of *CrowdPlanner: A Crowd-Based Route Recommendation System*
//! (Han Su et al., ICDE 2014; arXiv:1309.2687).
//!
//! Given an origin, a destination and a departure time, CrowdPlanner:
//!
//! 1. tries to **reuse a verified truth** from earlier requests;
//! 2. collects candidate routes from **five sources** — two simulated web
//!    map services (shortest / fastest) and three popular-route miners
//!    (MPR, LDR, MFP) over historical trajectories;
//! 3. lets the machine decide when candidates **agree** or when nearby
//!    verified truths make one candidate **confident**;
//! 4. otherwise runs a **crowdsourcing task**: a small, significant,
//!    discriminative set of landmark questions (ILS / GreedySelect),
//!    ordered by an ID3 tree, is answered by the top-k eligible workers
//!    (familiarity scores + PMF + Gaussian accumulation + rated voting),
//!    with early stopping and rewards.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`roadnet`] | road graph, synthetic city, routing, landmarks |
//! | [`traj`] | driver preferences, trips, calibration, check-ins, HITS significance |
//! | [`mining`] | MPR / MFP / LDR miners + simulated web services |
//! | [`crowd`] | simulated worker population, answers, response times |
//! | [`core`] | task generation, worker selection, truth reuse, orchestration |
//! | [`service`] | multi-city serving platform: owned worlds, submit/poll tickets with admission control, bounded sharded truth store, single-flight dedup, candidate cache |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use crowdplanner::prelude::*;
//! use std::sync::Arc;
//!
//! // Build a small world.
//! let city = generate_city(&CityParams::small(), 7).unwrap();
//! let landmarks = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 7);
//! let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
//! let checkins = generate_checkins(&city.graph, &landmarks, &CheckInGenParams::default(), 7);
//! let significance = infer_significance(
//!     &city.graph, &landmarks, &checkins, &trips,
//!     &CalibrationParams::default(), &SignificanceParams::default());
//!
//! // Crowd platform behind a shared, quota-capped desk: at most 5
//! // concurrently outstanding tasks per worker, no matter how many
//! // planners share it.
//! let population = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 7);
//! let mut platform = Platform::new(population, AnswerModel::default(), 7);
//! platform.warm_up(&landmarks, 5);
//! let desk: Arc<dyn CrowdDesk> = Arc::new(SharedCrowd::new(platform, 5));
//!
//! // The server: owned and `Send + 'static` — movable onto any thread.
//! let mut planner = CrowdPlanner::new(
//!     Arc::new(city.graph.clone()), Arc::new(landmarks.clone()),
//!     Arc::new(significance), Arc::new(trips.trips.clone()), desk,
//!     Config::default()).unwrap();
//!
//! // Ground-truth oracle for the simulated crowd.
//! let consensus = DriverPreference::consensus()
//!     .preferred_route(&city.graph, NodeId(0), NodeId(59)).unwrap();
//! let on_route: std::collections::HashSet<LandmarkId> = calibrate_path(
//!     &city.graph, &landmarks, &consensus, &CalibrationParams::default())
//!     .into_iter().collect();
//!
//! let rec = planner.handle_request(
//!     NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0),
//!     &|l| on_route.contains(&l)).unwrap();
//! assert_eq!(rec.path.source(), NodeId(0));
//! ```

pub use cp_core as core;
pub use cp_crowd as crowd;
pub use cp_mining as mining;
pub use cp_roadnet as roadnet;
pub use cp_service as service;
pub use cp_traj as traj;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use cp_core::{
        Config, CoreError, CrowdPlanner, EarlyStop, Evaluation, KnowledgeModel, LandmarkRoute,
        Recommendation, Resolution, SelectionAlgorithm, StopDecision, SystemStats, Task,
        TruthEntry, TruthStore,
    };
    pub use cp_crowd::{
        AnswerModel, AnswerTally, CrowdDesk, CrowdObserve, DeskStats, DirectDesk, Platform,
        PopulationParams, QuotaExhausted, Reservation, SharedCrowd, Worker, WorkerId,
        WorkerPopulation,
    };
    pub use cp_mining::{
        distinct_candidates, CandidateGenerator, CandidateRoute, LdrParams, MfpParams, MprParams,
        SourceKind, TransferNetwork,
    };
    pub use cp_roadnet::{
        edge_jaccard, generate_city, generate_landmarks, City, CityParams, Landmark,
        LandmarkCategory, LandmarkGenParams, LandmarkId, LandmarkSet, NodeId, Path, Point,
        RoadClass, RoadGraph,
    };
    pub use cp_service::{
        CityId, CrowdCost, CrowdResolver, CrowdServing, MachineResolver, MaintenanceConfig,
        MaintenanceReport, OracleFactory, PlatformConfig, PlatformSnapshot, Request, Resolver,
        RouteService, Served, ServedRoute, ServiceConfig, ServiceError, ShardedTruthStore,
        StatsSnapshot, Ticket, World,
    };
    // `cp_crowd::Platform` (the crowdsourcing worker platform) already
    // owns the bare name in this prelude; the multi-city serving
    // platform is re-exported under an unambiguous alias.
    pub use cp_service::Platform as ServingPlatform;
    pub use cp_traj::{
        calibrate_path, generate_checkins, generate_trips, infer_significance, CalibrationParams,
        CheckInGenParams, DriverId, DriverPreference, SignificanceParams, TimeOfDay, TripDataset,
        TripGenParams,
    };
}

pub mod sim;
