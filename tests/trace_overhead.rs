//! Allocation-overhead guard for the tracing subsystem: with
//! `TraceConfig::Off` the instrumentation must add **zero** allocations
//! to the serve path, and `Counters` must stay allocation-identical to
//! `Off` (histograms are fixed atomic arrays; only `Sampled` may
//! allocate, for its event buffers and ring).
//!
//! Measured with a counting `#[global_allocator]` over a warm
//! truth-hit workload (the hottest serve path: no mining, no
//! resolution), single-threaded so the counts are exact. This file
//! holds exactly one `#[test]` so no sibling test's allocations bleed
//! into the counted window.

use cp_roadnet::NodeId;
use cp_service::{
    ChaosConfig, DurabilityConfig, FaultPlan, FsyncPolicy, MachineResolver, Platform,
    PlatformConfig, Request, RouteService, Served, ServiceConfig, TraceConfig,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocations (and reallocations) while `COUNTING` is set;
/// delegates all memory management to the system allocator.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serves `rounds` warm truth-hit requests under the given tracing level
/// and returns how many allocations the counted window saw. The first
/// requests resolve and commit outside the window; the counted handles
/// all hit the truth store, so the workload is deterministic and
/// identical across levels.
fn warm_truth_hit_allocs(sim: &SimWorld, trace: TraceConfig, rounds: usize) -> u64 {
    let sw = sim.service_world();
    let mut cfg = ServiceConfig::strict_deterministic();
    cfg.trace = trace;
    let service = RouteService::new(Arc::clone(&sw), cfg.clone());
    let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
    let req = Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
    // Warm: resolve + commit once, then a few hits to settle any lazy
    // one-time allocation anywhere on the path.
    for _ in 0..4 {
        service.handle(req, &mut resolver).expect("warmup");
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut outcomes = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        outcomes.push(service.handle(req, &mut resolver).expect("warm hit"));
    }
    COUNTING.store(false, Ordering::SeqCst);
    for served in outcomes {
        assert_eq!(served.served, Served::TruthHit);
    }
    ALLOCS.load(Ordering::SeqCst)
}

/// Serves `rounds` warm truth-hit requests through a single-worker
/// `Platform` — optionally with durability configured — and returns the
/// counted window's allocations. Warm hits never reach a commit site,
/// so an idle durability runtime must leave the count untouched.
fn platform_truth_hit_allocs(
    sim: &SimWorld,
    durability: Option<DurabilityConfig>,
    chaos: Option<ChaosConfig>,
    rounds: usize,
) -> u64 {
    let platform = Platform::start(PlatformConfig {
        city_weight: 1,
        workers: 1,
        queue_capacity: 16,
        maintenance: None,
        batch: None,
        durability,
        chaos,
    });
    let id = platform.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    let req = Request::to_city(id, NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
    for _ in 0..4 {
        platform
            .submit_blocking(req)
            .expect("admitted")
            .wait()
            .expect("warmup");
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut outcomes = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        outcomes.push(
            platform
                .submit_blocking(req)
                .expect("admitted")
                .wait()
                .expect("warm hit"),
        );
    }
    COUNTING.store(false, Ordering::SeqCst);
    for served in outcomes {
        assert_eq!(served.served, Served::TruthHit);
    }
    platform.shutdown();
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn disabled_tracing_adds_zero_allocations_to_the_serve_path() {
    let sim = SimWorld::build(Scale::Small, 5).expect("world");
    const ROUNDS: usize = 64;
    let off = warm_truth_hit_allocs(&sim, TraceConfig::Off, ROUNDS);
    let counters = warm_truth_hit_allocs(&sim, TraceConfig::counters(), ROUNDS);
    let sampled = warm_truth_hit_allocs(&sim, TraceConfig::sampled(1, ROUNDS), ROUNDS);
    // `Off` is the untraced baseline; `Counters` must match it exactly —
    // per-stage histograms are pre-sized atomic arrays and lock timing
    // is try-lock-first, so neither may touch the allocator.
    assert_eq!(
        counters, off,
        "counter tracing must not allocate on the serve path"
    );
    // Sampling pays for what it keeps: event buffers and ring entries.
    assert!(
        sampled > off,
        "sampling every call must allocate for its traces (off={off}, sampled={sampled})"
    );

    // The durability guard: whether the commit log is off or merely
    // idle (configured, but warm hits never commit), the platform serve
    // path must allocate identically — the off path is a single atomic
    // load, and the sink is only ever consulted at commit sites.
    let dir = std::env::temp_dir().join(format!("cp_alloc_guard_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plat_off = platform_truth_hit_allocs(&sim, None, None, ROUNDS);
    let plat_on = platform_truth_hit_allocs(
        &sim,
        Some(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never)),
        None,
        ROUNDS,
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        plat_on, plat_off,
        "an idle durability runtime must not allocate on the warm serve path"
    );

    // The chaos guard: an armed chaos engine whose fault plan is all
    // zeros must be invisible to the warm serve path — `roll` bails on
    // the rate check before touching anything, so the count must match
    // the chaos-free platform exactly.
    let plat_quiet_chaos = platform_truth_hit_allocs(
        &sim,
        None,
        Some(ChaosConfig::new(7).with_plan(FaultPlan::none())),
        ROUNDS,
    );
    assert_eq!(
        plat_quiet_chaos, plat_off,
        "a zero-rate chaos engine must not allocate on the warm serve path"
    );
}
