//! Multi-city platform integration test (the PR's acceptance bar):
//! two cities registered on one `Platform`, concurrent `submit` traffic
//! from four client threads against both, asserting
//!
//! (a) per-city statistics invariants hold,
//! (b) every served route is byte-identical to the same city's
//!     standalone sequential `RouteService` baseline under
//!     `strict_deterministic`, and
//! (c) `shutdown()` drains gracefully with every admitted ticket
//!     resolved exactly once.

use cp_service::{
    CityId, MachineResolver, Platform, PlatformConfig, Request, RouteService, ServiceConfig,
    ServiceError, Ticket,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use std::sync::{Arc, Mutex};

/// A skewed per-city stream: `distinct` OD/time keys × `repeats`.
fn city_stream(world: &SimWorld, distinct: usize, repeats: usize, seed: u64) -> Vec<Request> {
    let ods = world.request_stream(distinct, 2, seed);
    let mut requests = Vec::with_capacity(distinct * repeats);
    for _round in 0..repeats {
        for (i, &(from, to)) in ods.iter().enumerate() {
            let hour = 7.0 + (i % 4) as f64;
            requests.push(Request::new(from, to, TimeOfDay::from_hours(hour)));
        }
    }
    requests
}

#[test]
fn two_cities_four_client_threads_deterministic_drain() {
    let worlds = [
        SimWorld::build(Scale::Small, 5).expect("world A"),
        SimWorld::build(Scale::Small, 9).expect("world B"),
    ];
    let service_worlds = [worlds[0].service_world(), worlds[1].service_world()];
    let per_city: Vec<Vec<Request>> = vec![
        city_stream(&worlds[0], 60, 5, 1234),
        city_stream(&worlds[1], 60, 5, 4321),
    ];

    // Standalone sequential baselines, one per city.
    let mut baselines: Vec<Vec<cp_roadnet::Path>> = Vec::new();
    for (sw, requests) in service_worlds.iter().zip(&per_city) {
        let cfg = ServiceConfig::strict_deterministic();
        let service = RouteService::new(Arc::clone(sw), cfg.clone());
        let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
        baselines.push(
            requests
                .iter()
                .map(|&r| service.handle(r, &mut resolver).expect("baseline").path)
                .collect(),
        );
    }

    // One platform, both cities, a pool smaller than the client count.
    let platform = Platform::start(PlatformConfig {
        city_weight: 1,
        workers: 3,
        queue_capacity: 64,
        maintenance: None,
        batch: None,
        durability: None,
        chaos: None,
    });
    let ids: Vec<CityId> = service_worlds
        .iter()
        .map(|sw| platform.register_city(Arc::clone(sw), ServiceConfig::strict_deterministic()))
        .collect();
    assert_eq!(ids, vec![CityId(0), CityId(1)]);

    // The interleaved global stream: (city index, request index).
    let mixed: Vec<(usize, usize)> = {
        let mut mixed = Vec::new();
        let longest = per_city.iter().map(Vec::len).max().unwrap();
        for i in 0..longest {
            for (c, requests) in per_city.iter().enumerate() {
                if i < requests.len() {
                    mixed.push((c, i));
                }
            }
        }
        mixed
    };

    // Four client threads submit round-robin slices concurrently and
    // join their own tickets.
    let results: Mutex<Vec<Option<Result<cp_roadnet::Path, ServiceError>>>> =
        Mutex::new(vec![None; mixed.len()]);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let platform = &platform;
            let mixed = &mixed;
            let per_city = &per_city;
            let ids = &ids;
            let results = &results;
            s.spawn(move || {
                let mut tickets: Vec<(usize, Ticket)> = Vec::new();
                for (slot, &(c, i)) in mixed.iter().enumerate() {
                    if slot % 4 != t {
                        continue;
                    }
                    let mut req = per_city[c][i];
                    req.city = ids[c];
                    // Blocking submission: the queue is smaller than the
                    // stream, so clients ride the backpressure instead
                    // of shedding.
                    let ticket = platform.submit_blocking(req).expect("admitted");
                    assert_eq!(ticket.city(), ids[c]);
                    tickets.push((slot, ticket));
                }
                let mut out = Vec::with_capacity(tickets.len());
                for (slot, ticket) in tickets {
                    out.push((slot, ticket.wait().map(|served| served.path)));
                }
                let mut results = results.lock().unwrap();
                for (slot, res) in out {
                    assert!(
                        results[slot].replace(res).is_none(),
                        "ticket {slot} resolved twice"
                    );
                }
            });
        }
    });

    // (b) Byte-identical to each city's sequential baseline.
    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), mixed.len());
    for (slot, &(c, i)) in mixed.iter().enumerate() {
        let path = results[slot]
            .as_ref()
            .expect("every ticket resolved exactly once")
            .as_ref()
            .expect("request must succeed");
        assert_eq!(
            *path, baselines[c][i],
            "city {c}, request {i}: differs from its standalone sequential baseline"
        );
    }

    // (a) Per-city stats invariants.
    for (c, id) in ids.iter().enumerate() {
        let snap = platform.city_stats(*id).expect("registered city");
        assert!(snap.is_consistent(), "city {c}: {snap:?}");
        assert_eq!(snap.requests, per_city[c].len() as u64, "city {c}");
        assert_eq!(snap.errors, 0, "city {c}");
        // Exactly one resolution per distinct key, everything else
        // served by reuse or dedup.
        assert_eq!(snap.resolved, 60, "city {c}");
        assert_eq!(
            snap.truth_hits + snap.dedup_hits,
            (per_city[c].len() - 60) as u64,
            "city {c}"
        );
    }
    let agg = platform.stats();
    assert!(agg.is_consistent());
    assert_eq!(agg.admitted, mixed.len() as u64);
    assert_eq!(agg.rejected_busy, 0, "blocking submission never sheds");
    assert_eq!(
        agg.aggregate.requests,
        per_city.iter().map(Vec::len).sum::<usize>() as u64
    );

    // (c) Graceful drain: every ticket has been joined, so every
    // admitted job completed exactly once; shutdown must then return
    // (workers join) without hanging.
    assert_eq!(agg.completed, agg.admitted);
    platform.shutdown();
}

#[test]
fn shutdown_drains_unjoined_tickets_exactly_once() {
    // Submit a burst, join nothing, shut down immediately: the drain
    // must still resolve every admitted ticket exactly once.
    let world = SimWorld::build(Scale::Small, 5).expect("world");
    let sw = world.service_world();
    let platform = Platform::start(PlatformConfig {
        city_weight: 1,
        workers: 4,
        queue_capacity: 512,
        maintenance: None,
        batch: None,
        durability: None,
        chaos: None,
    });
    let id = platform.register_city(Arc::clone(&sw), ServiceConfig::strict_deterministic());
    let requests = city_stream(&world, 40, 3, 77);
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|&r| {
            let mut req = r;
            req.city = id;
            platform.submit_blocking(req).expect("admitted")
        })
        .collect();
    let admitted = platform.stats().admitted;
    assert_eq!(admitted, requests.len() as u64);
    platform.shutdown();
    for (i, ticket) in tickets.iter().enumerate() {
        assert!(ticket.is_done(), "ticket {i} left unresolved by the drain");
        assert!(ticket.try_wait().unwrap().is_ok(), "ticket {i} failed");
    }
}
