//! Batch-equivalence property tests (the PR's acceptance bar): under
//! `strict_deterministic` geometry and the pure `MachineResolver`,
//! serving a hot-spot request batch through the fused
//! `RouteService::serve_coalesced` path must produce **byte-identical
//! routes and truth-store contents** to serving the same requests one
//! at a time — across batch sizes 1..32, through the batching
//! `Platform` dispatcher at multiple worker counts, and — the PR-5
//! additions — with cross-bucket fusion, a **warm cross-batch
//! `MiningArtifactCache`** (including a mid-stream mining-state
//! generation bump) and the **adaptive** dispatch window.

use cp_service::{
    BatchConfig, MachineResolver, Platform, PlatformConfig, Request, RouteService, ServiceConfig,
    Ticket,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn sim() -> &'static SimWorld {
    static SIM: OnceLock<SimWorld> = OnceLock::new();
    SIM.get_or_init(|| SimWorld::build(Scale::Small, 5).expect("world"))
}

/// Materialises a pick list into a hot-spot request stream: two shared
/// origins (so origin-cell groups actually form), a destination pool,
/// and a few departure buckets; duplicates are likely by construction.
fn requests_from(picks: &[(usize, usize, usize)]) -> Vec<Request> {
    let sim = sim();
    let origins: Vec<_> = sim
        .request_stream(2, 2, 777)
        .into_iter()
        .map(|(from, _)| from)
        .collect();
    let dests: Vec<_> = sim
        .request_stream(12, 2, 778)
        .into_iter()
        .map(|(_, to)| to)
        .collect();
    picks
        .iter()
        .map(|&(o, d, h)| {
            Request::new(
                origins[o % origins.len()],
                dests[d % dests.len()],
                TimeOfDay::from_hours(7.0 + (h % 3) as f64),
            )
        })
        .filter(|r| r.from != r.to)
        .collect()
}

/// Serves `requests` one at a time on a fresh strict service and
/// returns (service, per-request paths).
fn sequential_baseline(requests: &[Request]) -> (RouteService, Vec<cp_roadnet::Path>) {
    let sw = sim().service_world();
    let cfg = ServiceConfig::strict_deterministic();
    let service = RouteService::new(Arc::clone(&sw), cfg.clone());
    let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
    let paths = requests
        .iter()
        .map(|&r| service.handle(r, &mut resolver).expect("baseline").path)
        .collect();
    (service, paths)
}

/// Asserts both services hold byte-identical truth-store contents for
/// the given request set: same entry count, and the entry every request
/// resolves to (exact key under strict geometry) carries the same path.
fn assert_same_truths(
    a: &RouteService,
    b: &RouteService,
    requests: &[Request],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.truths().len(), b.truths().len());
    let graph = a.world().graph();
    let core = &a.config().core;
    for req in requests {
        let dep = a.canonical_departure(req);
        let ea = a.truths().lookup(graph, req.from, req.to, dep, core);
        let eb = b.truths().lookup(graph, req.from, req.to, dep, core);
        match (ea, eb) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.path, y.path);
                prop_assert_eq!(x.from, y.from);
                prop_assert_eq!(x.to, y.to);
            }
            (None, None) => {}
            (x, y) => prop_assert!(
                false,
                "truth presence differs: {} vs {}",
                x.is_some(),
                y.is_some()
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One `serve_coalesced` call (any batch size in 1..32) returns the
    /// sequential routes and deposits the sequential truths.
    #[test]
    fn coalesced_batch_is_byte_identical_to_sequential(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 1..32),
    ) {
        let requests = requests_from(&picks);
        if requests.is_empty() {
            return Ok(());
        }
        let (baseline, expected) = sequential_baseline(&requests);

        let sw = sim().service_world();
        let cfg = ServiceConfig::strict_deterministic();
        let service = RouteService::new(Arc::clone(&sw), cfg.clone());
        let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
        let results = service.serve_coalesced(&requests, &mut resolver);
        prop_assert_eq!(results.len(), requests.len());
        for (i, res) in results.iter().enumerate() {
            let served = res.as_ref().expect("batched request must succeed");
            prop_assert_eq!(&served.path, &expected[i], "request {}", i);
        }
        let snap = service.stats();
        prop_assert!(snap.is_consistent(), "{:?}", snap);
        prop_assert_eq!(snap.requests, requests.len() as u64);
        prop_assert_eq!(snap.batched_requests, requests.len() as u64);
        prop_assert_eq!(snap.batch_max, requests.len() as u64);
        assert_same_truths(&baseline, &service, &requests)?;
    }

    /// The batching platform dispatcher (runs dequeued by origin cell)
    /// serves byte-identical routes at 1 and 4 workers.
    #[test]
    fn batching_platform_is_byte_identical_to_sequential(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 1..32),
    ) {
        let requests = requests_from(&picks);
        if requests.is_empty() {
            return Ok(());
        }
        let (_, expected) = sequential_baseline(&requests);
        let sw = sim().service_world();
        for workers in [1usize, 4] {
            let platform = Platform::start(PlatformConfig {
                workers,
                city_weight: 1,
                queue_capacity: 64,
                maintenance: None,
                batch: Some(BatchConfig::fixed(8, Duration::from_millis(2))),
                durability: None,
                chaos: None,
            });
            let id = platform.register_city(
                Arc::clone(&sw),
                ServiceConfig::strict_deterministic(),
            );
            let tickets: Vec<Ticket> = requests
                .iter()
                .map(|&r| {
                    let mut req = r;
                    req.city = id;
                    platform.submit_blocking(req).expect("admitted")
                })
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let served = ticket.wait().expect("served");
                prop_assert_eq!(
                    &served.path, &expected[i],
                    "workers {}, request {}", workers, i
                );
            }
            let snap = platform.stats();
            prop_assert!(snap.is_consistent(), "{:?}", snap);
            prop_assert_eq!(
                snap.batched_requests + snap.unbatched_requests,
                requests.len() as u64
            );
            prop_assert!(snap.aggregate.is_consistent(), "{:?}", snap.aggregate);
            platform.shutdown();
        }
    }

    /// The weighted two-city scheduler preserves byte-identity: two
    /// cities over the same world with uneven DRR weights (3:1), the
    /// same request stream submitted to both interleaved — every city's
    /// routes and truth store must match the sequential baseline
    /// exactly. DRR reorders dispatch *across* cities, never the
    /// within-city semantics.
    #[test]
    fn weighted_two_city_platform_is_byte_identical_to_sequential(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 1..32),
    ) {
        let requests = requests_from(&picks);
        if requests.is_empty() {
            return Ok(());
        }
        let (baseline, expected) = sequential_baseline(&requests);
        let sw = sim().service_world();
        for workers in [1usize, 4] {
            let platform = Platform::start(PlatformConfig {
                workers,
                city_weight: 1,
                queue_capacity: 128,
                maintenance: None,
                batch: Some(BatchConfig::adaptive(8, Duration::from_millis(2))),
                durability: None,
                chaos: None,
            });
            let heavy = platform.register_city(
                Arc::clone(&sw),
                ServiceConfig::strict_deterministic(),
            );
            let light = platform.register_city(
                Arc::clone(&sw),
                ServiceConfig::strict_deterministic(),
            );
            prop_assert!(platform.set_city_weight(heavy, 3));
            // The same stream into both cities, interleaved one by one.
            let mut heavy_tickets = Vec::new();
            let mut light_tickets = Vec::new();
            for &r in &requests {
                for (city, tickets) in
                    [(heavy, &mut heavy_tickets), (light, &mut light_tickets)]
                {
                    let mut req = r;
                    req.city = city;
                    tickets.push(platform.submit_blocking(req).expect("admitted"));
                }
            }
            for (city, tickets) in [(heavy, heavy_tickets), (light, light_tickets)] {
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let served = ticket.wait().expect("served");
                    prop_assert_eq!(
                        &served.path, &expected[i],
                        "city {}, workers {}, request {}", city, workers, i
                    );
                }
            }
            let snap = platform.stats();
            prop_assert!(snap.is_consistent(), "{:?}", snap);
            prop_assert_eq!(snap.per_city.len(), 2);
            prop_assert_eq!(snap.per_city[heavy.index()].weight, 3);
            prop_assert_eq!(snap.per_city[light.index()].weight, 1);
            for row in &snap.per_city {
                prop_assert_eq!(row.admitted, requests.len() as u64);
                prop_assert_eq!(row.rejected_busy, 0);
            }
            // Each city's truth store is entry-wise identical to the
            // sequential baseline, weights notwithstanding.
            assert_same_truths(
                &baseline,
                &platform.city_service(heavy).expect("registered"),
                &requests,
            )?;
            assert_same_truths(
                &baseline,
                &platform.city_service(light).expect("registered"),
                &requests,
            )?;
            platform.shutdown();
        }
    }

    /// Cross-bucket fusion over a warm cross-batch artifact cache stays
    /// byte-identical to sequential serving: the request stream is split
    /// into several coalesced batches served on ONE service (so later
    /// batches hit artifacts earlier batches cached), with a mining-
    /// state generation bump between two of them (cached artifacts must
    /// invalidate, not corrupt).
    #[test]
    fn warm_artifact_cache_with_generation_bump_is_byte_identical(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 2..32),
        split in 1usize..31,
        bump_first in any::<bool>(),
    ) {
        let requests = requests_from(&picks);
        if requests.len() < 2 {
            return Ok(());
        }
        let (baseline, expected) = sequential_baseline(&requests);

        let sw = sim().service_world();
        let cfg = ServiceConfig::strict_deterministic();
        let service = RouteService::new(Arc::clone(&sw), cfg.clone());
        let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
        let cut = split % (requests.len() - 1) + 1;
        let (first, second) = requests.split_at(cut);
        let mut results = service.serve_coalesced(first, &mut resolver);
        if bump_first {
            // Invalidate every cached artifact mid-stream; the second
            // batch must rebuild (and still match the baseline).
            sw.bump_generation();
        }
        results.extend(service.serve_coalesced(second, &mut resolver));
        prop_assert_eq!(results.len(), requests.len());
        for (i, res) in results.iter().enumerate() {
            let served = res.as_ref().expect("batched request must succeed");
            prop_assert_eq!(&served.path, &expected[i], "request {}", i);
        }
        let snap = service.stats();
        prop_assert!(snap.is_consistent(), "{:?}", snap);
        prop_assert!(
            snap.artifact_hits + snap.artifact_misses >= 1,
            "mining must flow through the artifact cache: {:?}", snap
        );
        if bump_first {
            prop_assert_eq!(snap.artifact_hits, 0,
                "a bumped generation admits no stale hit");
        }
        assert_same_truths(&baseline, &service, &requests)?;
    }

    /// The adaptive dispatcher (cell-keyed runs spanning time buckets,
    /// controller moving the window) serves byte-identical routes at 1
    /// and 4 workers.
    #[test]
    fn adaptive_platform_is_byte_identical_to_sequential(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 1..32),
    ) {
        let requests = requests_from(&picks);
        if requests.is_empty() {
            return Ok(());
        }
        let (_, expected) = sequential_baseline(&requests);
        let sw = sim().service_world();
        for workers in [1usize, 4] {
            let platform = Platform::start(PlatformConfig {
                workers,
                city_weight: 1,
                queue_capacity: 64,
                maintenance: None,
                batch: Some(BatchConfig::adaptive(8, Duration::from_millis(2))),
                durability: None,
                chaos: None,
            });
            let id = platform.register_city(
                Arc::clone(&sw),
                ServiceConfig::strict_deterministic(),
            );
            let tickets: Vec<Ticket> = requests
                .iter()
                .map(|&r| {
                    let mut req = r;
                    req.city = id;
                    platform.submit_blocking(req).expect("admitted")
                })
                .collect();
            for (i, ticket) in tickets.into_iter().enumerate() {
                let served = ticket.wait().expect("served");
                prop_assert_eq!(
                    &served.path, &expected[i],
                    "workers {}, request {}", workers, i
                );
            }
            let snap = platform.stats();
            prop_assert!(snap.is_consistent(), "{:?}", snap);
            prop_assert!(snap.batch_adaptive);
            prop_assert!(snap.batch_delay <= snap.batch_delay_ceiling);
            prop_assert!(snap.aggregate.is_consistent(), "{:?}", snap.aggregate);
            platform.shutdown();
        }
    }
}
