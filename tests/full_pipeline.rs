//! Cross-crate integration tests: the full CrowdPlanner pipeline on a
//! seeded world, exercising every module boundary at once.

use crowdplanner::prelude::*;
use crowdplanner::sim::{Scale, SimWorld};

fn world() -> SimWorld {
    SimWorld::build(Scale::Small, 1234).expect("world builds")
}

fn planner(w: &SimWorld, seed: u64) -> CrowdPlanner {
    planner_with(w, seed, Config::default())
}

fn planner_with(w: &SimWorld, seed: u64, cfg: Config) -> CrowdPlanner {
    let desk = w.shared_crowd(120, 15, seed, cfg.eta_quota);
    w.owned_planner(desk, cfg).expect("planner builds")
}

#[test]
fn every_request_gets_a_valid_route() {
    let w = world();
    let mut p = planner(&w, 1);
    for (a, b) in w.request_stream(25, 3, 42) {
        let oracle = w.oracle(a, b).expect("oracle");
        let rec = p
            .handle_request(a, b, TimeOfDay::from_hours(9.0), &oracle)
            .expect("request resolves");
        if rec.resolution == Resolution::ReusedTruth {
            // Reuse may serve a stored route whose endpoints lie within the
            // reuse radius of the request (that's its purpose).
            let cfg = p.config();
            let g = &w.city.graph;
            assert!(g.position(rec.path.source()).distance(&g.position(a)) <= cfg.reuse_radius);
            assert!(
                g.position(rec.path.destination()).distance(&g.position(b)) <= cfg.reuse_radius
            );
        } else {
            assert_eq!(rec.path.source(), a);
            assert_eq!(rec.path.destination(), b);
        }
        assert!(rec.path.is_simple(), "recommended routes are simple paths");
        assert!(rec.confidence >= 0.0 && rec.confidence <= 1.0);
    }
    let s = p.stats();
    assert_eq!(s.requests, 25);
    assert_eq!(
        s.reuse_hits + s.agreements + s.confident + s.crowd_tasks + s.fallbacks,
        25,
        "every request accounted for exactly once"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let w = world();
    let run = || {
        let mut p = planner(&w, 7);
        let mut out = Vec::new();
        for (a, b) in w.request_stream(10, 3, 9) {
            let oracle = w.oracle(a, b).unwrap();
            let rec = p
                .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
                .unwrap();
            out.push((
                rec.path.nodes().to_vec(),
                rec.resolution,
                rec.questions_asked,
            ));
        }
        out
    };
    assert_eq!(run(), run(), "same seeds, same answers");
}

#[test]
fn truth_store_grows_and_serves_repeats() {
    let w = world();
    let mut p = planner(&w, 3);
    let reqs = w.request_stream(8, 3, 5);
    for &(a, b) in &reqs {
        let oracle = w.oracle(a, b).unwrap();
        p.handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
    }
    let truths_after_first_pass = p.truths().len();
    assert_eq!(truths_after_first_pass, 8);
    // Second pass: everything is a reuse hit.
    for &(a, b) in &reqs {
        let oracle = w.oracle(a, b).unwrap();
        let rec = p
            .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        assert_eq!(rec.resolution, Resolution::ReusedTruth);
    }
    assert_eq!(
        p.truths().len(),
        truths_after_first_pass,
        "no duplicate truths"
    );
    assert_eq!(p.stats().reuse_hits, 8);
}

#[test]
fn crowd_costs_are_bounded_by_config() {
    let w = world();
    // Force the crowd on everything.
    let cfg = Config {
        agreement_similarity: 1.0,
        agreement_quorum: 1.0,
        eta_confidence: 1.0,
        reuse_radius: 0.0,
        ..Config::default()
    };
    let mut p = planner_with(&w, 11, cfg.clone());
    for (a, b) in w.request_stream(12, 3, 13) {
        let oracle = w.oracle(a, b).unwrap();
        let rec = p
            .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        assert!(rec.workers_asked <= cfg.k_workers);
    }
}

#[test]
fn rewards_flow_to_participating_workers() {
    let w = world();
    let cfg = Config {
        agreement_similarity: 1.0,
        agreement_quorum: 1.0,
        eta_confidence: 1.0,
        reuse_radius: 0.0,
        ..Config::default()
    };
    let mut p = planner_with(&w, 17, cfg);
    let mut crowd_seen = false;
    for (a, b) in w.request_stream(12, 3, 19) {
        let oracle = w.oracle(a, b).unwrap();
        let rec = p
            .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        if rec.resolution == Resolution::Crowd {
            crowd_seen = true;
        }
    }
    if crowd_seen {
        let earned: f64 = p
            .desk()
            .population()
            .ids()
            .map(|wk| p.desk().points(wk))
            .sum();
        assert!(earned > 0.0, "crowd work must be rewarded");
    }
    // Quotas must be fully released after resolution.
    for wk in p.desk().population().ids() {
        assert_eq!(p.desk().outstanding(wk), 0);
    }
    assert!(
        p.desk().desk_stats().is_drained(),
        "every reservation settled exactly once"
    );
}

#[test]
fn no_eligible_workers_falls_back_instead_of_failing() {
    let w = world();
    let cfg = Config {
        agreement_similarity: 1.0,
        agreement_quorum: 1.0,
        eta_confidence: 1.0,
        reuse_radius: 0.0,
        task_deadline: 0.01,
        eta_time: 0.999,
        ..Config::default()
    };
    let desk = w.shared_crowd(5, 0, 23, cfg.eta_quota);
    let mut p = w.owned_planner(desk, cfg).unwrap();
    let (a, b) = w.request_stream(1, 4, 29)[0];
    let oracle = w.oracle(a, b).unwrap();
    let rec = p
        .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
        .unwrap();
    assert_eq!(rec.resolution, Resolution::Fallback);
    assert_eq!(rec.workers_asked, 0);
}

#[test]
fn accuracy_beats_worst_single_source() {
    // A sanity-level end-to-end accuracy claim kept deliberately loose so
    // it stays robust across seeds: the full system must clearly beat the
    // weakest source (WS-Shortest, which ignores driver preference
    // entirely).
    let w = world();
    let mut p = planner(&w, 31);
    let reqs = w.request_stream(30, 4, 37);
    let gen = CandidateGenerator::new(&w.city.graph, &w.trips.trips);
    let mut full = 0usize;
    let mut shortest = 0usize;
    for &(a, b) in &reqs {
        let oracle = w.oracle(a, b).unwrap();
        let rec = p
            .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
            .unwrap();
        if w.is_best(&rec.path) {
            full += 1;
        }
        let cands = gen.candidates(a, b, TimeOfDay::from_hours(8.0));
        if let Some(c) = cands
            .iter()
            .find(|c| c.source == SourceKind::ShortestWebService)
        {
            if w.is_best(&c.path) {
                shortest += 1;
            }
        }
    }
    assert!(
        full > shortest,
        "full system ({full}/30) must beat WS-Shortest ({shortest}/30)"
    );
}
