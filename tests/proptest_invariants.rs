//! Property-based tests over the combinatorial core: whatever the inputs,
//! the paper's invariants must hold.

use cp_core::taskgen::{build_question_tree, SelectionAlgorithm, SelectionProblem};
use cp_core::{is_discriminative, LandmarkRoute};
use crowdplanner::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Random landmark routes: `n` routes over `m` landmarks, as membership
/// bitmasks (so set semantics are exact by construction).
fn routes_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<LandmarkRoute>> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), m), n).prop_map(
        move |masks| {
            masks
                .into_iter()
                .map(|mask| {
                    LandmarkRoute::new(
                        mask.iter()
                            .enumerate()
                            .filter(|&(_, &b)| b)
                            .map(|(i, _)| LandmarkId(i as u32))
                            .collect(),
                    )
                })
                .collect()
        },
    )
}

fn sigs_strategy(m: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm's selection is discriminative, within the paper's
    /// size bounds, and never beats the exhaustive optimum.
    #[test]
    fn selection_invariants(
        routes in routes_strategy(4, 10),
        sigs in sigs_strategy(10),
    ) {
        let Ok(problem) = SelectionProblem::prepare(&routes, &sigs) else {
            // Identical/unseparable routes: correctly rejected.
            return Ok(());
        };
        let brute = SelectionAlgorithm::BruteForce.run(&problem, usize::MAX).unwrap();
        for alg in SelectionAlgorithm::ALL {
            let sel = alg.run(&problem, usize::MAX).unwrap();
            prop_assert!(is_discriminative(&routes, &sel.landmarks), "{}", alg.name());
            prop_assert!(sel.landmarks.len() >= problem.k_min());
            prop_assert!(sel.landmarks.len() <= problem.k_max());
            prop_assert!(sel.value <= brute.value + 1e-9, "{} beat the optimum", alg.name());
            // The reported value must match the landmarks reported.
            let recompute: f64 = sel
                .landmarks
                .iter()
                .map(|l| sigs[l.index()])
                .sum::<f64>() / sel.landmarks.len() as f64;
            prop_assert!((recompute - sel.value).abs() < 1e-9);
        }
        // GreedySelect's pruning is lossless: exact optimum.
        let greedy = SelectionAlgorithm::Greedy.run(&problem, usize::MAX).unwrap();
        prop_assert!((greedy.value - brute.value).abs() < 1e-9);
    }

    /// ID3 trees isolate every route under truthful answers, never ask a
    /// question twice on one path, and respect the library bound.
    #[test]
    fn question_tree_invariants(
        routes in routes_strategy(5, 9),
        sigs in sigs_strategy(9),
    ) {
        let Ok(problem) = SelectionProblem::prepare(&routes, &sigs) else {
            return Ok(());
        };
        let Ok(sel) = SelectionAlgorithm::Greedy.run(&problem, usize::MAX) else {
            return Ok(());
        };
        let questions: Vec<(LandmarkId, f64)> = sel
            .landmarks
            .iter()
            .map(|&l| (l, sigs[l.index()]))
            .collect();
        let weights = vec![1.0; routes.len()];
        let tree = build_question_tree(&routes, &weights, &questions);
        for (i, r) in routes.iter().enumerate() {
            let mut asked = Vec::new();
            let (got, path) = tree.walk_answers(|l| {
                asked.push(l);
                r.contains(l)
            });
            prop_assert_eq!(got, Some(i));
            prop_assert_eq!(&asked, &path);
            // No repeated questions on one walk.
            let mut dedup = asked.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), asked.len());
            prop_assert!(asked.len() <= questions.len());
        }
        let e = tree.expected_questions(&weights);
        prop_assert!(e <= questions.len() as f64 + 1e-9);
        prop_assert!(e >= (routes.len() as f64).log2() - 1e-9);
    }

    /// Discriminative-set monotonicity: supersets of discriminative sets
    /// stay discriminative; subsets of non-discriminative sets stay
    /// non-discriminative.
    #[test]
    fn discriminative_monotonicity(
        routes in routes_strategy(3, 8),
        mask in proptest::collection::vec(any::<bool>(), 8),
        extra in 0u32..8,
    ) {
        let selection: Vec<LandmarkId> = mask
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| LandmarkId(i as u32))
            .collect();
        if is_discriminative(&routes, &selection) {
            let mut bigger = selection.clone();
            if !bigger.contains(&LandmarkId(extra)) {
                bigger.push(LandmarkId(extra));
            }
            prop_assert!(is_discriminative(&routes, &bigger));
        } else if !selection.is_empty() {
            let smaller = &selection[..selection.len() - 1];
            // Removing an element can only lose separation power…
            // unless the removed element separated nothing, in which
            // case both verdicts agree. Either way the smaller set can
            // never *gain* discriminativeness:
            prop_assert!(!is_discriminative(&routes, smaller) || routes.len() < 2);
        }
    }
}

/// Two Small serving worlds, built once and shared by every proptest
/// case (world generation dominates the cost of a case).
fn shared_worlds() -> &'static [Arc<World>; 2] {
    static WORLDS: OnceLock<[Arc<World>; 2]> = OnceLock::new();
    WORLDS.get_or_init(|| {
        let build = |seed: u64| {
            let world = crowdplanner::sim::SimWorld::build(crowdplanner::sim::Scale::Small, seed)
                .expect("world");
            world.service_world()
        };
        [build(5), build(9)]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the request mix — including departures hugging the
    /// midnight bucket wrap — routes served through a multi-city
    /// `Platform` are identical to each registered city's standalone
    /// sequential `RouteService` under `strict_deterministic`.
    #[test]
    fn platform_matches_single_city_service(
        raw in proptest::collection::vec(
            (0u32..60, 0u32..59, 0.0f64..86_400.0, 0usize..2),
            1..32,
        ),
        near_midnight in proptest::collection::vec(
            (0u32..60, 0u32..59, -2.0f64..2.0, 0usize..2),
            0..8,
        ),
    ) {
        let worlds = shared_worlds();
        // Distinct endpoints by construction; fold the near-midnight
        // extras in (seconds offset around the day wrap).
        let requests: Vec<(usize, Request)> = raw
            .iter()
            .map(|&(a, b, t, c)| (c, a, b, t))
            .chain(near_midnight.iter().map(|&(a, b, dt, c)| {
                (c, a, b, (TimeOfDay::DAY + dt).rem_euclid(TimeOfDay::DAY))
            }))
            .map(|(c, a, b, t)| {
                let to = if b >= a { b + 1 } else { b };
                (c, Request::new(NodeId(a), NodeId(to), TimeOfDay::new(t)))
            })
            .collect();

        // Sequential per-city baselines.
        let cfg = ServiceConfig::strict_deterministic();
        let mut expected = Vec::with_capacity(requests.len());
        {
            let services: Vec<RouteService> = worlds
                .iter()
                .map(|w| RouteService::new(Arc::clone(w), cfg.clone()))
                .collect();
            let mut resolvers: Vec<MachineResolver> = worlds
                .iter()
                .map(|w| MachineResolver::new(w.graph_arc(), cfg.core.clone()))
                .collect();
            for &(c, req) in &requests {
                expected.push(
                    services[c]
                        .handle(req, &mut resolvers[c])
                        .expect("baseline")
                        .path,
                );
            }
        }

        // The same stream through one platform.
        let platform = ServingPlatform::start(PlatformConfig {
            city_weight: 1,
            workers: 3,
            queue_capacity: 64,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let ids: Vec<CityId> = worlds
            .iter()
            .map(|w| platform.register_city(Arc::clone(w), cfg.clone()))
            .collect();
        let batch: Vec<Request> = requests
            .iter()
            .map(|&(c, mut req)| {
                req.city = ids[c];
                req
            })
            .collect();
        let served = platform.serve_batch(&batch);
        for (i, result) in served.iter().enumerate() {
            let path = &result.as_ref().expect("platform request must succeed").path;
            prop_assert_eq!(
                path,
                &expected[i],
                "request {} differs from its city's sequential baseline",
                i
            );
        }
        for id in ids {
            prop_assert!(platform.city_stats(id).expect("registered").is_consistent());
        }
        let snap = platform.stats();
        prop_assert!(snap.is_consistent());
        platform.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Path metrics and route agreement are well-behaved on arbitrary
    /// generated cities.
    #[test]
    fn routing_invariants(seed in 0u64..500) {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let g = &city.graph;
        let a = NodeId((seed % 60) as u32);
        let b = NodeId(((seed * 7 + 13) % 60) as u32);
        if a == b {
            return Ok(());
        }
        let short = cp_roadnet::routing::dijkstra_path(g, a, b, cp_roadnet::routing::distance_cost(g)).unwrap();
        let fast = cp_roadnet::routing::dijkstra_path(g, a, b, cp_roadnet::routing::time_cost(g)).unwrap();
        // Metric optimality cross-checks.
        prop_assert!(short.length(g) <= fast.length(g) + 1e-9);
        prop_assert!(fast.travel_time(g) <= short.travel_time(g) + 1e-9);
        // Jaccard similarity is symmetric and bounded.
        let j1 = edge_jaccard(g, &short, &fast);
        let j2 = edge_jaccard(g, &fast, &short);
        prop_assert!((j1 - j2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j1));
        prop_assert!((edge_jaccard(g, &short, &short) - 1.0).abs() < 1e-12);
    }

    /// Calibration produces duplicate-free sequences of nearby landmarks,
    /// monotone in the anchor radius.
    #[test]
    fn calibration_invariants(seed in 0u64..200) {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), seed);
        let g = &city.graph;
        let path = cp_roadnet::routing::dijkstra_path(
            g, NodeId(0), NodeId(59), cp_roadnet::routing::distance_cost(g)).unwrap();
        let narrow = calibrate_path(g, &lms, &path, &CalibrationParams { anchor_radius: 100.0 });
        let wide = calibrate_path(g, &lms, &path, &CalibrationParams { anchor_radius: 250.0 });
        for id in &narrow {
            prop_assert!(wide.contains(id), "narrow ⊆ wide");
        }
        let mut d = wide.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), wide.len(), "no duplicates");
    }
}
