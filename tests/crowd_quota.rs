//! Crowd-quota integration tests (this PR's acceptance bar).
//!
//! 1. A **crowd-backed city on the resident `Platform` pool** (not the
//!    closed-batch `serve`) serves concurrent submits from 8 client
//!    threads. All of the city's per-worker planners share one
//!    [`SharedCrowd`] desk wrapped in a spy that records per-worker
//!    outstanding high-water marks and reservation settlement counts.
//!    Invariants proved:
//!      * no worker's outstanding count ever exceeds `max_outstanding`
//!        (spy high-water + the desk's own exact high-water);
//!      * every granted reservation is committed or released exactly
//!        once, and zero reservations are leaked after the drain.
//! 2. A proptest that the owned, desk-based `CrowdPlanner` answers
//!    **byte-identically** to the pre-redesign direct-platform
//!    behaviour ([`DirectDesk`] preserves the old borrowed planner's
//!    unconditional `assign`/`finish` calls verbatim) on a single
//!    thread — the reserve → ask → commit protocol and the `Arc`-owned
//!    world handles change nothing about the paper pipeline's output.

use cp_core::Config;
use cp_crowd::{
    AnswerTally, CrowdDesk, CrowdObserve, DeskStats, DirectDesk, QuotaExhausted, SharedCrowd,
    WorkerId, WorkerPopulation,
};
use cp_roadnet::{Landmark, LandmarkId};
use cp_service::{CrowdServing, Platform, PlatformConfig, Request, ServiceConfig, Ticket};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A desk that delegates everything to a [`SharedCrowd`] while
/// independently recording what it observes: per-worker outstanding
/// high-water marks sampled right after each grant, and
/// grant/reject/commit/release tallies.
struct SpyDesk {
    inner: Arc<SharedCrowd>,
    high_water: Mutex<Vec<u32>>,
    granted: AtomicU64,
    rejected: AtomicU64,
    committed: AtomicU64,
    released: AtomicU64,
}

impl SpyDesk {
    fn new(inner: Arc<SharedCrowd>) -> Self {
        let n = inner.population().len();
        SpyDesk {
            inner,
            high_water: Mutex::new(vec![0; n]),
            granted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            released: AtomicU64::new(0),
        }
    }
}

impl CrowdObserve for SpyDesk {
    fn population(&self) -> &WorkerPopulation {
        self.inner.population()
    }

    fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)> {
        self.inner.worker_history(worker)
    }

    fn response_times(&self, worker: WorkerId) -> Vec<f64> {
        self.inner.response_times(worker)
    }

    fn outstanding(&self, worker: WorkerId) -> u32 {
        self.inner.outstanding(worker)
    }

    fn points(&self, worker: WorkerId) -> f64 {
        self.inner.points(worker)
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }
}

impl CrowdDesk for SpyDesk {
    fn max_outstanding(&self) -> u32 {
        self.inner.max_outstanding()
    }

    fn try_reserve(&self, worker: WorkerId) -> Result<(), QuotaExhausted> {
        match self.inner.try_reserve(worker) {
            Ok(()) => {
                self.granted.fetch_add(1, Ordering::Relaxed);
                // Sampled after the grant: may momentarily read a
                // sibling's concurrent changes, but can never read past
                // the cap if the desk enforces it correctly.
                let seen = self.inner.outstanding(worker);
                let mut hw = self.high_water.lock().unwrap();
                hw[worker.index()] = hw[worker.index()].max(seen);
                Ok(())
            }
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn ask(&self, worker: WorkerId, landmark: &Landmark, truth: bool) -> (bool, f64) {
        self.inner.ask(worker, landmark, truth)
    }

    fn award(&self, worker: WorkerId, points: f64) {
        self.inner.award(worker, points);
    }

    fn commit(&self, worker: WorkerId) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.inner.commit(worker);
    }

    fn release(&self, worker: WorkerId) {
        self.released.fetch_add(1, Ordering::Relaxed);
        self.inner.release(worker);
    }

    fn desk_stats(&self) -> DeskStats {
        self.inner.desk_stats()
    }
}

/// A config that pushes every request through the crowd: no agreement
/// shortcut, no confidence shortcut, no reuse.
fn crowd_forcing_config() -> Config {
    let mut cfg = Config::default();
    cfg.agreement_similarity = 1.0;
    cfg.agreement_quorum = 1.0;
    cfg.eta_confidence = 1.0;
    cfg.reuse_radius = 0.0;
    cfg.reuse_time_window = 0.0;
    cfg
}

#[test]
fn eight_clients_one_shared_crowd_never_oversubscribe_a_worker() {
    const MAX_OUTSTANDING: u32 = 2;
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 3;

    let world = SimWorld::build(Scale::Small, 5).expect("world");
    let shared = Arc::new(SharedCrowd::new(world.platform(64, 10, 5), MAX_OUTSTANDING));
    let spy = Arc::new(SpyDesk::new(Arc::clone(&shared)));

    let platform = Platform::start(PlatformConfig {
        city_weight: 1,
        workers: 4,
        queue_capacity: 64,
        maintenance: None,
        batch: None,
        durability: None,
        chaos: None,
    });
    let mut service_cfg = ServiceConfig::default();
    service_cfg.core = crowd_forcing_config();
    let id = platform
        .register_city_crowd(
            world.service_world(),
            service_cfg,
            CrowdServing::new(
                world.landmarks_arc(),
                world.significance_arc(),
                Arc::clone(&spy) as Arc<dyn CrowdDesk>,
                Arc::new(world.oracle_factory()),
            ),
        )
        .expect("crowd city registers");

    // Distinct OD pairs so neither the sharded truth store nor the
    // single-flight table short-circuits the crowd pipeline.
    let ods = world.request_stream(CLIENTS * PER_CLIENT, 2, 99);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let platform = &platform;
            let ods = &ods;
            s.spawn(move || {
                let mut tickets: Vec<Ticket> = Vec::new();
                for i in 0..PER_CLIENT {
                    let (from, to) = ods[c * PER_CLIENT + i];
                    let req = Request::to_city(id, from, to, TimeOfDay::from_hours(7.0 + i as f64));
                    tickets.push(platform.submit_blocking(req).expect("admitted"));
                }
                for t in tickets {
                    t.wait().expect("crowd-backed request serves");
                }
            });
        }
    });

    let snap = platform.city_stats(id).expect("registered");
    assert!(snap.is_consistent(), "{snap:?}");
    assert_eq!(snap.requests, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.errors, 0);
    assert!(
        snap.crowd_workers > 0,
        "crowd-forced requests must engage workers: {snap:?}"
    );
    platform.shutdown();

    // The quota invariant: throughout the concurrent run, no worker ever
    // held more than MAX_OUTSTANDING tasks — by the spy's sampling and
    // by the desk's exact in-lock bookkeeping.
    let spy_hw = spy.high_water.lock().unwrap();
    for w in spy.population().ids() {
        assert!(
            spy_hw[w.index()] <= MAX_OUTSTANDING,
            "worker {w:?} observed above the cap"
        );
        assert!(
            shared.high_water(w) <= MAX_OUTSTANDING,
            "worker {w:?} exceeded the cap in exact bookkeeping"
        );
        assert_eq!(shared.outstanding(w), 0, "worker {w:?} leaked quota");
    }

    // Every reservation settled exactly once, none leaked after drain.
    let granted = spy.granted.load(Ordering::Relaxed);
    let committed = spy.committed.load(Ordering::Relaxed);
    let released = spy.released.load(Ordering::Relaxed);
    assert!(granted > 0, "the crowd was never consulted");
    assert_eq!(
        granted,
        committed + released,
        "every reservation is committed or released exactly once"
    );
    let stats = shared.desk_stats();
    assert!(stats.is_drained(), "{stats:?}");
    assert_eq!(stats.reserved, granted);
    assert_eq!(
        stats.quota_rejected,
        spy.rejected.load(Ordering::Relaxed),
        "spy and desk disagree on rejections"
    );
    // Desk contention is mirrored into the serving statistics.
    assert_eq!(snap.crowd_quota_rejections, stats.quota_rejected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The owned planner over a `SharedCrowd` (reserve → ask → commit,
    /// capped) answers byte-identically to the pre-redesign
    /// direct-platform behaviour (`DirectDesk`) on a single thread:
    /// identical platform seeds ⇒ identical paths, resolutions,
    /// confidences and crowd costs for every request.
    #[test]
    fn owned_planner_matches_direct_desk_byte_for_byte(
        seed in 0u64..500,
        picks in proptest::collection::vec((0usize..30, 0.0f64..24.0), 1..6),
    ) {
        let world = SimWorld::build(Scale::Small, 1234).expect("world");
        let cfg = Config::default();
        // max_outstanding ≥ η_#q: single-threaded, selection's quota
        // filter fires before the cap ever can, so the protocols only
        // differ in bookkeeping.
        let shared: Arc<dyn CrowdDesk> =
            Arc::new(SharedCrowd::new(world.platform(64, 10, seed), cfg.eta_quota));
        let direct: Arc<dyn CrowdDesk> =
            Arc::new(DirectDesk::new(world.platform(64, 10, seed)));
        let mut a = world.owned_planner(shared, cfg.clone()).expect("planner");
        let mut b = world.owned_planner(direct, cfg).expect("planner");

        let ods = world.request_stream(30, 3, 777);
        for &(i, hours) in &picks {
            let (from, to) = ods[i];
            let t = TimeOfDay::from_hours(hours);
            let oracle = world.oracle(from, to).expect("oracle");
            let ra = a.handle_request(from, to, t, &oracle).expect("request");
            let rb = b.handle_request(from, to, t, &oracle).expect("request");
            prop_assert_eq!(ra.path.nodes(), rb.path.nodes());
            prop_assert_eq!(ra.resolution, rb.resolution);
            prop_assert_eq!(ra.confidence.to_bits(), rb.confidence.to_bits());
            prop_assert_eq!(ra.questions_asked, rb.questions_asked);
            prop_assert_eq!(ra.workers_asked, rb.workers_asked);
        }
        prop_assert_eq!(a.stats().quota_rejections, 0);
        prop_assert!(a.desk().desk_stats().is_drained());
        prop_assert!(b.desk().desk_stats().is_drained());
    }
}

#[test]
fn quota_starved_city_with_strict_shedding_surfaces_crowd_starved() {
    let world = SimWorld::build(Scale::Small, 5).expect("world");
    let shared = Arc::new(SharedCrowd::new(world.platform(32, 10, 5), 1));
    // Saturate every worker up-front: reservations can never be granted.
    for w in shared.population().ids().collect::<Vec<WorkerId>>() {
        shared.try_reserve(w).unwrap();
    }
    let platform = Platform::start(PlatformConfig {
        city_weight: 1,
        workers: 2,
        queue_capacity: 16,
        maintenance: None,
        batch: None,
        durability: None,
        chaos: None,
    });
    let mut service_cfg = ServiceConfig::default();
    service_cfg.core = crowd_forcing_config();
    let mut crowd = CrowdServing::new(
        world.landmarks_arc(),
        world.significance_arc(),
        Arc::clone(&shared) as Arc<dyn CrowdDesk>,
        Arc::new(world.oracle_factory()),
    );
    crowd.fail_when_starved = true;
    let id = platform
        .register_city_crowd(world.service_world(), service_cfg, crowd)
        .expect("registers");

    let ods = world.request_stream(6, 2, 55);
    let mut starved = 0usize;
    for (i, &(from, to)) in ods.iter().enumerate() {
        let req = Request::to_city(id, from, to, TimeOfDay::from_hours(7.0 + i as f64));
        match platform.submit_blocking(req).expect("admitted").wait() {
            Err(cp_service::ServiceError::CrowdStarved { .. }) => starved += 1,
            // Requests whose candidates collapse to one landmark route
            // (or find no eligible workers) legitimately fall back
            // before any reservation is attempted.
            Ok(served) => assert_ne!(
                served.served,
                cp_service::Served::Resolved(cp_core::Resolution::Crowd),
                "a saturated desk cannot produce crowd verdicts"
            ),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let snap = platform.city_stats(id).expect("registered");
    assert_eq!(snap.errors, starved as u64);
    // Starvation is observable in the serving statistics even though
    // the starved requests never produced a route. (No reservations
    // bounce: selection, clamped to the desk cap, recognises the
    // saturation up front.)
    assert_eq!(snap.crowd_starved, starved as u64);
    platform.shutdown();
    assert!(
        starved > 0,
        "a fully saturated desk must shed at least one request"
    );
    // Selection (clamped to the desk cap) recognised saturation up
    // front, so no reservation beyond the saturating ones was ever
    // attempted — and none leaked.
    let stats = shared.desk_stats();
    assert_eq!(stats.reserved as usize, shared.population().len());
    assert_eq!(stats.committed + stats.released, 0);
}
