//! Trace-equivalence property tests (the observability PR's acceptance
//! bar): span-level tracing is *pure observation*. Under
//! `strict_deterministic` geometry and the pure `MachineResolver`,
//! serving any hot-spot request stream with tracing at **every level**
//! (`Off`, `Counters`, `Sampled`) must produce **byte-identical routes
//! and truth-store contents** to untraced sequential serving — through
//! the fused `serve_coalesced` path and through the batching `Platform`
//! dispatcher at 1 and 4 workers. Companion unit tests pin down the
//! exact reconciliation between per-stage histogram counts and the
//! request counters on a sequential machine-resolved workload.

use cp_service::{
    BatchConfig, MachineResolver, Platform, PlatformConfig, Request, RouteService, ServiceConfig,
    Stage, Ticket, TraceConfig,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn sim() -> &'static SimWorld {
    static SIM: OnceLock<SimWorld> = OnceLock::new();
    SIM.get_or_init(|| SimWorld::build(Scale::Small, 5).expect("world"))
}

/// The three instrumentation levels under test. `every: 1` samples every
/// call, so any non-empty workload must land traces in the ring.
fn trace_levels() -> [TraceConfig; 3] {
    [
        TraceConfig::Off,
        TraceConfig::counters(),
        TraceConfig::sampled(1, 64),
    ]
}

/// Materialises a pick list into a hot-spot request stream (same
/// construction as the batch-equivalence suite: two shared origins, a
/// destination pool, three departure buckets).
fn requests_from(picks: &[(usize, usize, usize)]) -> Vec<Request> {
    let sim = sim();
    let origins: Vec<_> = sim
        .request_stream(2, 2, 777)
        .into_iter()
        .map(|(from, _)| from)
        .collect();
    let dests: Vec<_> = sim
        .request_stream(12, 2, 778)
        .into_iter()
        .map(|(_, to)| to)
        .collect();
    picks
        .iter()
        .map(|&(o, d, h)| {
            Request::new(
                origins[o % origins.len()],
                dests[d % dests.len()],
                TimeOfDay::from_hours(7.0 + (h % 3) as f64),
            )
        })
        .filter(|r| r.from != r.to)
        .collect()
}

/// Serves `requests` one at a time on a fresh *untraced* strict service
/// and returns (service, per-request paths).
fn sequential_baseline(requests: &[Request]) -> (RouteService, Vec<cp_roadnet::Path>) {
    let sw = sim().service_world();
    let cfg = ServiceConfig::strict_deterministic();
    let service = RouteService::new(Arc::clone(&sw), cfg.clone());
    let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
    let paths = requests
        .iter()
        .map(|&r| service.handle(r, &mut resolver).expect("baseline").path)
        .collect();
    (service, paths)
}

/// Asserts both services hold byte-identical truth-store contents for
/// the given request set.
fn assert_same_truths(
    a: &RouteService,
    b: &RouteService,
    requests: &[Request],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.truths().len(), b.truths().len());
    let graph = a.world().graph();
    let core = &a.config().core;
    for req in requests {
        let dep = a.canonical_departure(req);
        let ea = a.truths().lookup(graph, req.from, req.to, dep, core);
        let eb = b.truths().lookup(graph, req.from, req.to, dep, core);
        match (ea, eb) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.path, y.path);
                prop_assert_eq!(x.from, y.from);
                prop_assert_eq!(x.to, y.to);
            }
            (None, None) => {}
            (x, y) => prop_assert!(
                false,
                "truth presence differs: {} vs {}",
                x.is_some(),
                y.is_some()
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `serve_coalesced` under every tracing level returns the untraced
    /// sequential routes and deposits the sequential truths; sampled
    /// tracing additionally lands complete traces in the ring.
    #[test]
    fn traced_coalesced_serving_is_byte_identical(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 1..32),
    ) {
        let requests = requests_from(&picks);
        if requests.is_empty() {
            return Ok(());
        }
        let (baseline, expected) = sequential_baseline(&requests);
        for level in trace_levels() {
            let sw = sim().service_world();
            let mut cfg = ServiceConfig::strict_deterministic();
            cfg.trace = level;
            let service = RouteService::new(Arc::clone(&sw), cfg.clone());
            let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
            let results = service.serve_coalesced(&requests, &mut resolver);
            prop_assert_eq!(results.len(), requests.len());
            for (i, res) in results.iter().enumerate() {
                let served = res.as_ref().expect("traced request must succeed");
                prop_assert_eq!(
                    &served.path, &expected[i],
                    "level {:?}, request {}", level, i
                );
            }
            let snap = service.stats();
            prop_assert!(snap.is_consistent(), "level {:?}: {:?}", level, snap);
            if level.enabled() {
                // Every resolution committed a truth and was attributed.
                let commits = snap.stages[Stage::Commit.index()].count;
                prop_assert_eq!(commits, snap.resolved, "level {:?}", level);
            } else {
                prop_assert!(snap.stages.iter().all(|s| s.count == 0));
            }
            if level.samples() {
                let traces = service.tracer().samples();
                prop_assert!(!traces.is_empty(), "every=1 must sample");
                for trace in &traces {
                    let attributed: Duration =
                        trace.spans.iter().map(|&(_, d)| d).sum();
                    prop_assert!(
                        attributed <= trace.total + Duration::from_millis(1),
                        "disjoint spans cannot exceed the sojourn: {:?}",
                        trace
                    );
                }
            }
            assert_same_truths(&baseline, &service, &requests)?;
        }
    }

    /// The batching platform dispatcher serves byte-identical routes at
    /// 1 and 4 workers under every tracing level, and the merged
    /// aggregate (stage histograms included) stays consistent.
    #[test]
    fn traced_platform_is_byte_identical(
        picks in proptest::collection::vec((0usize..2, 0usize..12, 0usize..3), 1..24),
    ) {
        let requests = requests_from(&picks);
        if requests.is_empty() {
            return Ok(());
        }
        let (_, expected) = sequential_baseline(&requests);
        let sw = sim().service_world();
        for workers in [1usize, 4] {
            for level in trace_levels() {
                let platform = Platform::start(PlatformConfig {
                    workers,
                    city_weight: 1,
                    queue_capacity: 64,
                    maintenance: None,
                    batch: Some(BatchConfig::fixed(8, Duration::from_millis(2))),
                    durability: None,
                    chaos: None,
                });
                let mut cfg = ServiceConfig::strict_deterministic();
                cfg.trace = level;
                let id = platform.register_city(Arc::clone(&sw), cfg);
                let tickets: Vec<Ticket> = requests
                    .iter()
                    .map(|&r| {
                        let mut req = r;
                        req.city = id;
                        platform.submit_blocking(req).expect("admitted")
                    })
                    .collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let served = ticket.wait().expect("served");
                    prop_assert_eq!(
                        &served.path, &expected[i],
                        "workers {}, level {:?}, request {}", workers, level, i
                    );
                }
                let snap = platform.stats();
                prop_assert!(snap.is_consistent(), "{:?}", snap);
                prop_assert!(snap.aggregate.is_consistent(), "{:?}", snap.aggregate);
                if level.enabled() {
                    // Every dispatched job's queue wait was attributed.
                    prop_assert_eq!(
                        snap.aggregate.stages[Stage::QueueWait.index()].count,
                        requests.len() as u64
                    );
                }
                let report = platform.trace_report();
                if level.samples() {
                    prop_assert!(report.total_traces() >= 1);
                    prop_assert!(report.to_json().contains("\"traces\""));
                }
                platform.shutdown();
            }
        }
    }
}

/// Per-stage histogram counts reconcile exactly with the request
/// counters on a sequential, machine-resolved, counter-traced workload:
/// one truth lookup per request plus one per leader double-check, one
/// cache probe per miss path, one mining span per cache miss, one
/// machine-resolve span and one commit per resolution.
#[test]
fn counter_histograms_reconcile_with_request_counters() {
    let sw = sim().service_world();
    let mut cfg = ServiceConfig::strict_deterministic();
    cfg.trace = TraceConfig::counters();
    let service = RouteService::new(Arc::clone(&sw), cfg.clone());
    let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
    let requests = requests_from(&[(0, 0, 0), (0, 1, 0), (1, 2, 1), (0, 0, 0), (1, 3, 2)]);
    assert!(!requests.is_empty());
    for &req in &requests {
        service.handle(req, &mut resolver).expect("served");
    }
    let snap = service.stats();
    assert!(snap.is_consistent(), "{snap:?}");
    let stage = |s: Stage| snap.stages[s.index()].count;
    // Sequential handles: every request probes the truth store once and
    // every leader (here: every non-truth-hit) double-checks once.
    let leaders = snap.requests - snap.truth_hits;
    assert_eq!(stage(Stage::TruthLookup), snap.requests + leaders);
    assert_eq!(
        stage(Stage::CacheLookup),
        snap.cache_hits + snap.cache_misses
    );
    assert_eq!(stage(Stage::Mining), snap.cache_misses);
    assert_eq!(stage(Stage::ResolveMachine), snap.resolved);
    assert_eq!(stage(Stage::ResolveCrowd), 0);
    assert_eq!(stage(Stage::Commit), snap.resolved);
    // No single-flight contention and no platform queue in this
    // sequential run.
    assert_eq!(stage(Stage::FlightWait), 0);
    assert_eq!(stage(Stage::QueueWait), 0);
    // Stage totals never exceed the end-to-end service time they are
    // carved out of (mean × count reconstructs the total sojourn, ±1 ns
    // of integer-division rounding per request).
    let attributed: Duration = snap.stages.iter().map(|s| s.total).sum();
    let sojourn = snap.latency.mean.mul_f64(snap.latency.count as f64)
        + Duration::from_nanos(snap.latency.count);
    assert!(attributed <= sojourn, "{snap:?}");
}

/// An untraced service keeps every stage histogram empty (the disabled
/// path records nothing), while the same workload under counters fills
/// them — guarding against accidental always-on instrumentation.
#[test]
fn disabled_tracing_records_no_stages() {
    let sw = sim().service_world();
    let cfg = ServiceConfig::strict_deterministic();
    assert!(!cfg.trace.enabled(), "tracing must default to off");
    let service = RouteService::new(Arc::clone(&sw), cfg.clone());
    let mut resolver = MachineResolver::new(sw.graph_arc(), cfg.core);
    for &req in &requests_from(&[(0, 0, 0), (1, 1, 1)]) {
        service.handle(req, &mut resolver).expect("served");
    }
    let snap = service.stats();
    assert!(snap.requests >= 1);
    assert!(snap.stages.iter().all(|s| s.count == 0), "{snap:?}");
    assert!(snap.locks.iter().all(|l| l.waits == 0), "{snap:?}");
    assert!(service.tracer().samples().is_empty());
}
