//! Fairness under asymmetric load (this PR's acceptance bar): a hot
//! city firehosing its own sharded queue — and carrying a *larger* DRR
//! weight — must not starve a cold city's trickle. The weighted
//! deficit-round-robin dispatcher grants the hot city its quantum but
//! rotates to the cold city's backlog every cycle, so the cold city's
//! p99 sojourn stays within a constant factor of its solo baseline,
//! and per-city admission means the firehose sheds `Busy` against its
//! own queue only.

use cp_service::{BatchConfig, CityId, Platform, PlatformConfig, Request, ServiceConfig};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn sim() -> &'static SimWorld {
    static SIM: OnceLock<SimWorld> = OnceLock::new();
    SIM.get_or_init(|| SimWorld::build(Scale::Small, 5).expect("world"))
}

/// Cold-city probes per measurement (each joined before the next, so
/// the cold queue never holds more than one job — `Busy` is impossible
/// unless admission leaks across cities).
const COLD_PROBES: usize = 40;

/// Fairness bound: loaded p99 ≤ `K` × solo p99 — with an absolute
/// floor, so scheduler-tick noise on a loaded CI box cannot flake the
/// ratio when the solo baseline is tens of microseconds.
const K: u32 = 20;
const FLOOR: Duration = Duration::from_millis(250);

fn p99(mut sojourns: Vec<Duration>) -> Duration {
    sojourns.sort();
    sojourns[(sojourns.len() * 99 / 100).min(sojourns.len() - 1)]
}

/// One platform, two cities over the same world, the hot city favoured
/// 4:1 — even a heavier hot tenant must not starve the cold deficit.
fn build(workers: usize) -> (Platform, CityId, CityId) {
    let sw = sim().service_world();
    let platform = Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 64,
        maintenance: None,
        batch: Some(BatchConfig::adaptive(8, Duration::from_millis(1))),
        durability: None,
        chaos: None,
    });
    let hot = platform.register_city(
        std::sync::Arc::clone(&sw),
        ServiceConfig::strict_deterministic(),
    );
    let cold = platform.register_city(sw, ServiceConfig::strict_deterministic());
    assert!(platform.set_city_weight(hot, 4));
    (platform, hot, cold)
}

/// Runs the cold trickle — submit, join, measure — and returns the
/// per-probe sojourns. Every submit must be admitted: the cold queue
/// has capacity at each one.
fn cold_trickle(platform: &Platform, cold: CityId) -> Vec<Duration> {
    sim()
        .request_stream(COLD_PROBES, 2, 97)
        .into_iter()
        .filter(|(from, to)| from != to)
        .map(|(from, to)| {
            let t0 = Instant::now();
            let ticket = platform
                .submit(Request::to_city(cold, from, to, TimeOfDay::from_hours(8.0)))
                .expect("a cold city with queue capacity must never shed");
            ticket.wait().expect("served");
            t0.elapsed()
        })
        .collect()
}

#[test]
fn cold_city_p99_is_bounded_while_hot_city_saturates() {
    for workers in [2usize, 8] {
        // Solo baseline: the trickle with the platform otherwise idle.
        let (platform, _hot, cold) = build(workers);
        let solo = cold_trickle(&platform, cold);
        platform.shutdown();

        // Loaded: two firehose threads keep the hot queue pinned at
        // capacity for the whole measurement.
        let (platform, hot, cold) = build(workers);
        let stop = AtomicBool::new(false);
        let loaded = std::thread::scope(|scope| {
            for seed in [13u64, 29] {
                let platform = &platform;
                let stop = &stop;
                scope.spawn(move || {
                    let ods = sim().request_stream(64, 2, seed);
                    let mut tickets = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        for &(from, to) in &ods {
                            if from == to {
                                continue;
                            }
                            if let Ok(t) = platform.submit(Request::to_city(
                                hot,
                                from,
                                to,
                                TimeOfDay::from_hours(8.0),
                            )) {
                                tickets.push(t);
                            }
                        }
                    }
                    for t in tickets {
                        let _ = t.wait();
                    }
                });
            }
            // Let the firehose establish its backlog before probing.
            std::thread::sleep(Duration::from_millis(50));
            let sojourns = cold_trickle(&platform, cold);
            stop.store(true, Ordering::Relaxed);
            sojourns
        });

        let snap = platform.stats();
        assert!(snap.is_consistent(), "workers {workers}: {snap:?}");
        let hot_row = &snap.per_city[hot.index()];
        let cold_row = &snap.per_city[cold.index()];
        assert!(
            hot_row.admitted > loaded.len() as u64,
            "the firehose must outpace the trickle: {snap:?}"
        );
        assert_eq!(
            cold_row.rejected_busy, 0,
            "cold-city sheds while its queue had capacity: {snap:?}"
        );
        assert_eq!(cold_row.admitted, loaded.len() as u64);
        assert_eq!(hot_row.weight, 4);
        assert_eq!(cold_row.weight, 1);
        platform.shutdown();

        let bound = (p99(solo.clone()) * K).max(FLOOR);
        let observed = p99(loaded.clone());
        assert!(
            observed <= bound,
            "workers {workers}: cold p99 {observed:?} exceeds bound {bound:?} \
             (solo p99 {:?})",
            p99(solo)
        );
    }
}
