//! Concurrency integration test for the serving layer: ≥1k requests
//! fanned across ≥4 worker threads on a `Scale::Small` world must
//! produce (a) internally consistent statistics — every request served
//! from exactly one of {truth store, dedup, fresh resolution} — and
//! (b) exactly the routes the sequential baseline produces, for every
//! request, at every thread count.

use cp_roadnet::Path;
use cp_service::{MachineResolver, Request, RouteService, Served, ServiceConfig};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use std::sync::Arc;

/// A skewed request stream: `distinct` OD/time keys, each repeated
/// `repeats` times, deterministically interleaved (runs of repeats are
/// spread out, so identical requests land on different workers).
fn skewed_stream(world: &SimWorld, distinct: usize, repeats: usize) -> Vec<Request> {
    let ods = world.request_stream(distinct, 2, 1234);
    let mut requests = Vec::with_capacity(distinct * repeats);
    for round in 0..repeats {
        for (i, &(from, to)) in ods.iter().enumerate() {
            // Same key every round: bucket-stable departure per OD.
            let hour = 7.0 + (i % 4) as f64;
            let _ = round;
            requests.push(Request::new(from, to, TimeOfDay::from_hours(hour)));
        }
    }
    requests
}

#[test]
fn concurrent_service_is_consistent_and_deterministic() {
    let world = SimWorld::build(Scale::Small, 5).expect("world");
    let sw = world.service_world();
    let distinct = 125;
    let repeats = 10;
    let requests = skewed_stream(&world, distinct, repeats);
    assert!(requests.len() >= 1000, "need ≥1k requests");

    // Sequential baseline: one worker.
    let base_cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::strict_deterministic()
    };
    let baseline_service = RouteService::new(Arc::clone(&sw), base_cfg.clone());
    let baseline: Vec<Path> = baseline_service
        .serve(&requests, |_| {
            MachineResolver::new(sw.graph_arc(), base_cfg.core.clone())
        })
        .into_iter()
        .map(|r| r.expect("sequential request must succeed").path)
        .collect();
    let base_snap = baseline_service.stats();
    assert!(base_snap.is_consistent());
    assert_eq!(base_snap.requests, requests.len() as u64);
    assert_eq!(base_snap.errors, 0);
    // One resolution per distinct key; everything else reused.
    assert_eq!(base_snap.resolved, distinct as u64);
    assert_eq!(
        base_snap.truth_hits + base_snap.dedup_hits,
        (requests.len() - distinct) as u64
    );

    for workers in [4usize, 8] {
        let cfg = ServiceConfig {
            workers,
            ..ServiceConfig::strict_deterministic()
        };
        let service = RouteService::new(Arc::clone(&sw), cfg.clone());
        let results = service.serve(&requests, |_| {
            MachineResolver::new(sw.graph_arc(), cfg.core.clone())
        });

        let snap = service.stats();
        assert_eq!(snap.requests, requests.len() as u64, "workers = {workers}");
        assert_eq!(snap.errors, 0, "workers = {workers}");
        // The accounting invariant: hits + dedups + resolutions == requests.
        assert!(snap.is_consistent(), "workers = {workers}: {snap:?}");
        // Exactly one resolution per distinct key: the flight table
        // collapses concurrent duplicates and the leader's double-check
        // against the truth store closes the completion race.
        assert_eq!(snap.resolved, distinct as u64, "workers = {workers}");
        assert_eq!(
            snap.truth_hits + snap.dedup_hits,
            (requests.len() - distinct) as u64,
            "workers = {workers}"
        );
        assert!(snap.latency.count == requests.len() as u64);

        // Determinism: every request's route equals the sequential one.
        for (i, result) in results.iter().enumerate() {
            let served = result.as_ref().expect("request must succeed");
            assert_eq!(
                served.path, baseline[i],
                "workers = {workers}, request {i}: route differs from sequential baseline"
            );
        }
    }
}

#[test]
fn dedup_collapses_a_thundering_herd() {
    let world = SimWorld::build(Scale::Small, 9).expect("world");
    let sw = world.service_world();
    let cfg = ServiceConfig {
        workers: 8,
        ..ServiceConfig::strict_deterministic()
    };
    let service = RouteService::new(Arc::clone(&sw), cfg.clone());
    // 400 identical requests, 8 workers, one key: exactly one resolution;
    // every other request is a dedup follower or a truth hit.
    let (from, to) = world.request_stream(1, 3, 7)[0];
    let requests: Vec<Request> = (0..400)
        .map(|_| Request::new(from, to, TimeOfDay::from_hours(8.0)))
        .collect();
    let results = service.serve(&requests, |_| {
        MachineResolver::new(sw.graph_arc(), cfg.core.clone())
    });
    let first_path = &results[0].as_ref().unwrap().path;
    for r in &results {
        let served = r.as_ref().unwrap();
        assert_eq!(&served.path, first_path);
        assert!(matches!(
            served.served,
            Served::TruthHit | Served::Deduplicated | Served::Resolved(_)
        ));
    }
    let snap = service.stats();
    assert_eq!(snap.requests, 400);
    assert_eq!(snap.resolved, 1, "single flight for a single key");
    assert_eq!(snap.truth_hits + snap.dedup_hits, 399);
    assert!(snap.is_consistent());
}
