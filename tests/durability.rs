//! Durability integration tests (this PR's acceptance bar).
//!
//! 1. **Equivalence proptest**: a crowd-backed city served with the
//!    resolution log on — optionally checkpointed mid-stream — is
//!    rebuilt entry-wise identically by `Platform::recover_from`
//!    (snapshot + log) and, when the log is untruncated, by the
//!    `replay_log` oracle: same truth store contents, same crowd answer
//!    history, response times, and generation. Runs at 1 and 4 workers.
//! 2. **Torn-tail crash consistency**: truncating the log at *every*
//!    byte boundary inside the final record recovers exactly the
//!    longest valid prefix — no panic, no partial record — both through
//!    `cp_durable::read_log` and through a full `recover_from`.
//! 3. **Kill-mid-snapshot**: a stale `snapshot.cps.tmp` left by a crash
//!    during checkpointing never shadows the previous good checkpoint.
//! 4. **Sequence re-seeding regression**: a platform recovered from a
//!    checkpointed directory continues allocating store sequence
//!    numbers strictly above everything it restored, and a second
//!    recovery sees the union of both serving phases.

use cp_core::Config;
use cp_crowd::{CrowdDesk, CrowdState};
use cp_service::{
    CityId, CrowdServing, DurabilityConfig, FsyncPolicy, Platform, PlatformConfig, Request,
    RouteService, ServiceConfig,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A config that pushes every request through the crowd: no agreement
/// shortcut, no confidence shortcut, no reuse.
fn crowd_forcing_config() -> Config {
    let mut cfg = Config::default();
    cfg.agreement_similarity = 1.0;
    cfg.agreement_quorum = 1.0;
    cfg.eta_confidence = 1.0;
    cfg.reuse_radius = 0.0;
    cfg.reuse_time_window = 0.0;
    cfg
}

/// A fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cp_durability_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_platform(workers: usize, dir: Option<&Path>) -> Platform {
    Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 64,
        maintenance: None,
        batch: None,
        durability: dir.map(|d| DurabilityConfig::new(d).with_fsync(FsyncPolicy::Never)),
        chaos: None,
    })
}

/// Serves `ods` one wave at a time (submit all, wait all) so every
/// resolution is committed — and therefore logged — before returning.
fn serve_wave(platform: &Platform, id: CityId, ods: &[(cp_roadnet::NodeId, cp_roadnet::NodeId)]) {
    let tickets: Vec<_> = ods
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| {
            let req = Request::to_city(id, from, to, TimeOfDay::from_hours(6.0 + i as f64 % 12.0));
            platform.submit_blocking(req).expect("admitted")
        })
        .collect();
    for t in tickets {
        t.wait().expect("request serves");
    }
}

/// A store's contents as comparable bytes, in sequence order.
fn truth_sig(svc: &RouteService) -> Vec<(u64, u32, u32, u64, u64, Vec<u32>)> {
    svc.truths()
        .export()
        .into_iter()
        .map(|(seq, e)| {
            (
                seq,
                e.from.0,
                e.to.0,
                e.departure.0.to_bits(),
                e.confidence.to_bits(),
                e.path.edges().iter().map(|id| id.0).collect(),
            )
        })
        .collect()
}

/// Registers a crowd-backed city whose desk state is reachable for
/// snapshot export and answer logging; returns the city and its desk.
fn register_crowd_city(
    platform: &Platform,
    sim: &SimWorld,
    seed: u64,
) -> (CityId, Arc<cp_crowd::SharedCrowd>) {
    let shared = sim.shared_crowd(48, 10, seed, 4);
    let mut service_cfg = ServiceConfig::default();
    service_cfg.core = crowd_forcing_config();
    let serving = CrowdServing::new(
        sim.landmarks_arc(),
        sim.significance_arc(),
        Arc::clone(&shared) as Arc<dyn CrowdDesk>,
        Arc::new(sim.oracle_factory()),
    )
    .with_persist(Arc::clone(&shared) as Arc<dyn CrowdState>);
    let id = platform
        .register_city_crowd(sim.service_world(), service_cfg, serving)
        .expect("crowd city registers");
    (id, shared)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// `recover_from` (snapshot + log) and the `replay_log` oracle each
    /// rebuild a crowd-backed platform entry-wise identically to the
    /// live one: truth store, answer history, response times and
    /// generation all match, with or without a mid-stream checkpoint,
    /// at 1 and at 4 workers.
    #[test]
    fn recovery_and_replay_rebuild_the_live_state(
        seed in 0u64..500,
        worker_pick in 0usize..2,
        checkpoint_mid in 0u8..2,
    ) {
        let workers = [1usize, 4][worker_pick];
        let checkpoint_mid = checkpoint_mid == 1;
        let dir = scratch_dir(&format!("equiv_{seed}_{workers}_{checkpoint_mid}"));
        let sim = SimWorld::build(Scale::Small, 1234).expect("world");
        let ods = sim.request_stream(16, 2, 900 + seed);

        // Live run, logging on.
        let live = durable_platform(workers, Some(&dir));
        let (id, desk) = register_crowd_city(&live, &sim, seed);
        serve_wave(&live, id, &ods[..8]);
        if checkpoint_mid {
            let watermark = live.checkpoint().expect("checkpoint");
            prop_assert!(watermark > 0, "8 crowd-forced requests must log events");
        }
        serve_wave(&live, id, &ods[8..]);
        live.sync_durable();
        let stats = live.durability_stats().expect("durability is on");
        prop_assert_eq!(stats.events_shed, 0, "nothing may be shed at this scale");
        let live_truths = truth_sig(&live.city_service(id).expect("registered"));
        let live_state = desk.export_state();
        let snap = live.city_stats(id).expect("registered");
        prop_assert!(snap.is_consistent(), "{:?}", snap);
        live.shutdown();
        prop_assert!(!live_truths.is_empty(), "the run must commit truths");
        prop_assert!(live_state.generation > 0, "the crowd must answer");

        // Warm restart: snapshot + log.
        let recovered = durable_platform(1, None);
        let (rid, rdesk) = register_crowd_city(&recovered, &sim, seed);
        let report = recovered.recover_from(&dir).expect("recovery");
        prop_assert_eq!(
            (report.truths_restored + report.truths_replayed) as usize,
            live_truths.len(),
            "every truth applied exactly once: {:?}",
            report
        );
        prop_assert_eq!(truth_sig(&recovered.city_service(rid).expect("registered")), live_truths.clone());
        let rstate = rdesk.export_state();
        prop_assert_eq!(rstate.generation, live_state.generation);
        prop_assert_eq!(rstate.history, live_state.history.clone());
        prop_assert_eq!(rstate.response_times, live_state.response_times.clone());
        recovered.shutdown();

        // Replay oracle: the log alone, from a cold store. Only valid
        // while the log is untruncated, i.e. when no checkpoint ran.
        if !checkpoint_mid {
            let replayed = durable_platform(1, None);
            let (pid, pdesk) = register_crowd_city(&replayed, &sim, seed);
            let report = replayed.replay_log(&dir).expect("replay");
            prop_assert_eq!(report.truths_replayed as usize, live_truths.len());
            prop_assert_eq!(
                truth_sig(&replayed.city_service(pid).expect("registered")),
                live_truths
            );
            let pstate = pdesk.export_state();
            prop_assert_eq!(pstate.generation, live_state.generation);
            prop_assert_eq!(pstate.history, live_state.history);
            prop_assert_eq!(pstate.response_times, live_state.response_times);
            replayed.shutdown();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncating the log at every byte boundary inside the final record
/// recovers exactly the records before it — the longest valid prefix —
/// with no panic and no partial record surfacing.
#[test]
fn torn_wal_tail_recovers_longest_valid_prefix() {
    let dir = scratch_dir("torn_tail");
    let sim = SimWorld::build(Scale::Small, 7).expect("world");
    let platform = durable_platform(2, Some(&dir));
    let id = platform.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    serve_wave(&platform, id, &sim.request_stream(10, 2, 41));
    platform.sync_durable();
    let live_truths = truth_sig(&platform.city_service(id).expect("registered"));
    platform.shutdown();

    let full = cp_durable::read_log(&dir).expect("full log reads");
    assert_eq!(
        full.len(),
        live_truths.len(),
        "one event per committed truth"
    );
    let n = full.len();
    assert!(n >= 2, "need at least two records to tear the last one");

    // Locate the segment that holds records and the final record's
    // byte span: header is 28 bytes, each frame is 8 + payload.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("dir lists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    let segment = segments
        .iter()
        .find(|p| std::fs::metadata(p).expect("meta").len() > 28)
        .expect("a non-empty segment")
        .clone();
    let bytes = std::fs::read(&segment).expect("segment reads");
    let mut pos = 28usize;
    let mut last_start = pos;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > bytes.len() {
            break;
        }
        last_start = pos;
        pos += 8 + len;
    }
    assert_eq!(
        pos,
        bytes.len(),
        "the untruncated segment ends on a frame boundary"
    );

    // Every strictly-partial cut of the final record: the reader keeps
    // exactly the first n-1 records.
    let scratch = scratch_dir("torn_tail_cut");
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let scratch_seg = scratch.join(segment.file_name().expect("name"));
    for cut in last_start..bytes.len() {
        std::fs::write(&scratch_seg, &bytes[..cut]).expect("truncated copy writes");
        let prefix = cp_durable::read_log(&scratch).expect("torn tail must not error");
        assert_eq!(prefix.len(), n - 1, "cut at byte {cut} of {}", bytes.len());
        for (got, want) in prefix.iter().zip(full.iter()) {
            assert_eq!(got.0, want.0, "prefix order preserved at cut {cut}");
        }
    }
    // And a full `recover_from` over a torn directory applies exactly
    // that prefix — no panic, no partial record.
    std::fs::write(
        &segment,
        &bytes[..last_start + (bytes.len() - last_start) / 2],
    )
    .expect("tearing the live dir");
    let fresh = durable_platform(1, None);
    let fid = fresh.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    let report = fresh.recover_from(&dir).expect("torn recovery");
    assert_eq!(report.truths_replayed as usize, n - 1);
    assert_eq!(
        truth_sig(&fresh.city_service(fid).expect("registered")),
        live_truths[..n - 1].to_vec()
    );
    fresh.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A crash during checkpointing leaves at worst a stale
/// `snapshot.cps.tmp`; the previous good checkpoint stays loadable and
/// recovery still rebuilds the full live state (write-temp-then-rename).
#[test]
fn stale_snapshot_tmp_never_shadows_the_previous_checkpoint() {
    let dir = scratch_dir("mid_snapshot");
    let sim = SimWorld::build(Scale::Small, 11).expect("world");
    let platform = durable_platform(2, Some(&dir));
    let id = platform.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    let ods = sim.request_stream(12, 2, 77);
    serve_wave(&platform, id, &ods[..6]);
    platform.checkpoint().expect("checkpoint");
    serve_wave(&platform, id, &ods[6..]);
    platform.sync_durable();
    let live_truths = truth_sig(&platform.city_service(id).expect("registered"));
    platform.shutdown();

    // A later checkpoint died mid-stream: its temp file holds garbage.
    std::fs::write(
        dir.join("snapshot.cps.tmp"),
        b"CPSNAP01 interrupted mid-write",
    )
    .expect("stale tmp writes");

    let fresh = durable_platform(1, None);
    let fid = fresh.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    let report = fresh.recover_from(&dir).expect("recovery ignores the tmp");
    assert!(
        report.truths_restored > 0,
        "the good snapshot loads: {report:?}"
    );
    assert_eq!(
        truth_sig(&fresh.city_service(fid).expect("registered")),
        live_truths
    );
    fresh.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery re-seeds the store's sequence allocator: a recovered
/// platform keeps serving with sequence numbers strictly above
/// everything it restored, and a second recovery sees both phases.
#[test]
fn recovered_platform_resumes_sequence_monotonically() {
    let dir = scratch_dir("reseed");
    let sim = SimWorld::build(Scale::Small, 23).expect("world");
    let ods = sim.request_stream(12, 2, 3000);

    // Phase 1: serve, checkpoint (snapshot + log truncation), shut down.
    let first = durable_platform(2, Some(&dir));
    let id = first.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    serve_wave(&first, id, &ods[..6]);
    first.checkpoint().expect("checkpoint");
    let phase1 = truth_sig(&first.city_service(id).expect("registered"));
    first.shutdown();

    // Phase 2: recover into a platform that keeps logging to the same
    // directory, then serve fresh work.
    let second = durable_platform(2, Some(&dir));
    let sid = second.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    let report = second.recover_from(&dir).expect("recovery");
    assert_eq!(report.truths_restored as usize, phase1.len());
    let restored_top = phase1.iter().map(|t| t.0).max().expect("phase 1 truths");
    {
        let svc = second.city_service(sid).expect("registered");
        assert!(
            svc.truths().next_seq() > restored_top,
            "the allocator must resume above the restored range"
        );
    }
    serve_wave(&second, sid, &ods[6..]);
    second.sync_durable();
    let both = truth_sig(&second.city_service(sid).expect("registered"));
    let snap = second.city_stats(sid).expect("registered");
    assert!(snap.is_consistent(), "{snap:?}");
    second.shutdown();
    assert!(both.len() > phase1.len(), "phase 2 must commit new truths");
    let mut seqs: Vec<u64> = both.iter().map(|t| t.0).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), both.len(), "no sequence number is reused");
    for t in &both[phase1.len()..] {
        assert!(
            t.0 > restored_top,
            "new truths allocate above the restored range"
        );
    }

    // A third platform recovering the same directory sees the union.
    let third = durable_platform(1, None);
    let tid = third.register_city(sim.service_world(), ServiceConfig::strict_deterministic());
    let report = third.recover_from(&dir).expect("second recovery");
    assert_eq!(
        (report.truths_restored + report.truths_replayed) as usize,
        both.len(),
        "{report:?}"
    );
    assert_eq!(
        truth_sig(&third.city_service(tid).expect("registered")),
        both
    );
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
