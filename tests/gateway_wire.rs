//! Wire-level gateway tests: real TCP sockets against a running
//! [`Gateway`], exercising the hardened HTTP edge end to end — parser
//! rejection of malformed/oversized requests, keep-alive reuse,
//! client-disconnect resilience, Busy→429 under firehose load, and the
//! acceptance bar: **multi-threaded wire equivalence** proving that
//! routes served over HTTP are byte-identical to the same requests
//! served through `Platform::submit` in-process.

use cp_gateway::{route_json, Gateway, GatewayConfig, RateLimitConfig};
use cp_service::{Platform, PlatformConfig, Request, ServiceConfig};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn sim() -> &'static SimWorld {
    static SIM: OnceLock<SimWorld> = OnceLock::new();
    SIM.get_or_init(|| SimWorld::build(Scale::Small, 5).expect("world"))
}

/// A platform with one strict-deterministic city (always city 0) —
/// each call builds a fresh, identical world.
fn strict_platform(workers: usize, queue_capacity: usize) -> Arc<Platform> {
    let platform = Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity,
        maintenance: None,
        batch: None,
        durability: None,
        chaos: None,
    });
    let id = platform.register_city(sim().service_world(), ServiceConfig::strict_deterministic());
    assert_eq!(id.0, 0, "first registered city is always 0");
    Arc::new(platform)
}

fn start_gateway(platform: &Arc<Platform>, cfg: GatewayConfig) -> Gateway {
    Gateway::start(Arc::clone(platform), cfg).expect("gateway binds loopback")
}

/// One parsed wire response.
#[derive(Debug)]
struct WireResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl WireResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads exactly one HTTP/1.1 response off the stream (headers, then
/// `Content-Length` bytes of body).
fn read_response(stream: &mut TcpStream) -> std::io::Result<WireResponse> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("eof after {} head bytes", head.len()),
            ));
        }
        head.push(byte[0]);
        assert!(head.len() < 65536, "unbounded response head");
    }
    let head = String::from_utf8(head).expect("ascii head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let (n, v) = l.split_once(':')?;
            Some((n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(WireResponse {
        status,
        headers,
        body,
    })
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to gateway");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// One GET over a dedicated connection.
fn get(addr: SocketAddr, path_and_query: &str) -> WireResponse {
    let mut stream = connect(addr);
    write!(
        stream,
        "GET {path_and_query} HTTP/1.1\r\nHost: cp\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    read_response(&mut stream).expect("read response")
}

/// One GET on an existing keep-alive connection.
fn get_keepalive(stream: &mut TcpStream, path_and_query: &str) -> WireResponse {
    write!(stream, "GET {path_and_query} HTTP/1.1\r\nHost: cp\r\n\r\n").expect("write request");
    read_response(stream).expect("read response")
}

fn route_path(req: &Request) -> String {
    format!(
        "/route?city={}&o={}&d={}&t={}",
        req.city.0,
        req.from.0,
        req.to.0,
        req.departure.0 / 3600.0
    )
}

/// Distinct cold ODs (no duplicates, so every first service is a
/// deterministic `Resolved` regardless of arrival order).
fn distinct_requests(count: usize, seed: u64) -> Vec<Request> {
    let mut out: Vec<Request> = Vec::new();
    for (from, to) in sim().request_stream(count * 2, 2, seed) {
        if from == to {
            continue;
        }
        if out.iter().any(|r| r.from == from && r.to == to) {
            continue;
        }
        out.push(Request::new(from, to, TimeOfDay::from_hours(8.0)));
        if out.len() == count {
            break;
        }
    }
    assert_eq!(out.len(), count, "stream yields enough distinct ODs");
    out
}

#[test]
fn malformed_request_lines_are_rejected_with_400_and_close() {
    let platform = strict_platform(1, 16);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();

    for garbage in [
        "GARBAGE\r\n\r\n".as_bytes(),
        b"GET /healthz HTTP/9.9\r\n\r\n",
        b"get /healthz HTTP/1.1\r\n\r\n",
        b"GET http://elsewhere/ HTTP/1.1\r\n\r\n",
        b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
        b"\x00\x01\x02\xff\r\n\r\n",
    ] {
        let mut stream = connect(addr);
        stream.write_all(garbage).expect("write garbage");
        let resp = read_response(&mut stream).expect("a 400 before close");
        assert_eq!(resp.status, 400, "garbage {garbage:?}");
        assert_eq!(resp.header("connection"), Some("close"));
        // The gateway never tries to re-synchronise: the socket is done.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("clean close");
        assert!(rest.is_empty());
    }

    let snap = gw.stats();
    assert_eq!(snap.parse_rejections, 6);
    assert!(snap.is_consistent(), "stats consistent: {snap:?}");
    gw.shutdown();
}

#[test]
fn oversized_heads_get_431_and_post_gets_405() {
    let platform = strict_platform(1, 16);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();

    // An 8 KiB default head limit: one absurd header blows past it.
    let mut stream = connect(addr);
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(32 * 1024)
    );
    stream.write_all(huge.as_bytes()).expect("write oversized");
    let resp = read_response(&mut stream).expect("a 431 before close");
    assert_eq!(resp.status, 431);
    assert_eq!(resp.header("connection"), Some("close"));

    // Non-GET methods parse fine but map to 405.
    let mut stream = connect(addr);
    stream
        .write_all(b"POST /route HTTP/1.1\r\nHost: cp\r\nContent-Length: 2\r\n\r\nhi")
        .expect("write post");
    let resp = read_response(&mut stream).expect("read 405");
    assert_eq!(resp.status, 405);
    gw.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection_and_session_cache_repeats_bytes() {
    let platform = strict_platform(2, 32);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();
    let req = distinct_requests(1, 41)[0];
    let path = route_path(&req);

    let mut stream = connect(addr);
    let first = get_keepalive(&mut stream, &path);
    assert_eq!(
        first.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&first.body)
    );
    for _ in 0..4 {
        // Repeats on the same connection come from the session cache and
        // must be byte-identical.
        let again = get_keepalive(&mut stream, &path);
        assert_eq!(again.status, 200);
        assert_eq!(again.body, first.body);
    }
    let health = get_keepalive(&mut stream, "/healthz");
    assert_eq!(health.status, 200);

    let snap = gw.stats();
    assert_eq!(snap.connections_accepted, 1, "one connection served it all");
    assert_eq!(snap.requests, 6);
    assert_eq!(snap.session_hits, 4);
    assert!(snap.is_consistent(), "stats consistent: {snap:?}");
    gw.shutdown();
}

#[test]
fn client_disconnect_mid_exchange_leaves_the_gateway_healthy() {
    let platform = strict_platform(1, 16);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();
    let reqs = distinct_requests(3, 43);

    // Drop a connection right after writing the request, before reading
    // a byte of the response; then one mid-head; then a bare connect.
    {
        let mut stream = connect(addr);
        write!(
            stream,
            "GET {} HTTP/1.1\r\nHost: cp\r\n\r\n",
            route_path(&reqs[0])
        )
        .unwrap();
    } // dropped here
    {
        let mut stream = connect(addr);
        stream.write_all(b"GET /stats HT").unwrap();
    }
    drop(connect(addr));

    // The gateway must keep serving as if nothing happened.
    for req in &reqs[1..] {
        let resp = get(addr, &route_path(req));
        assert_eq!(resp.status, 200);
    }
    let snap = gw.stats();
    assert!(snap.is_consistent(), "stats consistent: {snap:?}");
    gw.shutdown();
}

#[test]
fn unknown_city_and_bad_params_map_to_404_and_400() {
    let platform = strict_platform(1, 16);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();

    assert_eq!(get(addr, "/route?city=99&o=0&d=5&t=8").status, 404);
    assert_eq!(get(addr, "/route?city=0&o=0&t=8").status, 400);
    assert_eq!(get(addr, "/route?city=0&o=0&d=5&t=nope").status, 400);
    assert_eq!(get(addr, "/nowhere").status, 404);
    let stats = get(addr, "/stats");
    assert_eq!(stats.status, 200);
    let body = String::from_utf8(stats.body).unwrap();
    assert!(body.contains("\"gateway\""), "stats body: {body}");
    assert!(body.contains("\"platform\""), "stats body: {body}");
    gw.shutdown();
}

#[test]
fn stats_expose_per_city_queue_rows() {
    let platform = strict_platform(2, 32);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();
    let req = distinct_requests(1, 67)[0];
    assert_eq!(get(addr, &route_path(&req)).status, 200);

    let resp = get(addr, "/stats");
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    let per_city = body
        .split("\"per_city\": [")
        .nth(1)
        .unwrap_or_else(|| panic!("stats carry a per_city array: {body}"))
        .split(']')
        .next()
        .unwrap();
    let field = |name: &str| -> u64 {
        per_city
            .split(&format!("\"{name}\": "))
            .nth(1)
            .unwrap_or_else(|| panic!("per_city row carries {name}: {per_city}"))
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // One registered city, weight 1, its lone /route request admitted,
    // served (depth back to zero) and never shed; batching is off, so
    // the dispatch was unbatched and the run cap reads zero.
    assert_eq!(field("city"), 0);
    assert_eq!(field("weight"), 1);
    assert_eq!(field("queue_depth"), 0);
    assert_eq!(field("admitted"), 1);
    assert_eq!(field("rejected_busy"), 0);
    assert_eq!(field("unbatched_requests"), 1);
    assert_eq!(field("batch_delay_us"), 0);
    assert_eq!(field("max_batch"), 0);
    gw.shutdown();
}

#[test]
fn rate_limit_answers_429_with_retry_after_on_the_wire() {
    let platform = strict_platform(1, 16);
    let gw = start_gateway(
        &platform,
        GatewayConfig {
            rate_limit: Some(RateLimitConfig {
                per_client_rps: 0.001,
                burst: 2.0,
            }),
            ..GatewayConfig::default()
        },
    );
    let addr = gw.local_addr();
    let req = distinct_requests(1, 47)[0];
    let path = route_path(&req);

    let mut stream = connect(addr);
    let mut limited = 0;
    for _ in 0..5 {
        let resp = get_keepalive(&mut stream, &path);
        if resp.status == 429 {
            limited += 1;
            assert!(
                resp.header("retry-after").is_some(),
                "429 carries Retry-After"
            );
        } else {
            assert_eq!(resp.status, 200);
        }
    }
    assert_eq!(limited, 3, "burst of 2, then the bucket is dry");
    assert_eq!(gw.stats().rate_limited, 3);
    gw.shutdown();
}

#[test]
fn firehose_maps_platform_busy_to_429_with_retry_after() {
    // A deliberately tiny platform: one worker, four-slot ingress. An
    // in-process firehose keeps the queue pinned at capacity while wire
    // clients contend for slots.
    let platform = strict_platform(1, 4);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();
    let reqs = distinct_requests(64, 53);

    let stop = Arc::new(AtomicBool::new(false));
    let firehose = {
        let platform = Arc::clone(&platform);
        let stop = Arc::clone(&stop);
        let reqs = reqs.clone();
        std::thread::spawn(move || {
            let mut tickets = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                for req in &reqs {
                    // Keep the ingress full; hold tickets so nothing is
                    // abandoned mid-flight.
                    if let Ok(t) = platform.submit(*req) {
                        tickets.push(t);
                    }
                }
            }
            for t in tickets {
                let _ = t.wait();
            }
        })
    };

    let mut busy_429 = 0;
    for req in reqs.iter().cycle().take(200) {
        let resp = get(addr, &route_path(req));
        match resp.status {
            429 => {
                busy_429 += 1;
                assert!(
                    resp.header("retry-after").is_some(),
                    "429 carries Retry-After"
                );
            }
            200 | 504 => {}
            other => panic!("unexpected status under firehose: {other}"),
        }
        if busy_429 >= 3 {
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    firehose.join().unwrap();

    assert!(busy_429 >= 1, "saturated ingress must surface as wire 429s");
    let snap = gw.stats();
    assert!(snap.upstream_busy >= 1, "stats: {snap:?}");
    assert!(snap.is_consistent(), "stats consistent: {snap:?}");
    gw.shutdown();
}

#[test]
fn multithreaded_wire_equivalence_with_in_process_submit() {
    // The acceptance bar: N client threads hammer the gateway over real
    // sockets with distinct cold ODs; the same requests go through
    // Platform::submit on a second, identically-built platform. Every
    // response body must be byte-identical to the in-process rendering —
    // the HTTP edge adds transport, never semantics.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 8;

    let wire_platform = strict_platform(4, 128);
    let gw = start_gateway(&wire_platform, GatewayConfig::default());
    let addr = gw.local_addr();
    let reqs = distinct_requests(CLIENTS * PER_CLIENT, 59);

    let wire_bodies: Vec<(Request, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = reqs
            .chunks(PER_CLIENT)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut stream = connect(addr);
                    chunk
                        .iter()
                        .map(|req| {
                            let resp = get_keepalive(&mut stream, &route_path(req));
                            assert_eq!(
                                resp.status,
                                200,
                                "body: {}",
                                String::from_utf8_lossy(&resp.body)
                            );
                            (*req, resp.body)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    gw.shutdown();

    // The reference: the same ODs through Platform::submit on a fresh
    // identical platform, rendered by the same JSON encoder.
    let ref_platform = strict_platform(4, 128);
    let graph = sim().graph_arc();
    for (req, wire_body) in &wire_bodies {
        let served = ref_platform
            .submit(*req)
            .expect("reference submit")
            .wait()
            .expect("reference serve");
        let expected = route_json(req, &served, &graph);
        assert_eq!(
            expected.as_bytes(),
            wire_body.as_slice(),
            "wire response for {req:?} diverged from Platform::submit"
        );
    }
}

#[test]
fn graceful_shutdown_answers_in_flight_then_platform_drains() {
    let platform = strict_platform(2, 32);
    let gw = start_gateway(&platform, GatewayConfig::default());
    let addr = gw.local_addr();
    let req = distinct_requests(1, 61)[0];

    let resp = get(addr, &route_path(&req));
    assert_eq!(resp.status, 200);
    gw.shutdown();

    // The edge is gone; the platform behind it is still healthy.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // On some kernels the listener's backlog may still accept one
            // connection after close; a read must then hit EOF/reset.
            let mut s = connect(addr);
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: cp\r\n\r\n");
            read_response(&mut s).is_err()
        }
    );
    let served = platform
        .submit(req)
        .expect("platform serves after edge shutdown")
        .wait()
        .expect("serve");
    assert!(!served.path.nodes().is_empty());
}
