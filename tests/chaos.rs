//! Chaos-engine and graceful-degradation acceptance tests.
//!
//! 1. **Breaker lifecycle** — under a total crowd no-show storm the
//!    per-city circuit breaker trips to machine-only serving (zero
//!    `CrowdStarved` surfaced while tripped), half-opens to probe the
//!    crowd, re-trips while the storm lasts, and recovers to `Closed`
//!    once the faults stop.
//! 2. **Runtime offboarding mid-firehose** — `deregister_city` under a
//!    racing submission storm: every in-flight ticket resolves exactly
//!    once, every queued ticket sheds with the terminal
//!    `CityOffboarded` error, later submissions are rejected, the
//!    sibling city is untouched, and every platform ledger balances.
//! 3. **Exactly-once under every fault class** (proptest) — random
//!    seeds × {1, 4} workers with *all seven* fault sites firing at
//!    once (plus durability, so write I/O errors hit a real WAL):
//!    every ticket terminates, `completed == admitted`, and the
//!    snapshot equations hold.
//! 4. **Byte-identity under non-failing faults** — a machine-only city
//!    serving one FIFO stream produces a truth store byte-identical to
//!    a healthy run when only slow/stalled workers and generation
//!    churn are injected: chaos may cost latency, never answers.

use cp_core::Config;
use cp_crowd::CrowdDesk;
use cp_service::{
    BreakerConfig, BreakerState, ChaosConfig, CrowdServing, DurabilityConfig, FaultPlan,
    FsyncPolicy, Platform, PlatformConfig, Request, RouteService, ServedRoute, ServiceConfig,
    ServiceError, Ticket,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One shared world: building the road network, trips and mining state
/// dominates test time, and every test here treats it as read-only.
fn world() -> &'static SimWorld {
    static WORLD: OnceLock<SimWorld> = OnceLock::new();
    WORLD.get_or_init(|| SimWorld::build(Scale::Small, 5).expect("world"))
}

/// A config that pushes every request through the crowd: no agreement
/// shortcut, no confidence shortcut, no reuse.
fn crowd_forcing_config() -> Config {
    let mut cfg = Config::default();
    cfg.agreement_similarity = 1.0;
    cfg.agreement_quorum = 1.0;
    cfg.eta_confidence = 1.0;
    cfg.reuse_radius = 0.0;
    cfg.reuse_time_window = 0.0;
    cfg
}

/// Joins a ticket with a hard no-lost-ticket deadline: under fault
/// injection every admitted request must still reach a terminal state.
fn join_terminal(t: Ticket, what: &str) -> Result<ServedRoute, ServiceError> {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !t.is_done() {
        assert!(
            Instant::now() < deadline,
            "lost ticket: {what} never reached a terminal state"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    t.wait()
}

fn chaos_platform(workers: usize, chaos: Option<ChaosConfig>) -> Platform {
    Platform::start(PlatformConfig {
        workers,
        queue_capacity: 1024,
        city_weight: 1,
        maintenance: None,
        batch: None,
        durability: None,
        chaos,
    })
}

/// A store's contents as comparable bytes, in sequence order.
fn truth_sig(svc: &RouteService) -> Vec<(u64, u32, u32, u64, u64, Vec<u32>)> {
    svc.truths()
        .export()
        .into_iter()
        .map(|(seq, e)| {
            (
                seq,
                e.from.0,
                e.to.0,
                e.departure.0.to_bits(),
                e.confidence.to_bits(),
                e.path.edges().iter().map(|id| id.0).collect(),
            )
        })
        .collect()
}

/// Trip on a crowd no-show storm, serve machine-only while open (zero
/// starvation errors surfaced), probe half-open, recover when healthy.
#[test]
fn breaker_trips_degrades_probes_and_recovers() {
    let sim = world();
    // Chaos present but quiet: the storm is switched on live below.
    let platform = chaos_platform(1, Some(ChaosConfig::new(1).with_plan(FaultPlan::none())));

    let shared = sim.shared_crowd(48, 10, 7, 4);
    let mut service_cfg = ServiceConfig::default();
    service_cfg.core = crowd_forcing_config();
    let mut serving = CrowdServing::new(
        sim.landmarks_arc(),
        sim.significance_arc(),
        Arc::clone(&shared) as Arc<dyn CrowdDesk>,
        Arc::new(sim.oracle_factory()),
    )
    .with_breaker(BreakerConfig {
        window: 8,
        trip_ratio: 0.5,
        min_samples: 4,
        open_serves: 4,
    });
    // Strict shedding: a starved crowd resolve surfaces as an error, so
    // "zero starvation errors while tripped" is observable from outside.
    serving.fail_when_starved = true;
    let id = platform
        .register_city_crowd(sim.service_world(), service_cfg, serving)
        .expect("crowd city registers");

    // Distinct OD pairs so neither the truth store nor single-flight
    // short-circuits the crowd pipeline (and the breaker's window).
    let ods = sim.request_stream(200, 2, 1234);
    let mut next = 0usize;
    let mut serve_one = |tag: &str| -> Result<ServedRoute, ServiceError> {
        let (from, to) = ods[next];
        next += 1;
        let req = Request::to_city(id, from, to, TimeOfDay::from_hours(8.0));
        join_terminal(platform.submit_blocking(req).expect("admitted"), tag)
    };

    // Phase 1 — healthy: crowd serves, breaker stays closed.
    for _ in 0..4 {
        serve_one("healthy crowd serve").expect("healthy serve");
    }
    let b = platform.city_breaker(id).expect("city has a breaker");
    assert_eq!(b.state, BreakerState::Closed);
    assert_eq!((b.trips, b.probes, b.recoveries), (0, 0, 0));

    // Phase 2 — storm: every crowd reservation is refused. Window
    // evidence accumulates (surfacing some CrowdStarved), then trips;
    // the tripping request itself degrades to the machine answer.
    assert!(platform.set_chaos_plan(FaultPlan {
        crowd_no_show: 1.0,
        ..FaultPlan::none()
    }));
    let mut starved_before_trip = 0u64;
    let mut tripped = false;
    for _ in 0..100 {
        match serve_one("storm-phase serve") {
            Ok(_) => {}
            Err(ServiceError::CrowdStarved { .. }) => starved_before_trip += 1,
            Err(e) => panic!("unexpected error under no-show storm: {e:?}"),
        }
        if platform.city_breaker(id).expect("breaker").state == BreakerState::Open {
            tripped = true;
            break;
        }
    }
    assert!(tripped, "a total no-show storm must trip the breaker");
    assert!(
        starved_before_trip >= 1,
        "window evidence comes from surfaced starvation before the trip"
    );
    let at_trip = platform.city_breaker(id).expect("breaker");
    assert!(at_trip.trips >= 1);
    assert!(
        platform.chaos_stats().expect("chaos on").crowd_no_shows > 0,
        "injections are counted per site"
    );

    // Phase 3 — tripped, storm still raging: every request serves OK
    // (machine-only; failed half-open probes re-trip and degrade too).
    for _ in 0..12 {
        serve_one("tripped serve")
            .expect("a tripped breaker must never surface a starvation error");
    }
    let open = platform.city_breaker(id).expect("breaker");
    assert!(
        open.machine_serves > at_trip.machine_serves,
        "open breaker serves machine-only: {open:?}"
    );
    assert!(open.probes >= 1, "the breaker must half-open and probe");
    assert!(open.trips > at_trip.trips, "failed probes re-trip");
    assert_eq!(open.recoveries, 0);

    // Phase 4 — storm over: machine serves drain the open budget, the
    // next probe succeeds, the breaker closes and counts a recovery.
    assert!(platform.set_chaos_plan(FaultPlan::none()));
    let mut recovered = false;
    for _ in 0..50 {
        serve_one("recovery-phase serve").expect("healthy serve");
        if platform.city_breaker(id).expect("breaker").state == BreakerState::Closed {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "a healthy crowd must close the breaker again");
    let healed = platform.city_breaker(id).expect("breaker");
    assert!(healed.recoveries >= 1, "{healed:?}");

    // Closed again: the crowd is genuinely back in the loop.
    for _ in 0..3 {
        serve_one("post-recovery serve").expect("crowd serve");
    }
    let snap = platform.stats();
    assert!(snap.is_consistent(), "{snap:?}");
    let row = snap.per_city.iter().find(|c| c.city == id).expect("row");
    assert!(row.breaker.is_some(), "breaker observables reach snapshots");
    platform.shutdown();
}

/// `deregister_city` under a racing submission firehose: exactly-once
/// for in-flight work, terminal sheds for the queue, clean ledgers.
#[test]
fn deregister_city_mid_firehose_never_loses_a_ticket() {
    let sim = world();
    // Every dispatch sleeps a little (and some stall): the queue stays
    // deep while the firehose runs, so the drain has real work to shed.
    let platform = chaos_platform(
        2,
        Some(ChaosConfig::new(3).with_plan(FaultPlan {
            slow_worker: 1.0,
            stall_worker: 0.25,
            ..FaultPlan::none()
        })),
    );
    let a = platform.register_city(sim.service_world(), ServiceConfig::default());
    let b = platform.register_city(sim.service_world(), ServiceConfig::default());

    const N: usize = 240;
    let ods = sim.request_stream(N + 1, 2, 77);
    let (tickets_a, tickets_b, rejected_in_flight, shed) = std::thread::scope(|s| {
        let submitter = s.spawn(|| {
            let mut ta = Vec::new();
            let mut tb = Vec::new();
            let mut rejected = 0u64;
            for (i, &(from, to)) in ods[..N].iter().enumerate() {
                let city = if i % 2 == 0 { a } else { b };
                let req = Request::to_city(city, from, to, TimeOfDay::from_hours(8.0));
                match platform.submit(req) {
                    Ok(t) if city == a => ta.push(t),
                    Ok(t) => tb.push(t),
                    Err(ServiceError::CityOffboarded(c)) => {
                        assert_eq!(c, a, "only the deregistered city rejects");
                        rejected += 1;
                    }
                    Err(e) => panic!("unexpected admission error: {e:?}"),
                }
            }
            (ta, tb, rejected)
        });

        // Pull the plug once city A has a real backlog.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "backlog never built");
            let snap = platform.stats();
            let depth_a = snap
                .per_city
                .iter()
                .find(|c| c.city == a)
                .map_or(0, |c| c.queue_depth);
            if depth_a >= 10 {
                break;
            }
            std::thread::yield_now();
        }
        let shed = platform.deregister_city(a).expect("registered city");
        let (ta, tb, rejected) = submitter.join().expect("submitter");
        (ta, tb, rejected, shed)
    });
    assert!(shed > 0, "the drain must have shed a non-empty queue");

    // City A: every ticket terminates — served exactly once (in-flight
    // at drain time) or shed with the terminal offboarding error.
    let mut shed_errors = 0u64;
    for t in tickets_a {
        match join_terminal(t, "city-A ticket") {
            Ok(_) => {}
            Err(ServiceError::CityOffboarded(c)) => {
                assert_eq!(c, a);
                shed_errors += 1;
            }
            Err(e) => panic!("city-A tickets either serve or shed: {e:?}"),
        }
    }
    assert_eq!(
        shed_errors, shed,
        "exactly the drained jobs shed with the terminal error"
    );
    // City B: completely untouched by its sibling's offboarding.
    for t in tickets_b {
        join_terminal(t, "city-B ticket").expect("sibling city serves everything");
    }

    // Late traffic: rejected at admission, not enqueued.
    let (from, to) = ods[N];
    assert!(matches!(
        platform.submit(Request::to_city(a, from, to, TimeOfDay::from_hours(9.0))),
        Err(ServiceError::CityOffboarded(_))
    ));
    assert_eq!(platform.city_offboarded(a), Some(true));
    assert_eq!(platform.city_offboarded(b), Some(false));
    assert!(platform.city_service(a).is_none(), "offboarded ⇒ 404");
    assert!(platform.city_service(b).is_some());
    assert_eq!(platform.deregister_city(a), Some(0), "idempotent");

    let snap = platform.stats();
    assert!(snap.is_consistent(), "{snap:?}");
    assert_eq!(snap.shed, shed);
    assert_eq!(snap.rejected_offboarded, rejected_in_flight + 1);
    assert_eq!(
        snap.completed,
        snap.admitted - snap.shed,
        "workers fulfilled everything that was not shed"
    );
    let row_a = snap.per_city.iter().find(|c| c.city == a).expect("row");
    assert!(row_a.offboarded);
    assert_eq!(row_a.shed, shed);
    assert_eq!(row_a.queue_depth, 0);
    platform.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// All seven fault classes at once, random seeds, 1 or 4 workers,
    /// durability on (so WAL write errors hit a real writer): every
    /// ticket terminates, `completed == admitted`, ledgers balance.
    #[test]
    fn exactly_once_under_every_fault_class(
        seed in any::<u64>(),
        worker_pick in 0usize..2,
    ) {
        let workers = if worker_pick == 0 { 1 } else { 4 };
        let sim = world();
        let dir = std::env::temp_dir().join(format!(
            "cp_chaos_{}_{seed:x}_{workers}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan {
            crowd_no_show: 0.3,
            crowd_slow_answer: 0.3,
            slow_worker: 0.15,
            stall_worker: 0.05,
            resolver_panic: 0.05,
            durability_io_error: 0.25,
            generation_churn: 0.1,
        };
        let platform = Platform::start(PlatformConfig {
            workers,
            queue_capacity: 256,
            city_weight: 1,
            maintenance: None,
            batch: None,
            durability: Some(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Never)),
            chaos: Some(ChaosConfig::new(seed).with_plan(plan)),
        });
        let shared = sim.shared_crowd(48, 10, seed ^ 0xA5A5, 4);
        let mut service_cfg = ServiceConfig::default();
        service_cfg.core = crowd_forcing_config();
        let serving = CrowdServing::new(
            sim.landmarks_arc(),
            sim.significance_arc(),
            Arc::clone(&shared) as Arc<dyn CrowdDesk>,
            Arc::new(sim.oracle_factory()),
        )
        .with_breaker(BreakerConfig::default());
        let id = platform
            .register_city_crowd(sim.service_world(), service_cfg, serving)
            .expect("crowd city registers");

        const REQUESTS: usize = 48;
        let ods = sim.request_stream(REQUESTS, 2, seed ^ 0x51F7);
        let tickets: Vec<Ticket> = ods
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| {
                let req =
                    Request::to_city(id, from, to, TimeOfDay::from_hours(6.0 + (i % 12) as f64));
                platform.submit_blocking(req).expect("admitted")
            })
            .collect();

        let mut served = 0u64;
        let mut panicked = 0u64;
        for t in tickets {
            match join_terminal(t, "fault-injected request") {
                Ok(_) => served += 1,
                // The only fault class that legitimately surfaces: a
                // contained resolver panic (the breaker absorbs crowd
                // starvation, the retry loop absorbs WAL I/O errors).
                Err(ServiceError::ResolverPanicked) => panicked += 1,
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e:?}"))),
            }
        }
        prop_assert_eq!(served + panicked, REQUESTS as u64);

        let snap = platform.stats();
        prop_assert!(snap.is_consistent(), "{:?}", &snap);
        prop_assert_eq!(snap.admitted, REQUESTS as u64);
        prop_assert_eq!(snap.completed, REQUESTS as u64, "exactly-once fulfilment");
        prop_assert_eq!(snap.queue_depth, 0);
        let chaos = snap.chaos.expect("chaos on");
        prop_assert!(
            chaos.total_injected() > 0,
            "these rates over {} crowd-forced requests must inject",
            REQUESTS
        );
        platform.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Non-failing faults (slow/stalled workers, generation churn) may cost
/// latency but must not change a single served byte: a machine city's
/// truth store matches the healthy run's exactly, sequence numbers
/// included (one worker ⇒ FIFO commit order on both sides).
#[test]
fn non_failing_faults_leave_truth_store_byte_identical() {
    fn machine_run(chaos: Option<ChaosConfig>) -> Vec<(u64, u32, u32, u64, u64, Vec<u32>)> {
        let sim = world();
        let platform = chaos_platform(1, chaos);
        let id = platform.register_city(sim.service_world(), ServiceConfig::default());
        let ods = sim.request_stream(60, 2, 4242);
        let tickets: Vec<Ticket> = ods
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| {
                let req =
                    Request::to_city(id, from, to, TimeOfDay::from_hours(6.0 + (i % 12) as f64));
                platform.submit_blocking(req).expect("admitted")
            })
            .collect();
        for t in tickets {
            join_terminal(t, "machine request").expect("machine city serves");
        }
        let sig = truth_sig(&platform.city_service(id).expect("registered"));
        platform.shutdown();
        sig
    }

    let healthy = machine_run(None);
    assert!(!healthy.is_empty(), "the healthy run must commit truths");
    let chaotic = machine_run(Some(ChaosConfig::new(9).with_plan(FaultPlan {
        slow_worker: 0.4,
        stall_worker: 0.1,
        generation_churn: 0.3,
        ..FaultPlan::none()
    })));
    assert_eq!(
        chaotic, healthy,
        "chaos that only delays must never change served bytes"
    );
}
