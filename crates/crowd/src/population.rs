//! Synthetic worker population with ground-truth knowledge.
//!
//! The population substitutes for the paper's "hundreds of volunteers".
//! Each worker gets anchor places in the city, category tastes, a
//! carefulness level and a response rate. The *ground-truth familiarity*
//! of a worker with a landmark — the quantity the paper's familiarity
//! score and PMF try to estimate from observations — is defined here, so
//! experiments can measure estimation quality exactly.

use crate::worker::{Worker, WorkerId};
use cp_roadnet::{Landmark, Point, RoadGraph};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the worker population.
#[derive(Debug, Clone)]
pub struct PopulationParams {
    /// Number of workers.
    pub workers: usize,
    /// Mean response time in seconds (λ = 1/mean, jittered per worker).
    pub mean_response_s: f64,
    /// Minimum worker reliability.
    pub min_reliability: f64,
    /// Mean spatial knowledge scale, metres.
    pub knowledge_scale: f64,
}

impl Default for PopulationParams {
    fn default() -> Self {
        PopulationParams {
            workers: 120,
            mean_response_s: 900.0,
            min_reliability: 0.55,
            knowledge_scale: 1800.0,
        }
    }
}

/// The generated population.
#[derive(Debug, Clone)]
pub struct WorkerPopulation {
    workers: Vec<Worker>,
}

impl WorkerPopulation {
    /// Generates `params.workers` workers anchored inside the city's
    /// bounding box, deterministically from `seed`.
    pub fn generate(graph: &RoadGraph, params: &PopulationParams, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC2B2_AE3D_27D4_EB4F);
        let bbox = graph.bounding_box();
        let rand_point = |rng: &mut SmallRng| {
            Point::new(
                rng.random_range(bbox.min.x..=bbox.max.x),
                rng.random_range(bbox.min.y..=bbox.max.y),
            )
        };
        let mut workers = Vec::with_capacity(params.workers);
        for i in 0..params.workers {
            let home = rand_point(&mut rng);
            // Work and frequent places are biased near home (people live and
            // move locally), with occasional cross-town commuters.
            let near = |rng: &mut SmallRng, p: Point, spread: f64| {
                Point::new(
                    p.x + rng.random_range(-spread..=spread),
                    p.y + rng.random_range(-spread..=spread),
                )
            };
            let work = if rng.random_bool(0.3) {
                rand_point(&mut rng)
            } else {
                near(&mut rng, home, 2000.0)
            };
            let frequent = near(&mut rng, home, 1500.0);
            let mut affinity = [0.0; 6];
            for a in &mut affinity {
                *a = rng.random_range(0.1..1.0);
            }
            // Two strong interests per worker: sharpen the hidden category
            // structure PMF should recover.
            for _ in 0..2 {
                affinity[rng.random_range(0..6)] = rng.random_range(0.8..1.0);
            }
            let reliability = rng.random_range(params.min_reliability..1.0);
            let mean_rt = params.mean_response_s * rng.random_range(0.3..3.0);
            workers.push(Worker {
                id: WorkerId(i as u32),
                home,
                work,
                frequent,
                category_affinity: affinity,
                reliability,
                lambda: 1.0 / mean_rt,
                knowledge_scale: params.knowledge_scale * rng.random_range(0.5..1.6),
            });
        }
        WorkerPopulation { workers }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Worker record.
    #[inline]
    pub fn get(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// Iterator over all workers.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// All worker ids.
    pub fn ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers.len() as u32).map(WorkerId)
    }

    /// Ground-truth familiarity of `worker` with `landmark`, in `[0, 1]`.
    ///
    /// Combines spatial proximity (exponential decay of the min anchor
    /// distance over the worker's knowledge scale), category taste, and the
    /// landmark's own fame (famous landmarks are known even from afar —
    /// the paper's White House example).
    pub fn true_familiarity(&self, worker: WorkerId, landmark: &Landmark) -> f64 {
        let w = self.get(worker);
        let d = w.min_anchor_distance(&landmark.position);
        let spatial = (-d / w.knowledge_scale).exp();
        let taste = w.category_affinity[landmark.category.index()];
        let local = spatial * (0.4 + 0.6 * taste);
        let global = 0.5 * landmark.latent_fame;
        (local + global).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    fn setup() -> (cp_roadnet::City, cp_roadnet::LandmarkSet, WorkerPopulation) {
        let city = generate_city(&CityParams::small(), 43).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 43);
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 43);
        (city, lms, pop)
    }

    #[test]
    fn generates_requested_workers() {
        let (_, _, pop) = setup();
        assert_eq!(pop.len(), 120);
        assert!(!pop.is_empty());
        for (i, id) in pop.ids().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(pop.get(id).id, id);
        }
    }

    #[test]
    fn latent_attributes_in_valid_ranges() {
        let (_, _, pop) = setup();
        for w in pop.iter() {
            assert!(w.reliability >= 0.55 && w.reliability < 1.0);
            assert!(w.lambda > 0.0);
            assert!(w.knowledge_scale > 0.0);
            assert!(w
                .category_affinity
                .iter()
                .all(|&a| (0.0..=1.0).contains(&a)));
        }
    }

    #[test]
    fn familiarity_decays_with_distance() {
        let (_, lms, pop) = setup();
        let w = pop.ids().next().unwrap();
        // For each worker, a landmark at their home must be at least as
        // familiar as the same-category landmark far away with lower fame.
        let mut checked = 0;
        for a in lms.iter() {
            for b in lms.iter() {
                if a.category == b.category
                    && a.latent_fame >= b.latent_fame
                    && pop.get(w).min_anchor_distance(&a.position) + 500.0
                        < pop.get(w).min_anchor_distance(&b.position)
                {
                    assert!(
                        pop.true_familiarity(w, a) >= pop.true_familiarity(w, b) - 1e-9,
                        "closer, equally-famous landmark must be >= familiar"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn familiarity_bounded() {
        let (_, lms, pop) = setup();
        for w in pop.ids() {
            for l in lms.iter() {
                let f = pop.true_familiarity(w, l);
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let city = generate_city(&CityParams::small(), 43).unwrap();
        let a = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 5);
        let b = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.home, y.home);
            assert_eq!(x.reliability, y.reliability);
        }
    }

    #[test]
    fn famous_landmarks_widely_known() {
        let (_, lms, pop) = setup();
        // The most famous landmark should have mean familiarity clearly
        // above the least famous one.
        let most = lms
            .iter()
            .max_by(|a, b| a.latent_fame.partial_cmp(&b.latent_fame).unwrap())
            .unwrap();
        let least = lms
            .iter()
            .min_by(|a, b| a.latent_fame.partial_cmp(&b.latent_fame).unwrap())
            .unwrap();
        let mean = |l: &Landmark| {
            pop.ids().map(|w| pop.true_familiarity(w, l)).sum::<f64>() / pop.len() as f64
        };
        assert!(mean(most) > mean(least));
    }
}
