//! Worker response-time model (paper §IV-A).
//!
//! "We assume the probability of the response time t of a worker follows
//! an exponential distribution, f(t;λ) = λ exp(−λt), which is \[a\] standard
//! assumption in estimating worker's response time." The simulator samples
//! true response times from each worker's latent λ; the system estimates λ
//! from the observed history by maximum likelihood and filters workers by
//! `F(t;λ) = 1 − exp(−λt) ≥ η_time`.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Samples a response time from `Exp(lambda)` seconds.
pub fn sample_response_time(lambda: f64, rng: &mut SmallRng) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Maximum-likelihood estimate of λ from observed response times
/// (`n / Σ t`). Returns `None` when no observations exist.
pub fn estimate_lambda(observed: &[f64]) -> Option<f64> {
    if observed.is_empty() {
        return None;
    }
    let total: f64 = observed.iter().sum();
    if total <= 0.0 {
        return None;
    }
    Some(observed.len() as f64 / total)
}

/// Probability that a worker with rate `lambda` responds within `t`
/// seconds: the exponential CDF `F(t;λ) = 1 − e^{−λt}`.
pub fn response_probability(lambda: f64, t: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    1.0 - (-lambda * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cdf_properties() {
        assert_eq!(response_probability(0.01, 0.0), 0.0);
        assert!(response_probability(0.01, 1e9) > 0.999_999);
        // Monotone in t.
        let l = 1.0 / 600.0;
        assert!(response_probability(l, 300.0) < response_probability(l, 900.0));
        // Median of Exp(λ) is ln2/λ.
        let median = (2.0f64).ln() / l;
        assert!((response_probability(l, median) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_rate() {
        let mut rng = SmallRng::seed_from_u64(99);
        let lambda = 1.0 / 450.0;
        let obs: Vec<f64> = (0..20_000)
            .map(|_| sample_response_time(lambda, &mut rng))
            .collect();
        let est = estimate_lambda(&obs).unwrap();
        assert!(
            (est - lambda).abs() / lambda < 0.05,
            "estimated {est}, true {lambda}"
        );
    }

    #[test]
    fn mle_empty_is_none() {
        assert_eq!(estimate_lambda(&[]), None);
        assert_eq!(estimate_lambda(&[0.0, 0.0]), None);
    }

    #[test]
    fn samples_are_positive() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(sample_response_time(0.01, &mut rng) > 0.0);
        }
    }
}
