//! The crowd desk: shared, quota-safe access to a crowd of workers.
//!
//! The paper's orchestrator mutated a privately owned [`Platform`]
//! (`assign` → `ask` → `award` → `finish`), which confines crowd
//! resolution to one thread: two concurrent resolvers over *separate*
//! platforms would happily assign the same human worker an unbounded
//! number of simultaneous tasks, violating the per-worker capacity model
//! (η_#q, the outstanding-task quota). This module is the shared
//! replacement:
//!
//! * [`CrowdObserve`] — the read-only observables worker selection
//!   needs (population, answer history, response times, outstanding
//!   counts). Implemented by [`Platform`] itself (exclusive ownership)
//!   and by every desk (shared ownership), so the selection pipeline is
//!   generic over either.
//! * [`CrowdDesk`] — crowd I/O behind `&self`: the **reserve → ask →
//!   commit** protocol. An assignment starts with
//!   [`CrowdDesk::try_reserve`], which atomically checks the worker's
//!   outstanding count against the desk's hard
//!   [`max_outstanding`](CrowdDesk::max_outstanding) cap and either
//!   takes the slot or rejects with the typed [`QuotaExhausted`]
//!   outcome. Questions are then posed with [`ask`](CrowdDesk::ask),
//!   and the slot is returned with exactly one of
//!   [`commit`](CrowdDesk::commit) (task completed, answers kept) or
//!   [`release`](CrowdDesk::release) (abandoned mid-flight). The
//!   [`Reservation`] RAII guard enforces the exactly-once half of the
//!   contract: dropping an uncommitted guard releases the slot.
//! * [`SharedCrowd`] — the `Arc`-shareable desk over a simulated
//!   [`Platform`]: interior mutability (one mutex), a hard per-worker
//!   cap, and contention counters ([`DeskStats`]) so oversubscription
//!   attempts are observable, not silent.
//! * [`DirectDesk`] — the pre-redesign direct-platform behaviour
//!   (unconditional assignment, no cap) behind the same trait: the
//!   reference implementation the equivalence proptest checks
//!   [`SharedCrowd`] against, and the zero-ceremony choice for
//!   single-owner sequential experiments.
//!
//! With N resolvers sharing one [`SharedCrowd`], a worker's outstanding
//! count can never exceed `max_outstanding`: every increment happens
//! inside [`try_reserve`](CrowdDesk::try_reserve) under the desk mutex,
//! where the cap is checked first.

use crate::platform::{AnswerTally, Platform, PlatformState, StateSizeMismatch};
use crate::population::WorkerPopulation;
use crate::worker::WorkerId;
use cp_roadnet::{Landmark, LandmarkId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// One recorded crowd answer, as seen by an [`AnswerObserver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerRecord {
    /// The worker who answered.
    pub worker: WorkerId,
    /// The landmark the question was about.
    pub landmark: LandmarkId,
    /// Whether the answer matched ground truth.
    pub correct: bool,
    /// Sampled response time, seconds.
    pub response_time: f64,
    /// The platform generation *after* this answer. Observers are
    /// invoked under the desk's platform lock, so for a given desk the
    /// observed generations are strictly increasing.
    pub generation: u64,
}

/// Callback invoked for every answer a desk records (durability hook).
/// Called with the platform lock held — keep it non-blocking (e.g. a
/// bounded-channel `try_send`).
pub type AnswerObserver = Box<dyn Fn(&AnswerRecord) + Send + Sync>;

/// Durability access to a desk's underlying platform state: export for
/// snapshots, import for recovery, answer re-application for log
/// replay, and the observer hook feeding the event log.
pub trait CrowdState: Send + Sync {
    /// Point-in-time copy of the mutable platform state.
    fn export_state(&self) -> PlatformState;
    /// Replaces the platform state with a previously exported one.
    fn import_state(&self, state: &PlatformState) -> Result<(), StateSizeMismatch>;
    /// Re-applies one logged answer (no sampling, RNG untouched).
    fn apply_answer(&self, record: &AnswerRecord);
    /// Installs the answer observer. The first installation wins;
    /// returns `false` (and ignores `observer`) if one is already set.
    fn set_answer_observer(&self, observer: AnswerObserver) -> bool;
}

/// Read-only crowd observables: everything the worker-selection pipeline
/// (familiarity matrix, response-time filter, quota filter) is allowed to
/// see. `Platform` implements this directly for exclusive single-owner
/// use; desks implement it over their shared interior.
pub trait CrowdObserve {
    /// The (immutable) worker population.
    fn population(&self) -> &WorkerPopulation;
    /// All (landmark, tally) answer records of one worker, in landmark
    /// order (a point-in-time copy).
    fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)>;
    /// Observed response times of a worker, seconds (a point-in-time
    /// copy).
    fn response_times(&self, worker: WorkerId) -> Vec<f64>;
    /// `(count, left-to-right sum)` of the worker's observed response
    /// times — everything the exponential MLE needs, without copying
    /// the history. Implementations should override the default (which
    /// goes through [`CrowdObserve::response_times`] and allocates).
    fn response_time_stats(&self, worker: WorkerId) -> (usize, f64) {
        let times = self.response_times(worker);
        (times.len(), times.iter().sum())
    }
    /// Per-worker `(outstanding, response-time count, response-time
    /// sum)` across the whole population, indexed by worker — the bulk
    /// read worker selection makes once per task. Shared desks override
    /// this to capture the vector under a **single** lock acquisition
    /// instead of two per worker.
    fn selection_snapshot(&self) -> Vec<(u32, usize, f64)> {
        self.population()
            .ids()
            .map(|w| {
                let (count, sum) = self.response_time_stats(w);
                (self.outstanding(w), count, sum)
            })
            .collect()
    }
    /// Number of outstanding (reserved, unfinished) tasks of a worker.
    fn outstanding(&self, worker: WorkerId) -> u32;
    /// Reward balance of a worker.
    fn points(&self, worker: WorkerId) -> f64;
    /// Monotone answer-history version: bumped on every recorded answer.
    /// Consumers cache derived state (e.g. the knowledge model) keyed by
    /// this and rebuild when it moves.
    fn generation(&self) -> u64;
}

impl CrowdObserve for Platform {
    fn population(&self) -> &WorkerPopulation {
        Platform::population(self)
    }

    fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)> {
        Platform::worker_history(self, worker)
    }

    fn response_times(&self, worker: WorkerId) -> Vec<f64> {
        self.observed_response_times(worker).to_vec()
    }

    fn response_time_stats(&self, worker: WorkerId) -> (usize, f64) {
        let times = self.observed_response_times(worker);
        (times.len(), times.iter().sum())
    }

    fn outstanding(&self, worker: WorkerId) -> u32 {
        Platform::outstanding(self, worker)
    }

    fn points(&self, worker: WorkerId) -> f64 {
        Platform::points(self, worker)
    }

    fn generation(&self) -> u64 {
        Platform::generation(self)
    }
}

/// A reservation was refused: the worker already holds
/// `max_outstanding` concurrent tasks. Callers skip the worker (the
/// quota protects the human) and may try the next candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaExhausted {
    /// The worker whose quota is exhausted.
    pub worker: WorkerId,
    /// Their outstanding count at rejection time.
    pub outstanding: u32,
    /// The desk's hard cap.
    pub max_outstanding: u32,
}

impl std::fmt::Display for QuotaExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {:?} quota exhausted: {} of {} outstanding tasks",
            self.worker, self.outstanding, self.max_outstanding
        )
    }
}

impl std::error::Error for QuotaExhausted {}

/// Reservation / commit / release accounting of a desk. The invariant a
/// drained desk must satisfy: `reserved == committed + released` (and
/// every worker's outstanding count back to zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeskStats {
    /// Reservations granted.
    pub reserved: u64,
    /// Reservations refused at the cap (contention).
    pub quota_rejected: u64,
    /// Reservations committed (task completed).
    pub committed: u64,
    /// Reservations released without completion.
    pub released: u64,
}

impl DeskStats {
    /// Reservations currently held (granted but neither committed nor
    /// released). Saturating: a snapshot taken while resolvers are
    /// mid-flight is approximate, never an underflow.
    pub fn in_flight(&self) -> u64 {
        self.reserved
            .saturating_sub(self.committed.saturating_add(self.released))
    }

    /// Whether every granted reservation has been settled exactly once.
    /// Exact equality, not `in_flight() == 0`: an over-settlement bug
    /// (a reservation committed *and* released) must read as
    /// not-drained, never be masked by saturation.
    pub fn is_drained(&self) -> bool {
        self.committed + self.released == self.reserved
    }
}

/// Crowd I/O behind `&self`: the reserve → ask → commit protocol.
///
/// Implementations must uphold two guarantees:
///
/// 1. **the cap is atomic** — [`try_reserve`](CrowdDesk::try_reserve)
///    checks the worker's outstanding count against
///    [`max_outstanding`](CrowdDesk::max_outstanding) and increments it
///    in one critical section, so concurrent resolvers can never
///    oversubscribe a worker;
/// 2. **slots settle exactly once** — each successful reservation is
///    balanced by exactly one [`commit`](CrowdDesk::commit) or
///    [`release`](CrowdDesk::release) (use [`Reservation`] to get this
///    by construction).
pub trait CrowdDesk: CrowdObserve + Send + Sync {
    /// The hard per-worker cap on concurrently outstanding tasks.
    fn max_outstanding(&self) -> u32;

    /// Reserves one assignment slot on `worker`, or rejects with the
    /// typed [`QuotaExhausted`] outcome when the cap is reached. Prefer
    /// [`Reservation::acquire`], which guarantees the slot is settled.
    fn try_reserve(&self, worker: WorkerId) -> Result<(), QuotaExhausted>;

    /// Asks the reserved worker the binary question about `landmark`
    /// whose correct answer is `truth`; returns `(answer,
    /// response_time_s)`.
    fn ask(&self, worker: WorkerId, landmark: &Landmark, truth: bool) -> (bool, f64);

    /// Credits reward points.
    fn award(&self, worker: WorkerId, points: f64);

    /// Settles a reservation as completed (frees the slot, keeps the
    /// answers).
    fn commit(&self, worker: WorkerId);

    /// Settles a reservation as abandoned (frees the slot).
    fn release(&self, worker: WorkerId);

    /// Reservation/contention counters.
    fn desk_stats(&self) -> DeskStats;
}

/// RAII guard for one reserved assignment slot: commits explicitly,
/// releases on drop — so a reservation is settled exactly once on every
/// control path, including early returns and panics.
#[must_use = "an unused reservation releases the slot immediately"]
pub struct Reservation {
    desk: Arc<dyn CrowdDesk>,
    worker: WorkerId,
    open: bool,
}

impl Reservation {
    /// Reserves a slot on `worker`, returning the guard that settles it.
    pub fn acquire(desk: &Arc<dyn CrowdDesk>, worker: WorkerId) -> Result<Self, QuotaExhausted> {
        desk.try_reserve(worker)?;
        Ok(Reservation {
            desk: Arc::clone(desk),
            worker,
            open: true,
        })
    }

    /// The reserved worker.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Settles the reservation as completed.
    pub fn commit(mut self) {
        self.open = false;
        self.desk.commit(self.worker);
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.open {
            self.desk.release(self.worker);
        }
    }
}

impl std::fmt::Debug for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation")
            .field("worker", &self.worker)
            .field("open", &self.open)
            .finish()
    }
}

/// The `Arc`-shareable desk over a simulated [`Platform`]: one mutex
/// around the platform, a hard per-worker `max_outstanding` cap enforced
/// inside [`try_reserve`](CrowdDesk::try_reserve), and contention
/// counters. N concurrent resolvers sharing one `SharedCrowd` can never
/// assign a worker more than `max_outstanding` simultaneous tasks.
pub struct SharedCrowd {
    /// The population, shared outside the mutex (it is immutable), so
    /// selection reads don't serialise on crowd I/O.
    population: Arc<WorkerPopulation>,
    inner: Mutex<Platform>,
    max_outstanding: u32,
    reserved: AtomicU64,
    quota_rejected: AtomicU64,
    committed: AtomicU64,
    released: AtomicU64,
    /// Per-worker high-water mark of the outstanding count, maintained
    /// inside the reserve critical section (exact, not sampled).
    high_water: Mutex<Vec<u32>>,
    /// Durability hook: invoked (under the platform lock) for every
    /// recorded answer. Unset desks pay one atomic load per ask.
    observer: OnceLock<AnswerObserver>,
}

impl SharedCrowd {
    /// Wraps `platform` with a hard per-worker cap of `max_outstanding`
    /// concurrent tasks (clamped to ≥ 1).
    pub fn new(platform: Platform, max_outstanding: u32) -> Self {
        let n = platform.population().len();
        SharedCrowd {
            population: platform.population_arc(),
            inner: Mutex::new(platform),
            max_outstanding: max_outstanding.max(1),
            reserved: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            released: AtomicU64::new(0),
            high_water: Mutex::new(vec![0; n]),
            observer: OnceLock::new(),
        }
    }

    /// The highest outstanding count `worker` ever reached on this desk.
    pub fn high_water(&self, worker: WorkerId) -> u32 {
        self.high_water.lock().expect("desk poisoned")[worker.index()]
    }

    /// Runs `f` with the locked platform (read access for experiments —
    /// e.g. latent worker attributes the desk API deliberately hides).
    pub fn with_platform<R>(&self, f: impl FnOnce(&Platform) -> R) -> R {
        f(&self.lock())
    }

    fn lock(&self) -> MutexGuard<'_, Platform> {
        self.inner.lock().expect("crowd desk poisoned")
    }
}

impl std::fmt::Debug for SharedCrowd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCrowd")
            .field("workers", &self.population.len())
            .field("max_outstanding", &self.max_outstanding)
            .field("stats", &self.desk_stats())
            .finish()
    }
}

impl CrowdObserve for SharedCrowd {
    fn population(&self) -> &WorkerPopulation {
        &self.population
    }

    fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)> {
        self.lock().worker_history(worker)
    }

    fn response_times(&self, worker: WorkerId) -> Vec<f64> {
        self.lock().observed_response_times(worker).to_vec()
    }

    fn response_time_stats(&self, worker: WorkerId) -> (usize, f64) {
        CrowdObserve::response_time_stats(&*self.lock(), worker)
    }

    fn selection_snapshot(&self) -> Vec<(u32, usize, f64)> {
        // One lock acquisition for the whole population.
        CrowdObserve::selection_snapshot(&*self.lock())
    }

    fn outstanding(&self, worker: WorkerId) -> u32 {
        self.lock().outstanding(worker)
    }

    fn points(&self, worker: WorkerId) -> f64 {
        self.lock().points(worker)
    }

    fn generation(&self) -> u64 {
        self.lock().generation()
    }
}

impl CrowdDesk for SharedCrowd {
    fn max_outstanding(&self) -> u32 {
        self.max_outstanding
    }

    fn try_reserve(&self, worker: WorkerId) -> Result<(), QuotaExhausted> {
        let mut platform = self.lock();
        let outstanding = platform.outstanding(worker);
        if outstanding >= self.max_outstanding {
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QuotaExhausted {
                worker,
                outstanding,
                max_outstanding: self.max_outstanding,
            });
        }
        platform.assign(worker);
        // High-water bookkeeping stays inside the platform lock so the
        // recorded peak is exact.
        let mut hw = self.high_water.lock().expect("desk poisoned");
        let slot = &mut hw[worker.index()];
        *slot = (*slot).max(outstanding + 1);
        self.reserved.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn ask(&self, worker: WorkerId, landmark: &Landmark, truth: bool) -> (bool, f64) {
        let mut platform = self.lock();
        let (answer, rt) = platform.ask(worker, landmark, truth);
        // Notified while the platform lock is held: the observer sees
        // answers in strict generation order, which is what lets log
        // replay reproduce the history byte-for-byte.
        if let Some(observer) = self.observer.get() {
            observer(&AnswerRecord {
                worker,
                landmark: landmark.id,
                correct: answer == truth,
                response_time: rt,
                generation: platform.generation(),
            });
        }
        (answer, rt)
    }

    fn award(&self, worker: WorkerId, points: f64) {
        self.lock().award(worker, points);
    }

    fn commit(&self, worker: WorkerId) {
        let mut platform = self.lock();
        platform.finish(worker);
        // Incremented while the platform lock is held (as in
        // `try_reserve`), so a locked `desk_stats` snapshot is exact.
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    fn release(&self, worker: WorkerId) {
        let mut platform = self.lock();
        platform.finish(worker);
        self.released.fetch_add(1, Ordering::Relaxed);
    }

    fn desk_stats(&self) -> DeskStats {
        // Every counter mutation happens under the platform lock, so a
        // snapshot taken under the same lock is internally consistent —
        // `in_flight` can never go negative, even mid-flight.
        let _platform = self.lock();
        DeskStats {
            reserved: self.reserved.load(Ordering::Relaxed),
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
        }
    }
}

impl CrowdState for SharedCrowd {
    fn export_state(&self) -> PlatformState {
        self.lock().export_state()
    }

    fn import_state(&self, state: &PlatformState) -> Result<(), StateSizeMismatch> {
        self.lock().import_state(state)
    }

    fn apply_answer(&self, record: &AnswerRecord) {
        self.lock().apply_answer(
            record.worker,
            record.landmark,
            record.correct,
            record.response_time,
            record.generation,
        );
    }

    fn set_answer_observer(&self, observer: AnswerObserver) -> bool {
        self.observer.set(observer).is_ok()
    }
}

/// The pre-redesign behaviour behind the desk API: unconditional
/// assignment (`try_reserve` never rejects — exactly the borrowed
/// planner's direct `assign`/`finish` calls, because an effectively
/// infinite cap can never bind). This is the reference implementation
/// the equivalence proptest checks a *capped* [`SharedCrowd`] against,
/// and the zero-ceremony desk for single-owner sequential experiments.
/// Internally it *is* a [`SharedCrowd`] with `max_outstanding =
/// u32::MAX`, so the locking/accounting machinery exists exactly once.
pub struct DirectDesk(SharedCrowd);

impl DirectDesk {
    /// Wraps `platform` without any reservation cap.
    pub fn new(platform: Platform) -> Self {
        DirectDesk(SharedCrowd::new(platform, u32::MAX))
    }

    /// Runs `f` with the locked platform.
    pub fn with_platform<R>(&self, f: impl FnOnce(&Platform) -> R) -> R {
        self.0.with_platform(f)
    }
}

impl std::fmt::Debug for DirectDesk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectDesk")
            .field("workers", &self.0.population().len())
            .finish()
    }
}

impl CrowdObserve for DirectDesk {
    fn population(&self) -> &WorkerPopulation {
        self.0.population()
    }

    fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)> {
        self.0.worker_history(worker)
    }

    fn response_times(&self, worker: WorkerId) -> Vec<f64> {
        self.0.response_times(worker)
    }

    fn response_time_stats(&self, worker: WorkerId) -> (usize, f64) {
        self.0.response_time_stats(worker)
    }

    fn selection_snapshot(&self) -> Vec<(u32, usize, f64)> {
        self.0.selection_snapshot()
    }

    fn outstanding(&self, worker: WorkerId) -> u32 {
        self.0.outstanding(worker)
    }

    fn points(&self, worker: WorkerId) -> f64 {
        self.0.points(worker)
    }

    fn generation(&self) -> u64 {
        self.0.generation()
    }
}

impl CrowdDesk for DirectDesk {
    fn max_outstanding(&self) -> u32 {
        self.0.max_outstanding()
    }

    fn try_reserve(&self, worker: WorkerId) -> Result<(), QuotaExhausted> {
        self.0.try_reserve(worker)
    }

    fn ask(&self, worker: WorkerId, landmark: &Landmark, truth: bool) -> (bool, f64) {
        self.0.ask(worker, landmark, truth)
    }

    fn award(&self, worker: WorkerId, points: f64) {
        self.0.award(worker, points);
    }

    fn commit(&self, worker: WorkerId) {
        self.0.commit(worker);
    }

    fn release(&self, worker: WorkerId) {
        self.0.release(worker);
    }

    fn desk_stats(&self) -> DeskStats {
        self.0.desk_stats()
    }
}

impl CrowdState for DirectDesk {
    fn export_state(&self) -> PlatformState {
        self.0.export_state()
    }

    fn import_state(&self, state: &PlatformState) -> Result<(), StateSizeMismatch> {
        self.0.import_state(state)
    }

    fn apply_answer(&self, record: &AnswerRecord) {
        self.0.apply_answer(record);
    }

    fn set_answer_observer(&self, observer: AnswerObserver) -> bool {
        self.0.set_answer_observer(observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::AnswerModel;
    use crate::population::PopulationParams;
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    fn platform(seed: u64) -> (cp_roadnet::LandmarkSet, Platform) {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), seed);
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), seed);
        (lms, Platform::new(pop, AnswerModel::default(), seed))
    }

    #[test]
    fn desks_are_send_sync() {
        fn assert_shareable<T: Send + Sync + 'static>() {}
        assert_shareable::<SharedCrowd>();
        assert_shareable::<DirectDesk>();
        assert_shareable::<Arc<dyn CrowdDesk>>();
    }

    #[test]
    fn answer_observer_sees_every_ask_in_generation_order() {
        let (lms, p) = platform(5);
        let desk = SharedCrowd::new(p, 4);
        let seen: Arc<Mutex<Vec<AnswerRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        assert!(desk.set_answer_observer(Box::new(move |r| sink.lock().unwrap().push(*r))));
        // A second installation is refused, not silently swapped.
        assert!(!desk.set_answer_observer(Box::new(|_| {})));
        let lm = lms.get(LandmarkId(0)).clone();
        for i in 0..6u32 {
            let (answer, rt) = desk.ask(WorkerId(i % 3), &lm, i % 2 == 0);
            let rec = seen.lock().unwrap().last().copied().unwrap();
            assert_eq!(rec.correct, answer == (i % 2 == 0));
            assert_eq!(rec.response_time, rt);
        }
        let recs = seen.lock().unwrap();
        assert_eq!(recs.len(), 6);
        assert!(recs
            .windows(2)
            .all(|w| w[0].generation + 1 == w[1].generation));
        // Replaying the records onto a second desk (same seed, fresh
        // platform) reproduces the history exactly.
        let (_, q) = platform(5);
        let replay = SharedCrowd::new(q, 4);
        for r in recs.iter() {
            replay.apply_answer(r);
        }
        let (a, b) = (desk.export_state(), replay.export_state());
        assert_eq!(a.generation, b.generation);
        assert_eq!(a.history, b.history);
        assert_eq!(a.response_times, b.response_times);
    }

    #[test]
    fn cap_rejects_with_typed_outcome() {
        let (_, p) = platform(3);
        let desk = SharedCrowd::new(p, 2);
        let w = WorkerId(0);
        assert!(desk.try_reserve(w).is_ok());
        assert!(desk.try_reserve(w).is_ok());
        let err = desk.try_reserve(w).unwrap_err();
        assert_eq!(
            err,
            QuotaExhausted {
                worker: w,
                outstanding: 2,
                max_outstanding: 2
            }
        );
        assert!(err.to_string().contains("quota exhausted"));
        let stats = desk.desk_stats();
        assert_eq!(stats.reserved, 2);
        assert_eq!(stats.quota_rejected, 1);
        assert_eq!(stats.in_flight(), 2);
        desk.commit(w);
        desk.release(w);
        assert_eq!(desk.outstanding(w), 0);
        assert!(desk.desk_stats().is_drained());
        assert_eq!(desk.high_water(w), 2);
    }

    #[test]
    fn reservation_guard_settles_exactly_once() {
        let (_, p) = platform(5);
        let desk: Arc<dyn CrowdDesk> = Arc::new(SharedCrowd::new(p, 1));
        let w = WorkerId(7);
        {
            let r = Reservation::acquire(&desk, w).unwrap();
            assert_eq!(r.worker(), w);
            assert_eq!(desk.outstanding(w), 1);
            // Cap reached: a second concurrent reservation must bounce.
            assert!(Reservation::acquire(&desk, w).is_err());
        } // dropped uncommitted → released
        assert_eq!(desk.outstanding(w), 0);
        let r = Reservation::acquire(&desk, w).unwrap();
        r.commit();
        assert_eq!(desk.outstanding(w), 0);
        let stats = desk.desk_stats();
        assert_eq!(stats.reserved, 2);
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.released, 1);
        assert!(stats.is_drained());
    }

    #[test]
    fn concurrent_reservers_never_exceed_the_cap() {
        let (_, p) = platform(7);
        let desk = Arc::new(SharedCrowd::new(p, 3));
        let w = WorkerId(1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let desk = Arc::clone(&desk);
                s.spawn(move || {
                    for _ in 0..200 {
                        if desk.try_reserve(w).is_ok() {
                            assert!(desk.outstanding(w) <= 3);
                            std::thread::yield_now();
                            desk.release(w);
                        }
                    }
                });
            }
        });
        assert_eq!(desk.outstanding(w), 0);
        assert!(desk.high_water(w) <= 3);
        assert!(desk.desk_stats().is_drained());
    }

    #[test]
    fn shared_desk_mirrors_platform_observables_and_io() {
        let (lms, mut p) = platform(11);
        p.warm_up(&lms, 3);
        let gen_before = CrowdObserve::generation(&p);
        let w = WorkerId(2);
        let history = Platform::worker_history(&p, w);
        let desk = SharedCrowd::new(p, 5);
        assert_eq!(desk.worker_history(w), history);
        assert_eq!(desk.response_times(w).len(), 3);
        assert_eq!(desk.generation(), gen_before);
        let lm = lms.get(LandmarkId(0)).clone();
        desk.try_reserve(w).unwrap();
        let (_, rt) = desk.ask(w, &lm, true);
        assert!(rt > 0.0);
        assert_eq!(desk.generation(), gen_before + 1);
        desk.award(w, 2.5);
        assert_eq!(desk.points(w), 2.5);
        desk.commit(w);
        assert_eq!(desk.outstanding(w), 0);
    }

    #[test]
    fn direct_desk_never_rejects() {
        let (_, p) = platform(13);
        let desk = DirectDesk::new(p);
        let w = WorkerId(0);
        for _ in 0..50 {
            desk.try_reserve(w).unwrap();
        }
        assert_eq!(desk.outstanding(w), 50);
        for _ in 0..50 {
            desk.commit(w);
        }
        assert!(desk.desk_stats().is_drained());
    }
}
