//! # cp-crowd — simulated crowdsourcing substrate
//!
//! Substitute for the paper's "hundreds of volunteers":
//!
//! * [`worker`] — worker profiles (public) + latent behavioural attributes;
//! * [`population`] — deterministic population generation and the
//!   ground-truth familiarity definition;
//! * [`answer`] — the familiarity-dependent answer-noise model;
//! * [`response`] — exponential response times: sampling, MLE, CDF
//!   (paper §IV-A);
//! * [`platform`] — the in-memory platform tracking history, quotas and
//!   rewards.

#![warn(missing_docs)]

pub mod answer;
pub mod platform;
pub mod population;
pub mod response;
pub mod worker;

pub use answer::AnswerModel;
pub use platform::{AnswerTally, Platform};
pub use population::{PopulationParams, WorkerPopulation};
pub use response::{estimate_lambda, response_probability, sample_response_time};
pub use worker::{Worker, WorkerId};
