//! # cp-crowd — simulated crowdsourcing substrate
//!
//! Substitute for the paper's "hundreds of volunteers":
//!
//! * [`worker`] — worker profiles (public) + latent behavioural attributes;
//! * [`population`] — deterministic population generation and the
//!   ground-truth familiarity definition;
//! * [`answer`] — the familiarity-dependent answer-noise model;
//! * [`response`] — exponential response times: sampling, MLE, CDF
//!   (paper §IV-A);
//! * [`platform`] — the in-memory platform tracking history, quotas and
//!   rewards;
//! * [`desk`] — the shared crowd desk: the **reserve → ask → commit**
//!   protocol ([`CrowdDesk`]), the [`SharedCrowd`] implementation with a
//!   hard per-worker `max_outstanding` cap and contention counters, and
//!   the read-only [`CrowdObserve`] view the worker-selection pipeline
//!   consumes. This is what lets N concurrent resolvers share one crowd
//!   without oversubscribing any worker.

#![warn(missing_docs)]

pub mod answer;
pub mod desk;
pub mod platform;
pub mod population;
pub mod response;
pub mod worker;

pub use answer::AnswerModel;
pub use desk::{
    AnswerObserver, AnswerRecord, CrowdDesk, CrowdObserve, CrowdState, DeskStats, DirectDesk,
    QuotaExhausted, Reservation, SharedCrowd,
};
pub use platform::{AnswerTally, Platform, PlatformState, StateSizeMismatch};
pub use population::{PopulationParams, WorkerPopulation};
pub use response::{estimate_lambda, response_probability, sample_response_time};
pub use worker::{Worker, WorkerId};
