//! Probabilistic answer model.
//!
//! A worker asked a binary landmark question ("would you recommend the
//! route passing landmark *l*?") answers correctly with a probability that
//! grows with their true familiarity and carefulness, and degenerates to a
//! coin flip when they know nothing — the standard crowdsourcing noise
//! model, and the behaviour the paper's worker selection is designed to
//! exploit ("a recommended route will have high confidence to be correct
//! if assigned workers are very familiar with this area").

use crate::population::WorkerPopulation;
use crate::worker::WorkerId;
use cp_roadnet::Landmark;
use rand::rngs::SmallRng;
use rand::RngExt;

/// Accuracy floor (coin flip) and ceiling of the answer model.
#[derive(Debug, Clone, Copy)]
pub struct AnswerModel {
    /// Max accuracy a perfectly familiar, perfectly careful worker reaches.
    pub max_accuracy: f64,
}

impl Default for AnswerModel {
    fn default() -> Self {
        AnswerModel { max_accuracy: 0.97 }
    }
}

impl AnswerModel {
    /// Probability that `worker` answers a question about `landmark`
    /// correctly.
    pub fn accuracy(
        &self,
        population: &WorkerPopulation,
        worker: WorkerId,
        landmark: &Landmark,
    ) -> f64 {
        let fam = population.true_familiarity(worker, landmark);
        let care = population.get(worker).reliability;
        let knowledge = (fam * care).clamp(0.0, 1.0);
        0.5 + (self.max_accuracy - 0.5) * knowledge
    }

    /// Samples the worker's yes/no answer to "does the best route pass
    /// `landmark`?", where `truth` is the correct answer.
    pub fn sample_answer(
        &self,
        population: &WorkerPopulation,
        worker: WorkerId,
        landmark: &Landmark,
        truth: bool,
        rng: &mut SmallRng,
    ) -> bool {
        let acc = self.accuracy(population, worker, landmark);
        if rng.random_bool(acc) {
            truth
        } else {
            !truth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationParams;
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};
    use rand::SeedableRng;

    fn setup() -> (cp_roadnet::LandmarkSet, WorkerPopulation) {
        let city = generate_city(&CityParams::small(), 47).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 47);
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 47);
        (lms, pop)
    }

    #[test]
    fn accuracy_within_bounds() {
        let (lms, pop) = setup();
        let model = AnswerModel::default();
        for w in pop.ids() {
            for l in lms.iter().take(20) {
                let a = model.accuracy(&pop, w, l);
                assert!((0.5..=0.97).contains(&a), "accuracy {a}");
            }
        }
    }

    #[test]
    fn familiar_workers_answer_better() {
        let (lms, pop) = setup();
        let model = AnswerModel::default();
        let l = lms.iter().next().unwrap();
        // Best- vs worst-informed worker for this landmark.
        let best = pop
            .ids()
            .max_by(|&a, &b| {
                model
                    .accuracy(&pop, a, l)
                    .partial_cmp(&model.accuracy(&pop, b, l))
                    .unwrap()
            })
            .unwrap();
        let worst = pop
            .ids()
            .min_by(|&a, &b| {
                model
                    .accuracy(&pop, a, l)
                    .partial_cmp(&model.accuracy(&pop, b, l))
                    .unwrap()
            })
            .unwrap();
        assert!(model.accuracy(&pop, best, l) > model.accuracy(&pop, worst, l));
    }

    #[test]
    fn empirical_accuracy_matches_model() {
        let (lms, pop) = setup();
        let model = AnswerModel::default();
        let l = lms.iter().next().unwrap();
        let w = pop.ids().next().unwrap();
        let expect = model.accuracy(&pop, w, l);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| model.sample_answer(&pop, w, l, true, &mut rng))
            .count();
        let emp = correct as f64 / n as f64;
        assert!(
            (emp - expect).abs() < 0.02,
            "empirical {emp} vs model {expect}"
        );
    }

    #[test]
    fn answers_cover_both_truth_values() {
        let (lms, pop) = setup();
        let model = AnswerModel::default();
        let l = lms.iter().next().unwrap();
        let w = pop.ids().next().unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        // With truth=false the answer distribution flips.
        let n = 5_000;
        let yes = (0..n)
            .filter(|_| model.sample_answer(&pop, w, l, false, &mut rng))
            .count();
        assert!(
            yes < n / 2,
            "most answers should be 'no' when truth is 'no'"
        );
    }
}
