//! In-memory crowdsourcing platform.
//!
//! Holds the worker population and every observable the server-side
//! algorithms are allowed to see: per-(worker, landmark) answer history,
//! observed response times, outstanding-task counts and reward balances.
//! The platform also *simulates* worker behaviour (answers and latencies)
//! from the latent attributes, so experiments can compare what the
//! algorithms estimated against what was actually true.

use crate::answer::AnswerModel;
use crate::population::WorkerPopulation;
use crate::response::sample_response_time;
use crate::worker::WorkerId;
use cp_roadnet::{Landmark, LandmarkId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-(worker, landmark) answer tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnswerTally {
    /// Questions about this landmark the worker answered correctly.
    pub correct: u32,
    /// Questions answered incorrectly.
    pub wrong: u32,
}

/// Portable image of a [`Platform`]'s mutable state, for durability.
///
/// Field types are deliberately raw (`u32` ids, `u64` tallies) so the
/// persistence layer can serialize it without depending on this crate's
/// types. Outstanding-task counts are excluded: they track in-flight
/// reservations, which do not survive a restart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformState {
    /// Answer-history generation (total answers ever given).
    pub generation: u64,
    /// Internal RNG state, so post-restore sampling resumes the exact
    /// stream an uncrashed run would have produced.
    pub rng: [u64; 4],
    /// Reward balance per worker.
    pub points: Vec<f64>,
    /// Observed response times per worker (same length as `points`).
    pub response_times: Vec<Vec<f64>>,
    /// `(worker, landmark, correct, wrong)` tallies, sorted by
    /// `(worker, landmark)` for deterministic comparison.
    pub history: Vec<(u32, u32, u64, u64)>,
}

/// Error importing [`PlatformState`]: the state was exported from a
/// population of a different size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSizeMismatch {
    /// Workers in the live population.
    pub expected: usize,
    /// Workers in the imported state.
    pub got: usize,
}

impl std::fmt::Display for StateSizeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crowd state has {} workers but the live population has {}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for StateSizeMismatch {}

/// The simulated crowdsourcing platform.
#[derive(Debug)]
pub struct Platform {
    /// Shared handle: the population is immutable, so desks wrapping the
    /// platform in a mutex can still hand out lock-free references.
    population: Arc<WorkerPopulation>,
    model: AnswerModel,
    history: HashMap<(WorkerId, LandmarkId), AnswerTally>,
    response_times: Vec<Vec<f64>>,
    outstanding: Vec<u32>,
    points: Vec<f64>,
    /// Answer-history version, bumped on every [`Platform::ask`]; cached
    /// derived state (e.g. knowledge models) is keyed by this.
    generation: u64,
    rng: SmallRng,
}

impl Platform {
    /// Creates a platform over `population` with behaviour driven by
    /// `model`, deterministic from `seed`.
    pub fn new(population: WorkerPopulation, model: AnswerModel, seed: u64) -> Self {
        let n = population.len();
        Platform {
            population: Arc::new(population),
            model,
            history: HashMap::new(),
            response_times: vec![Vec::new(); n],
            outstanding: vec![0; n],
            points: vec![0.0; n],
            generation: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x1656_67B1_9E37_79F9),
        }
    }

    /// The worker population.
    pub fn population(&self) -> &WorkerPopulation {
        &self.population
    }

    /// A shared handle to the (immutable) worker population.
    pub fn population_arc(&self) -> Arc<WorkerPopulation> {
        Arc::clone(&self.population)
    }

    /// Monotone answer-history version: bumped on every [`Platform::ask`].
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The answer model in force.
    pub fn answer_model(&self) -> &AnswerModel {
        &self.model
    }

    /// Observed answer tally of `worker` on `landmark`.
    pub fn tally(&self, worker: WorkerId, landmark: LandmarkId) -> AnswerTally {
        self.history
            .get(&(worker, landmark))
            .copied()
            .unwrap_or_default()
    }

    /// All (landmark, tally) records of one worker, in landmark order.
    pub fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)> {
        let mut out: Vec<(LandmarkId, AnswerTally)> = self
            .history
            .iter()
            .filter(|((w, _), _)| *w == worker)
            .map(|((_, l), t)| (*l, *t))
            .collect();
        out.sort_unstable_by_key(|(l, _)| *l);
        out
    }

    /// Observed response times of a worker, seconds.
    pub fn observed_response_times(&self, worker: WorkerId) -> &[f64] {
        &self.response_times[worker.index()]
    }

    /// Number of outstanding (assigned, unanswered) tasks of a worker.
    pub fn outstanding(&self, worker: WorkerId) -> u32 {
        self.outstanding[worker.index()]
    }

    /// Reward balance of a worker.
    pub fn points(&self, worker: WorkerId) -> f64 {
        self.points[worker.index()]
    }

    /// Marks a task as assigned to the worker.
    pub fn assign(&mut self, worker: WorkerId) {
        self.outstanding[worker.index()] += 1;
    }

    /// Marks one assigned task of the worker as finished.
    pub fn finish(&mut self, worker: WorkerId) {
        let o = &mut self.outstanding[worker.index()];
        *o = o.saturating_sub(1);
    }

    /// Credits reward points (paper's rewarding component: by workload and
    /// answer quality).
    pub fn award(&mut self, worker: WorkerId, points: f64) {
        self.points[worker.index()] += points;
    }

    /// Simulates asking `worker` the binary question about `landmark` whose
    /// correct answer is `truth`. Returns `(answer, response_time_s)` and
    /// records both the response time and the correctness tally.
    pub fn ask(&mut self, worker: WorkerId, landmark: &Landmark, truth: bool) -> (bool, f64) {
        let answer =
            self.model
                .sample_answer(&self.population, worker, landmark, truth, &mut self.rng);
        let rt = sample_response_time(self.population.get(worker).lambda, &mut self.rng);
        self.response_times[worker.index()].push(rt);
        self.generation += 1;
        let tally = self.history.entry((worker, landmark.id)).or_default();
        if answer == truth {
            tally.correct += 1;
        } else {
            tally.wrong += 1;
        }
        (answer, rt)
    }

    /// Re-applies one logged answer without sampling: records the
    /// response time, bumps the tally, and adopts `generation` (the
    /// generation the original [`Platform::ask`] left behind). Used by
    /// log replay, where the outcome is already known — the RNG is
    /// untouched.
    pub fn apply_answer(
        &mut self,
        worker: WorkerId,
        landmark: LandmarkId,
        correct: bool,
        response_time: f64,
        generation: u64,
    ) {
        self.response_times[worker.index()].push(response_time);
        self.generation = generation;
        let tally = self.history.entry((worker, landmark)).or_default();
        if correct {
            tally.correct += 1;
        } else {
            tally.wrong += 1;
        }
    }

    /// Exports the mutable state (answer history, response times,
    /// rewards, generation, RNG) for persistence. The history is sorted
    /// by `(worker, landmark)` so exports compare deterministically.
    pub fn export_state(&self) -> PlatformState {
        let mut history: Vec<(u32, u32, u64, u64)> = self
            .history
            .iter()
            .map(|((w, l), t)| (w.0, l.0, t.correct as u64, t.wrong as u64))
            .collect();
        history.sort_unstable();
        PlatformState {
            generation: self.generation,
            rng: self.rng.state(),
            points: self.points.clone(),
            response_times: self.response_times.clone(),
            history,
        }
    }

    /// Replaces the mutable state with a previously exported one.
    /// Outstanding-task counts reset to zero (no reservations survive a
    /// restart). Fails if `state` was exported from a population of a
    /// different size.
    pub fn import_state(&mut self, state: &PlatformState) -> Result<(), StateSizeMismatch> {
        let n = self.population.len();
        if state.points.len() != n || state.response_times.len() != n {
            return Err(StateSizeMismatch {
                expected: n,
                got: state.points.len().max(state.response_times.len()),
            });
        }
        self.generation = state.generation;
        self.rng = SmallRng::from_state(state.rng);
        self.points = state.points.clone();
        self.response_times = state.response_times.clone();
        self.outstanding = vec![0; n];
        self.history = state
            .history
            .iter()
            .map(|&(w, l, c, x)| {
                (
                    (WorkerId(w), LandmarkId(l)),
                    AnswerTally {
                        correct: c.min(u32::MAX as u64) as u32,
                        wrong: x.min(u32::MAX as u64) as u32,
                    },
                )
            })
            .collect();
        Ok(())
    }

    /// Warms up the platform with `rounds` historical questions per worker,
    /// so familiarity scores have history to draw on (the paper's "history
    /// of worker's tasks around this area"). Mirroring a real platform —
    /// where the worker-selection loop itself routes questions to nearby
    /// workers — two thirds of warm-up questions concern landmarks near
    /// the worker's own anchor places and the rest are city-wide.
    pub fn warm_up(&mut self, landmarks: &cp_roadnet::LandmarkSet, rounds: usize) {
        self.warm_up_with_radius(landmarks, rounds, 2500.0);
    }

    /// [`Self::warm_up`] with an explicit locality radius — use a radius
    /// proportional to the city size (≈ a couple of knowledge scales).
    pub fn warm_up_with_radius(
        &mut self,
        landmarks: &cp_roadnet::LandmarkSet,
        rounds: usize,
        radius: f64,
    ) {
        use rand::RngExt;
        if landmarks.is_empty() {
            return;
        }
        let ids: Vec<WorkerId> = self.population.ids().collect();
        for w in ids {
            let (home, work) = {
                let p = self.population.get(w);
                (p.home, p.work)
            };
            for r in 0..rounds {
                let local = self.rng.random_bool(2.0 / 3.0);
                let li = if local {
                    let anchor = if r % 2 == 0 { home } else { work };
                    let near = landmarks.within_radius(&anchor, radius);
                    if near.is_empty() {
                        LandmarkId(self.rng.random_range(0..landmarks.len() as u32))
                    } else {
                        near[self.rng.random_range(0..near.len())]
                    }
                } else {
                    LandmarkId(self.rng.random_range(0..landmarks.len() as u32))
                };
                let truth = self.rng.random_bool(0.5);
                let lm = landmarks.get(li).clone();
                self.ask(w, &lm, truth);
                self.finish(w); // warm-up answers do not hold quota
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationParams;
    use cp_roadnet::{
        generate_city, generate_landmarks, CityParams, LandmarkGenParams, LandmarkSet,
    };

    fn setup() -> (LandmarkSet, Platform) {
        let city = generate_city(&CityParams::small(), 53).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 53);
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 53);
        let platform = Platform::new(pop, AnswerModel::default(), 53);
        (lms, platform)
    }

    #[test]
    fn ask_records_history_and_response_time() {
        let (lms, mut p) = setup();
        let w = WorkerId(0);
        let lm = lms.get(cp_roadnet::LandmarkId(0)).clone();
        assert_eq!(p.tally(w, lm.id), AnswerTally::default());
        let (_, rt) = p.ask(w, &lm, true);
        assert!(rt > 0.0);
        let t = p.tally(w, lm.id);
        assert_eq!(t.correct + t.wrong, 1);
        assert_eq!(p.observed_response_times(w).len(), 1);
    }

    #[test]
    fn outstanding_tracks_assign_finish() {
        let (_, mut p) = setup();
        let w = WorkerId(3);
        assert_eq!(p.outstanding(w), 0);
        p.assign(w);
        p.assign(w);
        assert_eq!(p.outstanding(w), 2);
        p.finish(w);
        assert_eq!(p.outstanding(w), 1);
        p.finish(w);
        p.finish(w); // extra finish saturates, no underflow
        assert_eq!(p.outstanding(w), 0);
    }

    #[test]
    fn rewards_accumulate() {
        let (_, mut p) = setup();
        let w = WorkerId(1);
        p.award(w, 2.0);
        p.award(w, 3.5);
        assert_eq!(p.points(w), 5.5);
        assert_eq!(p.points(WorkerId(2)), 0.0);
    }

    #[test]
    fn warm_up_populates_everyone() {
        let (lms, mut p) = setup();
        p.warm_up(&lms, 10);
        for w in (0..p.population().len() as u32).map(WorkerId) {
            let h = p.worker_history(w);
            let total: u32 = h.iter().map(|(_, t)| t.correct + t.wrong).sum();
            assert_eq!(total, 10);
            assert_eq!(p.outstanding(w), 0);
        }
    }

    #[test]
    fn history_correctness_tracks_familiarity() {
        // After a long warm-up, workers should on average answer better
        // about landmarks they truly know.
        let (lms, mut p) = setup();
        p.warm_up(&lms, 200);
        // Aggregate total correct/total answered per familiarity bucket
        // (pooled, so sparse buckets are not dominated by tiny samples).
        let (mut fam_c, mut fam_t, mut unfam_c, mut unfam_t) = (0u64, 0u64, 0u64, 0u64);
        for w in (0..p.population().len() as u32).map(WorkerId) {
            for (l, t) in p.worker_history(w) {
                let lm = lms.get(l);
                let fam = p.population().true_familiarity(w, lm);
                let (c, n) = (t.correct as u64, (t.correct + t.wrong) as u64);
                if fam > 0.7 {
                    fam_c += c;
                    fam_t += n;
                } else if fam < 0.3 {
                    unfam_c += c;
                    unfam_t += n;
                }
            }
        }
        assert!(fam_t > 0 && unfam_t > 0, "both buckets need data");
        let fam_rate = fam_c as f64 / fam_t as f64;
        let unfam_rate = unfam_c as f64 / unfam_t as f64;
        assert!(
            fam_rate > unfam_rate,
            "familiar {fam_rate} vs unfamiliar {unfam_rate}"
        );
    }

    #[test]
    fn export_import_resumes_identical_stream() {
        let (lms, mut p) = setup();
        p.warm_up(&lms, 5);
        let state = p.export_state();
        // Same population (deterministic from the seed) but a different
        // platform seed: import must overwrite everything that matters.
        let city = generate_city(&CityParams::small(), 53).unwrap();
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 53);
        let mut q = Platform::new(pop, AnswerModel::default(), 999);
        q.import_state(&state).unwrap();
        assert_eq!(q.export_state(), state);
        // Post-import asks replay the exact stream the original would
        // have produced.
        let lm = lms.get(cp_roadnet::LandmarkId(2)).clone();
        for i in 0..10 {
            let w = WorkerId(i % 4);
            assert_eq!(p.ask(w, &lm, i % 2 == 0), q.ask(w, &lm, i % 2 == 0));
        }
        assert_eq!(p.export_state(), q.export_state());
    }

    #[test]
    fn import_rejects_population_size_mismatch() {
        let (_, mut p) = setup();
        let mut state = p.export_state();
        state.points.pop();
        state.response_times.pop();
        assert!(p.import_state(&state).is_err());
    }

    #[test]
    fn apply_answer_replays_history_without_rng() {
        let (lms, mut p) = setup();
        let q_seed_state = p.export_state();
        let mut q = {
            let city = generate_city(&CityParams::small(), 53).unwrap();
            let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 53);
            let mut q = Platform::new(pop, AnswerModel::default(), 777);
            q.import_state(&q_seed_state).unwrap();
            q
        };
        let mut log = Vec::new();
        for i in 0..20u32 {
            let w = WorkerId(i % 4);
            let li = cp_roadnet::LandmarkId(i % 6);
            let lm = lms.get(li).clone();
            let truth = i % 3 == 0;
            let (answer, rt) = p.ask(w, &lm, truth);
            log.push((w, li, answer == truth, rt, p.generation()));
        }
        for (w, l, correct, rt, generation) in log {
            q.apply_answer(w, l, correct, rt, generation);
        }
        let (a, b) = (p.export_state(), q.export_state());
        assert_eq!(a.generation, b.generation);
        assert_eq!(a.history, b.history);
        assert_eq!(a.response_times, b.response_times);
    }

    #[test]
    fn worker_history_is_sorted_and_scoped() {
        let (lms, mut p) = setup();
        let w = WorkerId(0);
        let other = WorkerId(1);
        for i in [5u32, 2, 9] {
            let lm = lms.get(cp_roadnet::LandmarkId(i)).clone();
            p.ask(w, &lm, true);
        }
        let lm = lms.get(cp_roadnet::LandmarkId(1)).clone();
        p.ask(other, &lm, false);
        let h = p.worker_history(w);
        assert_eq!(h.len(), 3);
        assert!(h.windows(2).all(|x| x[0].0 < x[1].0));
        assert!(h.iter().all(|(l, _)| l.0 != 1));
    }
}
