//! Worker profiles.
//!
//! A worker of CrowdPlanner is a registered user who answers route
//! questions. The paper's worker-selection component consumes the profile
//! ("her home address, work place and familiar suburbs, which can be
//! collected during her registration") and the answer history; the
//! simulator additionally carries *latent* attributes — true spatial
//! knowledge, category tastes, carefulness, response rate — that the
//! algorithms never see directly but that shape observable behaviour.

use cp_roadnet::Point;

/// Identifier of a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The worker id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A worker: public profile + latent simulation attributes.
#[derive(Debug, Clone)]
pub struct Worker {
    /// Identifier (dense).
    pub id: WorkerId,
    /// Registered home location (public profile).
    pub home: Point,
    /// Registered work location (public profile).
    pub work: Point,
    /// Registered "familiar region" anchor (public profile, the paper's
    /// `p_fr`).
    pub frequent: Point,
    /// Latent: knowledge-category affinities in `[0, 1]`, one per
    /// [`cp_roadnet::LandmarkCategory`]. Drives ground-truth familiarity;
    /// PMF is supposed to rediscover this structure.
    pub category_affinity: [f64; 6],
    /// Latent: carefulness in `[0, 1]`; scales answer accuracy.
    pub reliability: f64,
    /// Latent: response rate λ (answers per second); response times are
    /// exponential with this rate (paper §IV-A).
    pub lambda: f64,
    /// Latent: spatial knowledge scale in metres — how far from their
    /// anchor points the worker's knowledge extends.
    pub knowledge_scale: f64,
}

impl Worker {
    /// Minimum distance from the landmark position to any of the worker's
    /// anchor places.
    pub fn min_anchor_distance(&self, p: &Point) -> f64 {
        self.home
            .distance(p)
            .min(self.work.distance(p))
            .min(self.frequent.distance(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker() -> Worker {
        Worker {
            id: WorkerId(0),
            home: Point::new(0.0, 0.0),
            work: Point::new(1000.0, 0.0),
            frequent: Point::new(0.0, 1000.0),
            category_affinity: [0.5; 6],
            reliability: 0.9,
            lambda: 1.0 / 600.0,
            knowledge_scale: 1500.0,
        }
    }

    #[test]
    fn min_anchor_distance_picks_closest() {
        let w = worker();
        assert_eq!(w.min_anchor_distance(&Point::new(10.0, 0.0)), 10.0);
        assert_eq!(w.min_anchor_distance(&Point::new(990.0, 0.0)), 10.0);
        assert_eq!(w.min_anchor_distance(&Point::new(0.0, 995.0)), 5.0);
    }
}
