//! Micro-benchmarks of the routing substrate: Dijkstra vs A* vs Yen's
//! k-shortest paths on the benchmark-sized city.

use cp_roadnet::routing::{astar_path, dijkstra_path, distance_cost, k_shortest_paths, time_cost};
use cp_roadnet::{generate_city, CityParams, NodeId, RoadClass};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let city = generate_city(&CityParams::large(), 1).expect("city");
    let g = &city.graph;
    let (a, b) = (NodeId(0), NodeId((g.node_count() - 1) as u32));

    let mut group = c.benchmark_group("routing");
    group.bench_function("dijkstra_distance", |bench| {
        bench.iter(|| dijkstra_path(g, black_box(a), black_box(b), distance_cost(g)).unwrap())
    });
    group.bench_function("dijkstra_time", |bench| {
        bench.iter(|| dijkstra_path(g, black_box(a), black_box(b), time_cost(g)).unwrap())
    });
    group.bench_function("astar_distance", |bench| {
        bench.iter(|| astar_path(g, black_box(a), black_box(b), distance_cost(g), 1.0).unwrap())
    });
    group.bench_function("astar_time", |bench| {
        bench.iter(|| {
            astar_path(
                g,
                black_box(a),
                black_box(b),
                time_cost(g),
                RoadClass::Highway.speed_mps(),
            )
            .unwrap()
        })
    });
    group.bench_function("yen_k4", |bench| {
        bench.iter(|| k_shortest_paths(g, black_box(a), black_box(b), 4, distance_cost(g)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
