//! Micro-benchmarks of the popular-route miners (experiment E1's inner
//! loop): per-query cost of MPR, MFP, LDR and the web services.

use cp_mining::{
    local_driver_route, most_frequent_path, most_popular_route, FastestRouteService, LdrParams,
    MfpParams, MprParams, ShortestRouteService, TransferNetwork,
};
use cp_roadnet::NodeId;
use cp_traj::TimeOfDay;
use criterion::{criterion_group, criterion_main, Criterion};
use crowdplanner::sim::{Scale, SimWorld};
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let world = SimWorld::build(Scale::Medium, 5).expect("world");
    let g = &world.city.graph;
    let trips = &world.trips.trips;
    let tn = TransferNetwork::build(g, trips, None);
    let (a, b) = (NodeId(0), NodeId((g.node_count() - 1) as u32));
    let dep = TimeOfDay::from_hours(8.0);

    let mut group = c.benchmark_group("mining");
    group.bench_function("ws_shortest", |bench| {
        bench.iter(|| {
            ShortestRouteService
                .route(g, black_box(a), black_box(b))
                .unwrap()
        })
    });
    group.bench_function("ws_fastest", |bench| {
        bench.iter(|| {
            FastestRouteService
                .route(g, black_box(a), black_box(b))
                .unwrap()
        })
    });
    group.bench_function("mpr", |bench| {
        bench.iter(|| {
            most_popular_route(g, &tn, black_box(a), black_box(b), &MprParams::default()).unwrap()
        })
    });
    group.bench_function("mfp_with_period_build", |bench| {
        bench.iter(|| {
            most_frequent_path(
                g,
                trips,
                black_box(a),
                black_box(b),
                dep,
                &MfpParams::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("ldr", |bench| {
        bench.iter(|| {
            local_driver_route(g, trips, black_box(a), black_box(b), &LdrParams::default()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
