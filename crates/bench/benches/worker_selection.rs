//! Micro-benchmarks of the worker-selection pipeline: PMF fitting,
//! Gaussian accumulation, and the full knowledge-model build.

use cp_core::worker_selection::{
    accumulate_scores, observed_matrix, KnowledgeModel, PmfModel, PmfParams,
};
use cp_core::Config;
use criterion::{criterion_group, criterion_main, Criterion};
use crowdplanner::sim::{Scale, SimWorld};
use std::hint::black_box;

fn bench_worker_selection(c: &mut Criterion) {
    let world = SimWorld::build(Scale::Small, 7).expect("world");
    let platform = world.platform(120, 20, 7);
    let cfg = Config::default();
    let obs = observed_matrix(&platform, &world.landmarks, &cfg);
    let n = platform.population().len();
    let m = world.landmarks.len();
    let model = PmfModel::fit(&obs, n, m, &PmfParams::default());
    let dense = model.densify(&obs);

    let mut group = c.benchmark_group("worker_selection");
    group.sample_size(20);
    group.bench_function("observed_matrix", |bench| {
        bench.iter(|| observed_matrix(black_box(&platform), &world.landmarks, &cfg))
    });
    group.bench_function("pmf_fit", |bench| {
        bench.iter(|| PmfModel::fit(black_box(&obs), n, m, &PmfParams::default()))
    });
    group.bench_function("gaussian_accumulate", |bench| {
        bench.iter(|| accumulate_scores(&world.landmarks, black_box(&dense), cfg.eta_dis))
    });
    group.bench_function("knowledge_model_full", |bench| {
        bench.iter(|| KnowledgeModel::build(black_box(&platform), &world.landmarks, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_worker_selection);
criterion_main!(benches);
