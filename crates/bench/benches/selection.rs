//! Micro-benchmarks of landmark selection (experiment E2's inner loop):
//! BruteForce vs ILS vs GreedySelect on growing instances.

use cp_bench::common::{random_selection_instance, rng};
use cp_core::taskgen::{SelectionAlgorithm, SelectionProblem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("landmark_selection");
    let mut r = rng(1002);
    for (n, m) in [(4usize, 12usize), (5, 16), (6, 20)] {
        let (routes, sigs) = random_selection_instance(n, m, &mut r);
        let Ok(problem) = SelectionProblem::prepare(&routes, &sigs) else {
            continue;
        };
        for alg in SelectionAlgorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), format!("n{n}_m{m}")),
                &problem,
                |bench, p| bench.iter(|| alg.run(black_box(p), 2_000_000).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
