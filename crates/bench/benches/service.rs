//! Serving-layer benchmarks: grid-indexed vs linear truth lookup, and
//! the sharded store, at 10k–50k stored truths.
//!
//! The acceptance bar for the serving subsystem is a ≥5× speedup of the
//! indexed lookup over the linear scan at ≥10k truths; the
//! `speedup_report` target measures and prints the ratio explicitly.

use cp_core::{Config, TruthEntry, TruthStore};
use cp_roadnet::routing::{dijkstra_path, distance_cost};
use cp_roadnet::{generate_city, City, NodeId, Path};
use cp_service::ShardedTruthStore;
use cp_traj::TimeOfDay;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

struct Fixture {
    city: City,
    store: TruthStore,
    sharded: ShardedTruthStore,
    queries: Vec<(NodeId, NodeId, TimeOfDay)>,
    cfg: Config,
}

fn fixture(n_truths: usize) -> Fixture {
    // A Medium city: a store of ≥10k truths only arises at urban scale,
    // and the spatial index should be judged on that footprint.
    let city = generate_city(&cp_roadnet::CityParams::medium(), 5).expect("city");
    let n = city.graph.node_count() as u32;
    let mut rng = SmallRng::seed_from_u64(0xACE);
    // A few route shapes are enough; endpoints and times vary.
    let paths: Vec<Path> = (0..8)
        .map(|i| {
            dijkstra_path(
                &city.graph,
                NodeId(i),
                NodeId(n - 1 - i),
                distance_cost(&city.graph),
            )
            .expect("connected")
        })
        .collect();
    let mut store = TruthStore::new();
    let sharded = ShardedTruthStore::with_shards(16);
    for i in 0..n_truths {
        let entry = TruthEntry {
            from: NodeId(rng.random_range(0..n)),
            to: NodeId(rng.random_range(0..n)),
            departure: TimeOfDay::new(rng.random_range(0.0..TimeOfDay::DAY)),
            path: paths[i % paths.len()].clone(),
            confidence: 1.0,
        };
        store.insert(&city.graph, entry.clone());
        sharded.insert(&city.graph, entry);
    }
    let queries: Vec<(NodeId, NodeId, TimeOfDay)> = (0..256)
        .map(|_| {
            (
                NodeId(rng.random_range(0..n)),
                NodeId(rng.random_range(0..n)),
                TimeOfDay::new(rng.random_range(0.0..TimeOfDay::DAY)),
            )
        })
        .collect();
    Fixture {
        city,
        store,
        sharded,
        queries,
        cfg: Config::default(),
    }
}

fn bench_truth_lookup(c: &mut Criterion) {
    for n_truths in [10_000usize, 50_000] {
        let f = fixture(n_truths);
        let mut group = c.benchmark_group(format!("truth_lookup_{n_truths}"));
        let mut qi = 0usize;
        let queries = f.queries.clone();
        group.bench_with_input(BenchmarkId::new("linear", n_truths), &n_truths, |b, _| {
            b.iter(|| {
                let (from, to, t) = queries[qi % queries.len()];
                qi += 1;
                black_box(f.store.lookup_linear(
                    &f.city.graph,
                    black_box(from),
                    black_box(to),
                    t,
                    &f.cfg,
                ))
                .is_some()
            })
        });
        let mut qi2 = 0usize;
        let queries2 = f.queries.clone();
        group.bench_with_input(BenchmarkId::new("grid", n_truths), &n_truths, |b, _| {
            b.iter(|| {
                let (from, to, t) = queries2[qi2 % queries2.len()];
                qi2 += 1;
                black_box(
                    f.store
                        .lookup(&f.city.graph, black_box(from), black_box(to), t, &f.cfg),
                )
                .is_some()
            })
        });
        let mut qi3 = 0usize;
        let queries3 = f.queries.clone();
        group.bench_with_input(BenchmarkId::new("sharded", n_truths), &n_truths, |b, _| {
            b.iter(|| {
                let (from, to, t) = queries3[qi3 % queries3.len()];
                qi3 += 1;
                black_box(f.sharded.lookup(
                    &f.city.graph,
                    black_box(from),
                    black_box(to),
                    t,
                    &f.cfg,
                ))
                .is_some()
            })
        });
        group.finish();
    }
}

/// Times the same query batch through both paths with a plain std timer
/// and prints the speedup factor (the acceptance criterion is ≥5× at
/// ≥10k truths).
fn speedup_report(_c: &mut Criterion) {
    for n_truths in [10_000usize, 50_000] {
        let f = fixture(n_truths);
        let run = |lookup: &dyn Fn(NodeId, NodeId, TimeOfDay) -> bool| {
            // Warm-up pass, then measure three passes over the batch.
            for &(a, b, t) in &f.queries {
                black_box(lookup(a, b, t));
            }
            let t0 = Instant::now();
            for _ in 0..3 {
                for &(a, b, t) in &f.queries {
                    black_box(lookup(a, b, t));
                }
            }
            t0.elapsed()
        };
        let linear = run(&|a, b, t| {
            f.store
                .lookup_linear(&f.city.graph, a, b, t, &f.cfg)
                .is_some()
        });
        let grid = run(&|a, b, t| f.store.lookup(&f.city.graph, a, b, t, &f.cfg).is_some());
        let sharded = run(&|a, b, t| f.sharded.lookup(&f.city.graph, a, b, t, &f.cfg).is_some());
        println!(
            "speedup @ {n_truths} truths: grid {:.1}x, sharded {:.1}x over linear \
             (per-batch: linear {:?}, grid {:?}, sharded {:?}; {} queries/batch)",
            linear.as_secs_f64() / grid.as_secs_f64(),
            linear.as_secs_f64() / sharded.as_secs_f64(),
            linear / 3,
            grid / 3,
            sharded / 3,
            f.queries.len(),
        );
    }
}

criterion_group!(benches, bench_truth_lookup, speedup_report);
criterion_main!(benches);
