//! Micro-benchmarks of ID3 question-tree construction (experiment E4's
//! inner loop).

use cp_bench::common::{random_selection_instance, rng};
use cp_core::taskgen::{build_question_tree, SelectionAlgorithm, SelectionProblem};
use cp_roadnet::LandmarkId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("question_ordering");
    let mut r = rng(1004);
    for n in [4usize, 8, 12] {
        let (routes, sigs) = random_selection_instance(n, 24, &mut r);
        let Ok(problem) = SelectionProblem::prepare(&routes, &sigs) else {
            continue;
        };
        let Ok(sel) = SelectionAlgorithm::Greedy.run(&problem, 2_000_000) else {
            continue;
        };
        let questions: Vec<(LandmarkId, f64)> = sel
            .landmarks
            .iter()
            .map(|&l| (l, sigs[l.index()]))
            .collect();
        let weights = vec![1.0; routes.len()];
        group.bench_with_input(BenchmarkId::new("id3_build", n), &n, |bench, _| {
            bench.iter(|| build_question_tree(black_box(&routes), &weights, &questions))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
