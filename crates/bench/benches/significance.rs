//! Micro-benchmarks of landmark-significance inference (HITS) and
//! trajectory calibration.

use cp_traj::{calibrate_path, infer_significance, CalibrationParams, SignificanceParams};
use criterion::{criterion_group, criterion_main, Criterion};
use crowdplanner::sim::{Scale, SimWorld};
use std::hint::black_box;

fn bench_significance(c: &mut Criterion) {
    let world = SimWorld::build(Scale::Small, 9).expect("world");
    let mut group = c.benchmark_group("significance");
    group.sample_size(20);
    group.bench_function("hits_full_pipeline", |bench| {
        bench.iter(|| {
            infer_significance(
                &world.city.graph,
                &world.landmarks,
                black_box(&world.checkins),
                &world.trips,
                &CalibrationParams::default(),
                &SignificanceParams::default(),
            )
        })
    });
    let path = &world.trips.trips[0].path;
    group.bench_function("calibrate_one_path", |bench| {
        bench.iter(|| {
            calibrate_path(
                &world.city.graph,
                &world.landmarks,
                black_box(path),
                &CalibrationParams::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_significance);
criterion_main!(benches);
