//! Shared helpers for the experiment harness.

use cp_core::LandmarkRoute;
use cp_roadnet::LandmarkId;
use crowdplanner::sim::SimWorld;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Prints a table header plus an underline.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n### {title}");
    let row = cols.join(" | ");
    println!("| {row} |");
    let sep: Vec<String> = cols.iter().map(|c| "-".repeat(c.len().max(3))).collect();
    println!("| {} |", sep.join(" | "));
}

/// Prints a table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Deterministic RNG for an experiment.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0xB5AD_4ECE_DA1C_E2A9)
}

/// Synthetic landmark-selection instances: `n` routes over `m` landmarks,
/// each landmark on each route with probability 1/2, significances uniform.
/// Returns `(routes, significance)`; instances whose route pairs collide
/// are regenerated.
pub fn random_selection_instance(
    n: usize,
    m: usize,
    rng: &mut SmallRng,
) -> (Vec<LandmarkRoute>, Vec<f64>) {
    loop {
        let sigs: Vec<f64> = (0..m).map(|_| rng.random_range(0.01..1.0)).collect();
        let routes: Vec<LandmarkRoute> = (0..n)
            .map(|_| {
                LandmarkRoute::new(
                    (0..m)
                        .filter(|_| rng.random_bool(0.5))
                        .map(|i| LandmarkId(i as u32))
                        .collect(),
                )
            })
            .collect();
        let distinct = {
            let mut ok = true;
            for i in 0..n {
                for j in i + 1..n {
                    if routes[i].same_landmark_set(&routes[j]) {
                        ok = false;
                    }
                }
            }
            ok
        };
        if distinct {
            return (routes, sigs);
        }
    }
}

/// Candidate landmark-routes for a request, deduplicated at landmark level.
pub fn calibrated_candidates(
    world: &SimWorld,
    gen: &cp_mining::CandidateGenerator<'_>,
    from: cp_roadnet::NodeId,
    to: cp_roadnet::NodeId,
    departure: cp_traj::TimeOfDay,
) -> Vec<LandmarkRoute> {
    let cands = gen.candidates(from, to, departure);
    let distinct = cp_mining::distinct_candidates(&cands);
    let mut out: Vec<LandmarkRoute> = Vec::new();
    for (p, _) in distinct {
        let lr =
            LandmarkRoute::from_path(&world.city.graph, &world.landmarks, &p, &world.calibration);
        if out.iter().all(|r| !r.same_landmark_set(&lr)) {
            out.push(lr);
        }
    }
    out
}
