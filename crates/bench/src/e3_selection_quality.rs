//! E3 — landmark-selection quality against the exhaustive optimum.
//!
//! Paper hook: the §III-B objective (maximise mean significance subject to
//! discriminativeness). Expected shape: GreedySelect matches the optimum
//! exactly (its prunings are lossless); ILS is near-optimal; both always
//! return discriminative sets.

use crate::common::{header, random_selection_instance, rng, row};
use cp_core::route::is_discriminative;
use cp_core::taskgen::{SelectionAlgorithm, SelectionProblem};

/// Runs E3.
pub fn run(fast: bool) {
    let trials = if fast { 20 } else { 100 };
    let mut r = rng(3);
    header(
        "E3: selection quality over random instances (value ratio to optimum)",
        &[
            "algorithm",
            "mean ratio",
            "min ratio",
            "optimal %",
            "discriminative %",
        ],
    );
    let mut stats = [(0.0f64, f64::INFINITY, 0usize, 0usize); 3];
    let mut counted = 0usize;
    for _ in 0..trials {
        let (routes, sigs) = random_selection_instance(4, 14, &mut r);
        let Ok(p) = SelectionProblem::prepare(&routes, &sigs) else {
            continue;
        };
        let Ok(opt) = SelectionAlgorithm::BruteForce.run(&p, usize::MAX) else {
            continue;
        };
        counted += 1;
        for (i, alg) in SelectionAlgorithm::ALL.iter().enumerate() {
            let sel = alg.run(&p, usize::MAX).expect("solvable instance");
            let ratio = sel.value / opt.value;
            let s = &mut stats[i];
            s.0 += ratio;
            s.1 = s.1.min(ratio);
            if ratio > 1.0 - 1e-9 {
                s.2 += 1;
            }
            if is_discriminative(&routes, &sel.landmarks) {
                s.3 += 1;
            }
        }
    }
    for (i, alg) in SelectionAlgorithm::ALL.iter().enumerate() {
        let s = stats[i];
        row(&[
            alg.name().to_string(),
            format!("{:.4}", s.0 / counted as f64),
            format!("{:.4}", s.1),
            format!("{:.1}%", 100.0 * s.2 as f64 / counted as f64),
            format!("{:.1}%", 100.0 * s.3 as f64 / counted as f64),
        ]);
    }
    println!("({counted} solvable instances)");
}
