//! E6 — PMF densification quality vs observation density.
//!
//! Paper hook: §IV-B — the observed familiarity matrix is "very sparse",
//! biasing assignment toward a few well-known workers, so PMF predicts the
//! missing scores from latent worker/landmark similarity. Expected shape:
//! PMF beats the zero and global-mean baselines at every density and
//! improves as density grows.

use crate::common::{header, rng, row};
use cp_core::worker_selection::{PmfModel, PmfParams, SparseObservations};
use crowdplanner::sim::{Scale, SimWorld};
use rand::RngExt;

/// Runs E6.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Small, 19).expect("world");
    let platform = world.platform(150, 0, 19);
    let n = platform.population().len();
    let m = world.landmarks.len();
    // Ground truth: the latent familiarity the simulator knows exactly.
    let truth = |w: usize, l: usize| {
        platform.population().true_familiarity(
            cp_crowd::WorkerId(w as u32),
            world.landmarks.get(cp_roadnet::LandmarkId(l as u32)),
        )
    };
    let densities = if fast {
        vec![0.05, 0.2]
    } else {
        vec![0.02, 0.05, 0.1, 0.2, 0.4]
    };
    header(
        "E6: held-out RMSE of familiarity prediction",
        &["observed density", "PMF", "global mean", "zeros"],
    );
    let mut r = rng(6);
    for d in densities {
        let mut train = SparseObservations::default();
        let mut test = SparseObservations::default();
        for w in 0..n {
            for l in 0..m {
                let v = truth(w, l);
                if r.random_bool(d) {
                    train.push(w as u32, l as u32, v);
                } else if r.random_bool(0.1) {
                    test.push(w as u32, l as u32, v);
                }
            }
        }
        let model = PmfModel::fit(&train, n, m, &PmfParams::default());
        let pmf_rmse = model.rmse(&test);
        let mean: f64 =
            train.entries.iter().map(|&(_, _, v)| v).sum::<f64>() / train.len().max(1) as f64;
        let base = |pred: f64| {
            (test
                .entries
                .iter()
                .map(|&(_, _, v)| (v - pred) * (v - pred))
                .sum::<f64>()
                / test.len().max(1) as f64)
                .sqrt()
        };
        row(&[
            format!("{:.0}%", d * 100.0),
            format!("{:.4}", pmf_rmse),
            format!("{:.4}", base(mean)),
            format!("{:.4}", base(0.0)),
        ]);
    }
}
