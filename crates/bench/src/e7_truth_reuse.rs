//! E7 — truth reuse over a request stream with spatio-temporal locality.
//!
//! Paper hook: §II-B1 — reuse "can largely reduce the amount of tasks
//! generated". Expected shape: the hit rate climbs as the truth store
//! fills; crowd tasks per window fall accordingly.

use crate::common::{header, row};
use cp_core::Config;
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};

/// Runs E7.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 23).expect("world");
    let cfg = Config::default();
    let desk = world.shared_crowd(200, 20, 23, cfg.eta_quota);
    let mut planner = world.owned_planner(desk, cfg).expect("planner");

    // Zipf-ish popularity over a base set of OD pairs: popular commutes are
    // requested again and again, as in a real deployment.
    let base = world.request_stream(if fast { 15 } else { 40 }, 6, 61);
    let total = if fast { 60 } else { 240 };
    let mut requests = Vec::with_capacity(total);
    let mut x = 0xDEADBEEFu64;
    for i in 0..total {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Rank-biased pick: earlier base pairs are requested more often.
        let rank = ((x % 100) as f64 / 100.0).powi(2);
        let idx = (rank * base.len() as f64) as usize;
        let h = if i % 2 == 0 { 8.0 } else { 18.0 };
        requests.push((base[idx.min(base.len() - 1)], TimeOfDay::from_hours(h)));
    }

    header(
        "E7: truth-store growth and reuse (windows of requests)",
        &[
            "requests",
            "truths stored",
            "window hit rate",
            "cumulative hit rate",
            "window crowd tasks",
        ],
    );
    let window = total / 8;
    let mut last_hits = 0;
    let mut last_crowd = 0;
    for (i, &((a, b), t)) in requests.iter().enumerate() {
        let oracle = world.oracle(a, b).expect("oracle");
        planner.handle_request(a, b, t, &oracle).expect("request");
        if (i + 1) % window == 0 {
            let s = planner.stats();
            row(&[
                format!("{}", i + 1),
                format!("{}", planner.truths().len()),
                format!(
                    "{:.1}%",
                    100.0 * (s.reuse_hits - last_hits) as f64 / window as f64
                ),
                format!("{:.1}%", 100.0 * s.reuse_hits as f64 / s.requests as f64),
                format!("{}", s.crowd_attempts - last_crowd),
            ]);
            last_hits = s.reuse_hits;
            last_crowd = s.crowd_attempts;
        }
    }
}
