//! E4 — number of questions asked: ID3 ordering vs naive orderings.
//!
//! Paper hook: §III-C orders questions with ID3 "so that the expected
//! number of issued questions is as small as possible". Expected shape:
//! ID3 ≤ significance-order adaptive ≤ fixed order (= library size), with
//! the gap widening as the candidate count grows.

use crate::common::{calibrated_candidates, header, row};
use cp_core::taskgen::{build_question_tree, QuestionNode, SelectionAlgorithm, SelectionProblem};
use cp_core::LandmarkRoute;
use cp_mining::CandidateGenerator;
use cp_roadnet::LandmarkId;
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};

/// Adaptive tree that always asks the highest-significance splitting
/// question (no information-gain reasoning) — the naive baseline.
fn sig_order_expected(
    routes: &[LandmarkRoute],
    questions: &[(LandmarkId, f64)],
    subset: &[usize],
    depth: f64,
) -> f64 {
    if subset.len() <= 1 {
        return depth * subset.len() as f64;
    }
    // Questions arrive significance-sorted; take the first that splits.
    for (qi, &(l, _)) in questions.iter().enumerate() {
        let yes: Vec<usize> = subset
            .iter()
            .copied()
            .filter(|&i| routes[i].contains(l))
            .collect();
        if yes.is_empty() || yes.len() == subset.len() {
            continue;
        }
        let no: Vec<usize> = subset
            .iter()
            .copied()
            .filter(|&i| !routes[i].contains(l))
            .collect();
        let rest: Vec<(LandmarkId, f64)> = questions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != qi)
            .map(|(_, &q)| q)
            .collect();
        return sig_order_expected(routes, &rest, &yes, depth + 1.0)
            + sig_order_expected(routes, &rest, &no, depth + 1.0);
    }
    depth * subset.len() as f64
}

fn max_depth_of(n: &QuestionNode) -> usize {
    match n {
        QuestionNode::Ask { yes, no, .. } => 1 + max_depth_of(yes).max(max_depth_of(no)),
        _ => 0,
    }
}

/// Runs E4.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 17).expect("world");
    let gen = CandidateGenerator::new(&world.city.graph, &world.trips.trips);
    let n_req = if fast { 40 } else { 200 };
    let requests = world.request_stream(n_req, 6, 47);
    let departure = TimeOfDay::from_hours(8.0);

    // Bucket tasks by candidate count n.
    let mut by_n: std::collections::BTreeMap<usize, Vec<(f64, f64, f64, usize)>> =
        std::collections::BTreeMap::new();
    for &(a, b) in &requests {
        let routes = calibrated_candidates(&world, &gen, a, b, departure);
        let n = routes.len();
        if n < 2 {
            continue;
        }
        let Ok(problem) = SelectionProblem::prepare(&routes, &world.significance) else {
            continue;
        };
        let Ok(sel) = SelectionAlgorithm::Greedy.run(&problem, 2_000_000) else {
            continue;
        };
        let questions: Vec<(LandmarkId, f64)> = sel
            .landmarks
            .iter()
            .map(|&l| (l, world.significance[l.index()]))
            .collect();
        let weights = vec![1.0; n];
        let tree = build_question_tree(&routes, &weights, &questions);
        let id3 = tree.expected_questions(&weights);
        let all: Vec<usize> = (0..n).collect();
        let sig = sig_order_expected(&routes, &questions, &all, 0.0) / n as f64;
        let fixed = questions.len() as f64;
        by_n.entry(n)
            .or_default()
            .push((id3, sig, fixed, max_depth_of(&tree.root)));
    }

    header(
        "E4: expected questions per task (uniform route prior)",
        &[
            "n candidates",
            "tasks",
            "ID3",
            "significance-order",
            "fixed order",
            "ID3 worst case",
        ],
    );
    for (n, v) in by_n {
        let m = v.len() as f64;
        row(&[
            format!("{n}"),
            format!("{}", v.len()),
            format!("{:.2}", v.iter().map(|x| x.0).sum::<f64>() / m),
            format!("{:.2}", v.iter().map(|x| x.1).sum::<f64>() / m),
            format!("{:.2}", v.iter().map(|x| x.2).sum::<f64>() / m),
            format!("{:.2}", v.iter().map(|x| x.3 as f64).sum::<f64>() / m),
        ]);
    }
}
