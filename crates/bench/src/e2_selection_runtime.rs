//! E2 — landmark-selection runtime: BruteForce vs ILS vs GreedySelect.
//!
//! Paper hook: §III-B: exhaustive enumeration "grows exponentially with
//! the size of the landmark set, rendering this method impractical"; ILS
//! and GreedySelect are the scalable replacements. Expected shape: brute
//! explodes with the number of beneficial landmarks; Greedy stays flat;
//! ILS sits in between.

use crate::common::{header, random_selection_instance, rng, row};
use cp_core::taskgen::{SelectionAlgorithm, SelectionProblem};
use std::time::Instant;

fn median_micros(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Runs E2.
pub fn run(fast: bool) {
    let configs: Vec<(usize, usize)> = if fast {
        vec![(4, 12), (5, 16)]
    } else {
        vec![(3, 10), (4, 14), (5, 18), (6, 22), (8, 26), (10, 30)]
    };
    let reps = if fast { 3 } else { 7 };
    header(
        "E2: median selection time (µs) per instance (n routes, m landmarks)",
        &["n", "m", "BruteForce", "ILS", "GreedySelect"],
    );
    let mut r = rng(2);
    for (n, m) in configs {
        let instances: Vec<SelectionProblem> = (0..reps)
            .filter_map(|_| {
                let (routes, sigs) = random_selection_instance(n, m, &mut r);
                SelectionProblem::prepare(&routes, &sigs).ok()
            })
            .collect();
        if instances.is_empty() {
            continue;
        }
        let mut cells = vec![format!("{n}"), format!("{m}")];
        for alg in SelectionAlgorithm::ALL {
            let mut times = Vec::new();
            for p in &instances {
                let t0 = Instant::now();
                // Budget caps the brute-force blow-up like a production
                // deployment would; ILS/Greedy stay far below it.
                let _ = alg.run(p, 2_000_000);
                times.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            cells.push(format!("{:.0}", median_micros(&mut times)));
        }
        row(&cells);
    }
}
