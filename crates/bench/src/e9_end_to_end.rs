//! E9 — end-to-end system comparison.
//!
//! Paper hook: the conclusion — "the CrowdPlanner system can always give
//! users the best routes", outperforming every individual source and the
//! machine-only pipeline. Expected shape:
//! any single source < machine-only TR ≤ full CrowdPlanner.

use crate::common::{header, row};
use cp_core::Config;
use cp_mining::{CandidateGenerator, SourceKind};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};

/// Runs E9.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 13).expect("world");
    let n_req = if fast { 30 } else { 120 };
    let requests = world.request_stream(n_req, 6, 31);
    let departure = TimeOfDay::from_hours(8.0);

    header(
        "E9: accuracy of every system on the same request set",
        &["system", "accuracy", "crowd questions", "crowd tasks"],
    );

    // Single sources.
    let gen = CandidateGenerator::new(&world.city.graph, &world.trips.trips);
    let mut hits = [0usize; 5];
    for &(a, b) in &requests {
        for c in gen.candidates(a, b, departure) {
            if world.is_best(&c.path) {
                let i = SourceKind::ALL.iter().position(|&s| s == c.source).unwrap();
                hits[i] += 1;
            }
        }
    }
    for (i, s) in SourceKind::ALL.iter().enumerate() {
        row(&[
            s.name().to_string(),
            format!("{:.1}%", 100.0 * hits[i] as f64 / requests.len() as f64),
            "0".into(),
            "0".into(),
        ]);
    }

    // Machine-only TR (crowd unreachable: impossible deadline).
    let machine_cfg = Config {
        task_deadline: 0.1,
        eta_time: 0.999,
        ..Config::default()
    };
    let tiny = world.shared_crowd(1, 0, 1, machine_cfg.eta_quota);
    let mut machine = world.owned_planner(tiny, machine_cfg).expect("planner");
    let mut m_hits = 0usize;
    for &(a, b) in &requests {
        let oracle = world.oracle(a, b).expect("oracle");
        let rec = machine
            .handle_request(a, b, departure, &oracle)
            .expect("request");
        if world.is_best(&rec.path) {
            m_hits += 1;
        }
    }
    row(&[
        "machine-only TR".into(),
        format!("{:.1}%", 100.0 * m_hits as f64 / requests.len() as f64),
        "0".into(),
        "0".into(),
    ]);

    // Full CrowdPlanner.
    let full_cfg = Config::default();
    let desk = world.shared_crowd(200, 30, 13, full_cfg.eta_quota);
    let mut full = world.owned_planner(desk, full_cfg).expect("planner");
    let mut f_hits = 0usize;
    for &(a, b) in &requests {
        let oracle = world.oracle(a, b).expect("oracle");
        let rec = full
            .handle_request(a, b, departure, &oracle)
            .expect("request");
        if world.is_best(&rec.path) {
            f_hits += 1;
        }
    }
    let s = full.stats();
    row(&[
        "full CrowdPlanner".into(),
        format!("{:.1}%", 100.0 * f_hits as f64 / requests.len() as f64),
        format!("{}", s.total_questions),
        format!("{}", s.crowd_attempts),
    ]);

    // Oracle ceiling: is the best route among the candidates at all?
    let mut ceiling = 0usize;
    for &(a, b) in &requests {
        if gen
            .candidates(a, b, departure)
            .iter()
            .any(|c| world.is_best(&c.path))
        {
            ceiling += 1;
        }
    }
    row(&[
        "candidate-set ceiling".into(),
        format!("{:.1}%", 100.0 * ceiling as f64 / requests.len() as f64),
        "-".into(),
        "-".into(),
    ]);
}
