//! # cp-bench — the CrowdPlanner experiment harness
//!
//! One module per reconstructed experiment (`e1`…`e10`, see DESIGN.md §4).
//! Each module exposes `run(fast: bool)`, printing the table/series the
//! corresponding paper figure would show. `fast` shrinks the workload for
//! smoke tests; the `experiments` binary runs the full versions.
//!
//! Criterion micro-benchmarks for the component costs live in `benches/`.

pub mod common;
pub mod e10_response_filter;
pub mod e11_ablations;
pub mod e1_source_winrate;
pub mod e2_selection_runtime;
pub mod e3_selection_quality;
pub mod e4_question_count;
pub mod e5_worker_selection;
pub mod e6_pmf;
pub mod e7_truth_reuse;
pub mod e8_early_stop;
pub mod e9_end_to_end;

/// One registered experiment: id, description, entry point.
pub type Experiment = (&'static str, &'static str, fn(bool));

/// All experiment ids with descriptions and entry points.
pub fn experiments() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "source win-rate vs trajectory density (MFP strongest)",
            e1_source_winrate::run as fn(bool),
        ),
        (
            "e2",
            "landmark-selection runtime: Brute vs ILS vs Greedy",
            e2_selection_runtime::run,
        ),
        (
            "e3",
            "landmark-selection quality vs exhaustive optimum",
            e3_selection_quality::run,
        ),
        (
            "e4",
            "questions asked: ID3 vs naive orderings",
            e4_question_count::run,
        ),
        (
            "e5",
            "worker-selection strategies: answer accuracy",
            e5_worker_selection::run,
        ),
        (
            "e6",
            "PMF densification RMSE vs observation density",
            e6_pmf::run,
        ),
        (
            "e7",
            "truth reuse: hit rate and crowd savings over time",
            e7_truth_reuse::run,
        ),
        (
            "e8",
            "early stop: answers collected vs accuracy",
            e8_early_stop::run,
        ),
        (
            "e9",
            "end-to-end: sources vs TR-only vs full system",
            e9_end_to_end::run,
        ),
        (
            "e10",
            "response-time filter: on-time completion",
            e10_response_filter::run,
        ),
        (
            "e11",
            "ablations of the design choices (not in the paper)",
            e11_ablations::run,
        ),
    ]
}
