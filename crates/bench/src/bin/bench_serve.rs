//! Open-loop serving benchmark: batching **off vs static vs adaptive**
//! on a hot-spot workload, written to `BENCH_serve.json` so later PRs
//! have a baseline to regress against.
//!
//! The workload models the redundancy origin-cell coalescing exists
//! for: a handful of hot origins (commute sources) fanning out to many
//! destinations across **three adjacent departure buckets** (cell-keyed
//! runs span buckets; the fused miners share the all-day origin
//! artifacts and split only the MFP period aggregation). Each mode runs
//! **two phases over the same request sequence**: a cold pass, then —
//! after force-evicting every verified truth — a repeat-OD pass that
//! must re-resolve, exercising the candidate cache and the cross-batch
//! `MiningArtifactCache` (`cache_hit_rate` and `artifact_hits` read 0
//! without it, hiding regressions in either cache).
//!
//! Requests are submitted through the platform's blocking ingress
//! (open-loop arrivals with bounded-queue backpressure, never shedding,
//! so every mode serves the identical request sequence). The **actual
//! offered rate** is measured from the submission clock and reported —
//! in firehose mode (`--rate 0`) the target is meaningless, so the
//! realized rate is the honest number. A second sweep at a **moderate
//! Poisson rate** (`--moderate-rate`) compares static-zero, static
//! fixed-delay and adaptive windows where the controller's choice
//! actually matters (at saturation every policy converges on zero).
//!
//! With `--wire`, the same workload additionally runs **over loopback
//! TCP** through the `cp-gateway` HTTP edge — real sockets, the
//! hardened parser, JSON rendering — and the report gains a
//! syscall-inclusive `wire` section (req/s + client-observed sojourn
//! percentiles) so the transport tax on top of in-process serving is a
//! tracked number instead of folklore.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p cp-bench --bin bench_serve               # defaults
//! cargo run --release -p cp-bench --bin bench_serve -- \
//!     --requests 4000 --moderate-rate 2000 --scale medium --out BENCH_serve.json
//! cargo run --release -p cp-bench --bin bench_serve -- --wire     # + HTTP edge row
//! cargo run --release -p cp-bench --bin bench_serve -- --fairness # + two-city DRR row
//! cargo run --release -p cp-bench --bin bench_serve -- --chaos    # + fault-injection rows
//! ```

use cp_crowd::{CrowdDesk, SharedCrowd};
use cp_gateway::{Gateway, GatewayConfig, GatewayStatsSnapshot};
use cp_service::{
    BatchConfig, BreakerConfig, BreakerSnapshot, ChaosConfig, ChaosSnapshot, CrowdServing,
    FaultPlan, LockSite, Platform, PlatformConfig, PlatformSnapshot, Request, ServiceConfig, Stage,
    Ticket, TraceConfig,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    rate: f64,
    moderate_rate: f64,
    scale: Scale,
    origins: usize,
    dests: usize,
    out: String,
    /// Worker counts for the traced scaling sweep.
    sweep_workers: Vec<usize>,
    /// Where the sweep's sampled trace report lands.
    trace_out: String,
    /// Run the loopback-TCP gateway benchmark and add a `wire` section.
    wire: bool,
    /// Concurrent keep-alive HTTP clients for `--wire`.
    wire_clients: usize,
    /// Open-loop arrival rate for `--wire` (0 = closed-loop firehose).
    wire_rate: f64,
    /// Run the two-city weighted-fairness benchmark and add a
    /// `fairness` section.
    fairness: bool,
    /// Run the crowd-backed chaos/degradation comparison and add a
    /// `chaos` section.
    chaos: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            requests: 2000,
            // Firehose by default: req/s measures service capacity.
            // Pass a positive --rate for latency-under-load runs.
            rate: 0.0,
            // The moderate-load sweep's Poisson rate (below capacity,
            // where the adaptive window has room to matter).
            moderate_rate: 1200.0,
            scale: Scale::Small,
            origins: 4,
            dests: 200,
            out: "BENCH_serve.json".to_string(),
            sweep_workers: vec![1, 2, 4, 8, 16],
            trace_out: "TRACE_report.json".to_string(),
            wire: false,
            wire_clients: 8,
            wire_rate: 0.0,
            fairness: false,
            chaos: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests N"),
            "--rate" => args.rate = value().parse().expect("--rate R"),
            "--moderate-rate" => args.moderate_rate = value().parse().expect("--moderate-rate R"),
            "--scale" => {
                args.scale = match value().as_str() {
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => panic!("unknown --scale {other} (small|medium)"),
                }
            }
            "--origins" => args.origins = value().parse().expect("--origins K"),
            "--dests" => args.dests = value().parse().expect("--dests M"),
            "--out" => args.out = value(),
            "--sweep-workers" => {
                args.sweep_workers = value()
                    .split(',')
                    .map(|w| w.trim().parse().expect("--sweep-workers N,N,..."))
                    .collect();
            }
            "--trace-out" => args.trace_out = value(),
            "--wire" => args.wire = true,
            "--wire-clients" => args.wire_clients = value().parse().expect("--wire-clients N"),
            "--wire-rate" => args.wire_rate = value().parse().expect("--wire-rate R"),
            "--fairness" => args.fairness = true,
            "--chaos" => args.chaos = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// No coalescing: one job per worker wakeup.
    Off,
    /// Static batching with the artifact cache disabled — the closest
    /// in-tree proxy for PR-4's fusion-without-cross-batch-reuse.
    StaticNoReuse,
    /// Static batching with the given fixed window.
    Static(Duration),
    /// Adaptive window under the given ceiling.
    Adaptive(Duration),
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::Off => "off".into(),
            Mode::StaticNoReuse => "static-noreuse".into(),
            Mode::Static(d) if d.is_zero() => "static-zero".into(),
            Mode::Static(d) => format!("static-{}us", d.as_micros()),
            Mode::Adaptive(_) => "adaptive".into(),
        }
    }

    fn batch(self) -> Option<BatchConfig> {
        match self {
            Mode::Off => None,
            Mode::StaticNoReuse => Some(BatchConfig::fixed(16, Duration::ZERO)),
            Mode::Static(d) => Some(BatchConfig::fixed(16, d)),
            Mode::Adaptive(ceiling) => Some(BatchConfig::adaptive(16, ceiling)),
        }
    }
}

struct ModeReport {
    label: String,
    batching: bool,
    served: usize,
    wall_s: f64,
    served_per_s: f64,
    /// Realized submission rate (requests / time spent in the
    /// submission loops) — the honest load figure in firehose mode.
    offered_per_s: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    max: Duration,
    /// Sum of every ticket's submit→completion sojourn (the budget the
    /// per-stage attribution must fit inside).
    sum_sojourn: Duration,
    /// Sampled complete traces retained at run end (0 unless traced).
    sampled_traces: usize,
    /// The run's trace-report JSON (`None` unless traced).
    trace_json: Option<String>,
    snap: PlatformSnapshot,
}

/// Serves the fixed request sequence on a fresh platform — twice: a
/// cold pass, then (after force-evicting every truth) a repeat-OD pass
/// that exercises the candidate and mining-artifact caches. The world
/// (and its pre-built mining state) is shared across modes, the truth
/// store and caches are not.
fn run_mode(
    world: &std::sync::Arc<cp_service::World>,
    sequence: &[Request],
    rate: f64,
    workers: usize,
    mode: Mode,
    trace: TraceConfig,
) -> ModeReport {
    let platform = Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 512,
        maintenance: None,
        batch: mode.batch(),
        durability: None,
        chaos: None,
    });
    // Exact-endpoint reuse: every *distinct* OD pays one mining, which
    // makes the miss path (the thing coalescing fuses) the measured
    // cost instead of the default geometry's nearby-truth aliasing.
    let mut cfg = ServiceConfig::strict_deterministic();
    cfg.trace = trace;
    if mode == Mode::StaticNoReuse {
        cfg.artifact_cache_origins = 0;
    }
    let id = platform.register_city(std::sync::Arc::clone(world), cfg);
    let service = platform.city_service(id).expect("registered");

    let start = Instant::now();
    let mut submit_time = Duration::ZERO;
    let mut latencies: Vec<Duration> = Vec::with_capacity(2 * sequence.len());
    for phase in 0..2 {
        if phase == 1 {
            // Repeat-OD phase: drop every verified truth so the same
            // sequence re-resolves through the caches instead of
            // short-circuiting at the truth store.
            service.evict_truths_older_than(Duration::ZERO);
        }
        let phase_start = Instant::now();
        let mut next_arrival = phase_start;
        let mut tickets: Vec<Ticket> = Vec::with_capacity(sequence.len());
        for &req in sequence {
            // Paced arrivals at the target rate; `rate <= 0` is the
            // firehose (arrivals limited only by ingress backpressure,
            // so served req/s measures pure service capacity).
            if rate > 0.0 {
                let now = Instant::now();
                if now < next_arrival {
                    std::thread::sleep(next_arrival - now);
                }
                next_arrival += Duration::from_secs_f64(1.0 / rate);
            }
            let mut req = req;
            req.city = id;
            tickets.push(platform.submit_blocking(req).expect("admitted"));
        }
        submit_time += phase_start.elapsed();
        for ticket in &tickets {
            while !ticket.is_done() {
                std::thread::sleep(Duration::from_micros(200));
            }
            latencies.push(ticket.latency().expect("completed ticket"));
        }
    }
    let wall = start.elapsed();
    latencies.sort_unstable();

    let snap = platform.stats();
    assert!(snap.is_consistent(), "platform accounting must balance");
    assert!(
        snap.aggregate.is_consistent(),
        "city accounting must balance"
    );
    let (sampled_traces, trace_json) = if trace.enabled() {
        let report = platform.trace_report();
        (report.total_traces(), Some(report.to_json()))
    } else {
        (0, None)
    };
    let report = ModeReport {
        label: mode.label(),
        batching: mode.batch().is_some(),
        served: latencies.len(),
        wall_s: wall.as_secs_f64(),
        served_per_s: latencies.len() as f64 / wall.as_secs_f64(),
        offered_per_s: latencies.len() as f64 / submit_time.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
        sum_sojourn: latencies.iter().sum(),
        sampled_traces,
        trace_json,
        snap,
    };
    platform.shutdown();
    report
}

struct WireReport {
    clients: usize,
    rate: f64,
    served: usize,
    wall_s: f64,
    req_per_s: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    max: Duration,
    ok: u64,
    busy_429: u64,
    other_status: u64,
    gateway: GatewayStatsSnapshot,
}

/// Sends one GET over the keep-alive stream and reads the full
/// response; returns the status code.
fn wire_get(stream: &mut TcpStream, path: &str, head: &mut Vec<u8>, body: &mut Vec<u8>) -> u16 {
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("request write");
    head.clear();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("response read");
        assert!(n > 0, "gateway closed mid-response");
        head.push(byte[0]);
    }
    let text = std::str::from_utf8(head).expect("ascii head");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let len: usize = text
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().expect("numeric content-length"))
        })
        .unwrap_or(0);
    body.resize(len, 0);
    stream.read_exact(body).expect("body read");
    status
}

/// The same two-phase hot-spot workload, but end to end over loopback
/// TCP through the cp-gateway HTTP edge: every request pays the socket
/// round trip, the hardened parser and JSON rendering on top of
/// platform serving. The edge's per-connection session cache is
/// disabled so repeat ODs exercise the platform, not the edge — this
/// measures the transport tax, not a cache.
fn run_wire(
    world: &std::sync::Arc<cp_service::World>,
    sequence: &[Request],
    rate: f64,
    workers: usize,
    clients: usize,
) -> WireReport {
    let platform = Arc::new(Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 512,
        maintenance: None,
        batch: Some(BatchConfig::adaptive(16, Duration::from_millis(2))),
        durability: None,
        chaos: None,
    }));
    let id = platform.register_city(
        std::sync::Arc::clone(world),
        ServiceConfig::strict_deterministic(),
    );
    let service = platform.city_service(id).expect("registered");
    let gw = Gateway::start(
        Arc::clone(&platform),
        GatewayConfig {
            handler_threads: clients,
            conn_backlog: clients.max(16),
            session_cache: 0,
            route_deadline: Duration::from_secs(30),
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds loopback");
    let addr = gw.local_addr();

    // Round-robin interleave so every client sees the hot origins.
    let chunks: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            sequence
                .iter()
                .skip(c)
                .step_by(clients)
                .map(|req| {
                    format!(
                        "/route?city={}&o={}&d={}&t={}",
                        id.0,
                        req.from.0,
                        req.to.0,
                        req.departure.0 / 3600.0
                    )
                })
                .collect()
        })
        .collect();

    // Two phases separated by truth eviction, exactly like the
    // in-process modes; the barrier pair brackets the eviction.
    let phase_done = Barrier::new(clients + 1);
    let start = Instant::now();
    let results: Vec<(Vec<Duration>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(c, chunk)| {
                let phase_done = &phase_done;
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("client connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    stream.set_nodelay(true).unwrap();
                    let mut rng = SmallRng::seed_from_u64(0x817E ^ c as u64);
                    let per_client_rate = rate / clients.max(1) as f64;
                    let (mut head, mut body) = (Vec::new(), Vec::new());
                    let mut latencies = Vec::with_capacity(2 * chunk.len());
                    let (mut ok, mut busy, mut other) = (0u64, 0u64, 0u64);
                    for _phase in 0..2 {
                        let mut next_arrival = Instant::now();
                        for path in chunk {
                            // Open loop: sojourn counts from the
                            // scheduled arrival, so client-side queueing
                            // under backlog is part of the number.
                            if per_client_rate > 0.0 {
                                let now = Instant::now();
                                if now < next_arrival {
                                    std::thread::sleep(next_arrival - now);
                                }
                                let u: f64 = rng.random_range(0.0..1.0);
                                next_arrival +=
                                    Duration::from_secs_f64(-(1.0 - u).ln() / per_client_rate);
                            } else {
                                next_arrival = Instant::now();
                            }
                            let status = wire_get(&mut stream, path, &mut head, &mut body);
                            match status {
                                200 => {
                                    ok += 1;
                                    latencies.push(next_arrival.elapsed());
                                }
                                429 => busy += 1,
                                _ => other += 1,
                            }
                        }
                        phase_done.wait();
                        phase_done.wait();
                    }
                    (latencies, ok, busy, other)
                })
            })
            .collect();
        for phase in 0..2 {
            phase_done.wait();
            if phase == 0 {
                // Same repeat-OD semantics as the in-process modes.
                service.evict_truths_older_than(Duration::ZERO);
            }
            phase_done.wait();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("wire client"))
            .collect()
    });
    let wall = start.elapsed();
    // All clients have joined: the edge counters are final.
    let gateway = gw.stats();
    gw.shutdown();
    let snap = platform.stats();
    assert!(snap.is_consistent(), "platform accounting must balance");

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut ok, mut busy, mut other) = (0u64, 0u64, 0u64);
    for (lat, o, b, x) in results {
        latencies.extend(lat);
        ok += o;
        busy += b;
        other += x;
    }
    latencies.sort_unstable();
    WireReport {
        clients,
        rate,
        served: latencies.len(),
        wall_s: wall.as_secs_f64(),
        req_per_s: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
        ok,
        busy_429: busy,
        other_status: other,
        gateway,
    }
}

struct DurabilityReport {
    mode: String,
    served: usize,
    req_per_s: f64,
    events_logged: u64,
    events_shed: u64,
    wal_bytes: u64,
    /// Time to rebuild a fresh platform's state from the produced log
    /// (0 for the logging-off row).
    recovery_ms: f64,
    /// Truth entries the recovery applied.
    recovered_truths: u64,
    /// Whether the recovered store matched the live store entry-wise
    /// (vacuously true for the logging-off row).
    replay_matches: bool,
}

/// A store's contents as comparable bytes: `(seq, from, to,
/// departure-bits, confidence-bits, edge ids)` in sequence order.
fn store_signature(
    store: &cp_service::ShardedTruthStore,
) -> Vec<(u64, u32, u32, u64, u64, Vec<u32>)> {
    store
        .export()
        .into_iter()
        .map(|(seq, e)| {
            (
                seq,
                e.from.0,
                e.to.0,
                e.departure.0.to_bits(),
                e.confidence.to_bits(),
                e.path.edges().iter().map(|id| id.0).collect(),
            )
        })
        .collect()
}

/// One firehose pass with durability off / WAL-no-fsync / WAL-group-
/// fsync, then (for the durable rows) a timed recovery of the produced
/// log into a fresh platform, asserted entry-wise identical to the
/// live store the log was written by.
fn run_durability(
    world: &std::sync::Arc<cp_service::World>,
    sequence: &[Request],
    workers: usize,
    fsync: Option<cp_service::FsyncPolicy>,
) -> DurabilityReport {
    let label = match fsync {
        None => "off",
        Some(cp_service::FsyncPolicy::Never) => "wal-nofsync",
        Some(cp_service::FsyncPolicy::Group) => "wal-group-fsync",
    };
    let dir = std::env::temp_dir().join(format!("cp_bench_durable_{}_{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let platform = Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 512,
        maintenance: None,
        batch: None,
        durability: fsync.map(|policy| cp_service::DurabilityConfig::new(&dir).with_fsync(policy)),
        chaos: None,
    });
    let id = platform.register_city(
        std::sync::Arc::clone(world),
        ServiceConfig::strict_deterministic(),
    );
    let start = Instant::now();
    let tickets: Vec<Ticket> = sequence
        .iter()
        .map(|&req| {
            let mut req = req;
            req.city = id;
            platform.submit_blocking(req).expect("admitted")
        })
        .collect();
    for ticket in &tickets {
        while !ticket.is_done() {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let wall = start.elapsed();
    // Fold the tail of the commit channel into the log before reading
    // counters or the log itself.
    platform.sync_durable();
    let durability = platform.stats().durability;
    let live = {
        let svc = platform.city_service(id).expect("registered");
        store_signature(svc.truths())
    };
    platform.shutdown();

    let (recovery_ms, recovered_truths, replay_matches) = if fsync.is_some() {
        let fresh = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 16,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let fresh_id = fresh.register_city(
            std::sync::Arc::clone(world),
            ServiceConfig::strict_deterministic(),
        );
        let t = Instant::now();
        let report = fresh.recover_from(&dir).expect("recovering the bench log");
        let recovery = t.elapsed();
        let recovered = {
            let svc = fresh.city_service(fresh_id).expect("registered");
            store_signature(svc.truths())
        };
        fresh.shutdown();
        (
            recovery.as_secs_f64() * 1e3,
            report.truths_restored + report.truths_replayed,
            recovered == live,
        )
    } else {
        (0.0, 0, true)
    };
    let _ = std::fs::remove_dir_all(&dir);
    let (events_logged, events_shed, wal_bytes) = durability
        .map(|d| (d.events_logged, d.events_shed, d.wal_bytes))
        .unwrap_or((0, 0, 0));
    DurabilityReport {
        mode: label.to_string(),
        served: tickets.len(),
        req_per_s: tickets.len() as f64 / wall.as_secs_f64().max(1e-9),
        events_logged,
        events_shed,
        wal_bytes,
        recovery_ms,
        recovered_truths,
        replay_matches,
    }
}

fn durability_json(r: &DurabilityReport) -> String {
    format!(
        concat!(
            "{{ \"mode\": \"{}\", \"served\": {}, \"req_per_s\": {:.1}, ",
            "\"events_logged\": {}, \"events_shed\": {}, \"wal_bytes\": {}, ",
            "\"recovery_ms\": {:.2}, \"recovered_truths\": {}, \"replay_matches\": {} }}"
        ),
        r.mode,
        r.served,
        r.req_per_s,
        r.events_logged,
        r.events_shed,
        r.wal_bytes,
        r.recovery_ms,
        r.recovered_truths,
        r.replay_matches,
    )
}

struct FairnessReport {
    workers: usize,
    hot_weight: u32,
    /// Cold-city probe p99 sojourn, platform otherwise idle.
    solo_p99: Duration,
    /// The same probes while two firehose threads pin the hot city's
    /// queue at capacity.
    loaded_p99: Duration,
    /// loaded / solo (the fairness degradation factor).
    degradation: f64,
    /// Aggregate served req/s (both cities) during the loaded phase —
    /// the multi-city capacity number.
    aggregate_req_per_s: f64,
    hot_rejected_busy: u64,
    cold_rejected_busy: u64,
}

/// The two-city weighted-fairness benchmark: a hot city firehosed by
/// two submitter threads (and favoured 4:1 by DRR weight) next to a
/// cold city probed one joined request at a time. Reports the cold
/// city's p99 sojourn solo vs loaded — the per-city sharded ingress
/// plus DRR is what keeps that ratio bounded — and the aggregate
/// multi-city req/s under load.
fn run_fairness(
    world: &std::sync::Arc<cp_service::World>,
    sequence: &[Request],
    workers: usize,
) -> FairnessReport {
    use std::sync::atomic::{AtomicBool, Ordering};
    const HOT_WEIGHT: u32 = 4;
    let probes = sequence.len().min(200);
    let build = || {
        let platform = Platform::start(PlatformConfig {
            workers,
            city_weight: 1,
            queue_capacity: 512,
            maintenance: None,
            batch: Some(BatchConfig::adaptive(16, Duration::from_millis(2))),
            durability: None,
            chaos: None,
        });
        let hot = platform.register_city(
            std::sync::Arc::clone(world),
            ServiceConfig::strict_deterministic(),
        );
        let cold = platform.register_city(
            std::sync::Arc::clone(world),
            ServiceConfig::strict_deterministic(),
        );
        assert!(platform.set_city_weight(hot, HOT_WEIGHT));
        (platform, hot, cold)
    };
    let trickle = |platform: &Platform, cold: cp_service::CityId| -> Vec<Duration> {
        sequence
            .iter()
            .take(probes)
            .map(|&r| {
                let mut req = r;
                req.city = cold;
                let t0 = Instant::now();
                let ticket = platform
                    .submit(req)
                    .expect("a cold city with queue capacity never sheds");
                while !ticket.is_done() {
                    std::thread::sleep(Duration::from_micros(100));
                }
                t0.elapsed()
            })
            .collect()
    };

    let (platform, _hot, cold) = build();
    let mut solo = trickle(&platform, cold);
    platform.shutdown();
    solo.sort_unstable();

    let (platform, hot, cold) = build();
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut loaded = std::thread::scope(|scope| {
        for _ in 0..2 {
            let platform = &platform;
            let stop = &stop;
            scope.spawn(move || {
                let mut tickets: Vec<Ticket> = Vec::new();
                'out: loop {
                    for &r in sequence {
                        if stop.load(Ordering::Relaxed) {
                            break 'out;
                        }
                        let mut req = r;
                        req.city = hot;
                        match platform.submit(req) {
                            Ok(t) => tickets.push(t),
                            Err(_) => {
                                // Busy: the hot queue is pinned at
                                // capacity, which is the point — but
                                // spin-resubmitting would steal the
                                // very CPU the workers need on small
                                // hosts and understate the aggregate.
                                // Back off for a sliver of the queue's
                                // drain time instead.
                                std::thread::sleep(Duration::from_micros(500));
                            }
                        }
                    }
                }
                for t in tickets {
                    let _ = t.wait();
                }
            });
        }
        // Let the firehose establish its backlog before probing.
        std::thread::sleep(Duration::from_millis(50));
        let loaded = trickle(&platform, cold);
        stop.store(true, Ordering::Relaxed);
        loaded
    });
    let wall = t0.elapsed();
    let snap = platform.stats();
    assert!(snap.is_consistent(), "platform accounting must balance");
    let cold_row = &snap.per_city[cold.index()];
    let hot_row = &snap.per_city[hot.index()];
    assert_eq!(
        cold_row.rejected_busy, 0,
        "the cold city shed while its queue had capacity"
    );
    let aggregate_req_per_s = snap.completed as f64 / wall.as_secs_f64().max(1e-9);
    loaded.sort_unstable();
    let solo_p99 = percentile(&solo, 0.99);
    let loaded_p99 = percentile(&loaded, 0.99);
    let report = FairnessReport {
        workers,
        hot_weight: HOT_WEIGHT,
        solo_p99,
        loaded_p99,
        degradation: loaded_p99.as_secs_f64() / solo_p99.as_secs_f64().max(1e-9),
        aggregate_req_per_s,
        hot_rejected_busy: hot_row.rejected_busy,
        cold_rejected_busy: cold_row.rejected_busy,
    };
    platform.shutdown();
    report
}

struct ChaosReport {
    label: String,
    served: usize,
    degraded_errors: u64,
    wall_s: f64,
    req_per_s: f64,
    p50: Duration,
    p95: Duration,
    crowd_starved: u64,
    chaos: Option<ChaosSnapshot>,
    breaker: Option<BreakerSnapshot>,
}

/// The graceful-degradation row: a crowd-backed city — every request
/// forced through the crowd pipeline, circuit breaker attached — served
/// healthy vs under the standard fault plan (10% crowd no-shows + 1%
/// slow workers). In-binary acceptance: every admitted ticket reaches a
/// terminal state (faults may degrade a request to the machine
/// fallback, never lose it) and the platform ledger still balances.
fn run_chaos(
    sim: &SimWorld,
    requests: usize,
    workers: usize,
    plan: Option<FaultPlan>,
) -> ChaosReport {
    let label = if plan.is_some() {
        "chaos-standard"
    } else {
        "healthy"
    };
    let platform = Platform::start(PlatformConfig {
        workers,
        city_weight: 1,
        queue_capacity: 512,
        maintenance: None,
        batch: None,
        durability: None,
        chaos: plan.map(|p| ChaosConfig::new(0xC4A05).with_plan(p)),
    });
    let desk: Arc<dyn CrowdDesk> = Arc::new(SharedCrowd::new(sim.platform(64, 10, 5), 2));
    let mut cfg = ServiceConfig::strict_deterministic();
    // Push every request through the crowd — no agreement/confidence
    // shortcut, no nearby-truth reuse — so the no-show and slow-answer
    // seams actually fire.
    cfg.core.agreement_similarity = 1.0;
    cfg.core.agreement_quorum = 1.0;
    cfg.core.eta_confidence = 1.0;
    cfg.core.reuse_radius = 0.0;
    cfg.core.reuse_time_window = 0.0;
    let id = platform
        .register_city_crowd(
            sim.service_world(),
            cfg,
            CrowdServing::new(
                sim.landmarks_arc(),
                sim.significance_arc(),
                desk,
                Arc::new(sim.oracle_factory()),
            )
            .with_breaker(BreakerConfig::default()),
        )
        .expect("crowd city registers");

    let ods = sim.request_stream(requests, 2, 4242);
    let start = Instant::now();
    let tickets: Vec<Ticket> = ods
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| {
            let req = Request::to_city(id, from, to, TimeOfDay::from_hours(6.0 + (i % 12) as f64));
            platform.submit_blocking(req).expect("admitted")
        })
        .collect();
    let admitted = tickets.len();
    let mut latencies: Vec<Duration> = Vec::with_capacity(admitted);
    let (mut served, mut degraded_errors) = (0usize, 0u64);
    for t in tickets {
        // The no-lost-ticket bar: with faults firing at every seam, each
        // admitted ticket must still terminate.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !t.is_done() {
            assert!(
                Instant::now() < deadline,
                "lost ticket: a chaos-injected request never terminated"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        latencies.push(t.latency().expect("terminal ticket"));
        match t.wait() {
            Ok(_) => served += 1,
            Err(_) => degraded_errors += 1,
        }
    }
    let wall = start.elapsed();
    latencies.sort_unstable();
    let snap = platform.stats();
    assert!(snap.is_consistent(), "ledger must balance under chaos");
    assert_eq!(
        snap.completed, admitted as u64,
        "every admitted ticket must resolve exactly once under chaos"
    );
    let breaker = snap.per_city[id.index()].breaker;
    let report = ChaosReport {
        label: label.to_string(),
        served,
        degraded_errors,
        wall_s: wall.as_secs_f64(),
        req_per_s: admitted as f64 / wall.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        crowd_starved: snap.aggregate.crowd_starved,
        chaos: snap.chaos,
        breaker,
    };
    platform.shutdown();
    report
}

fn chaos_json(r: &ChaosReport) -> String {
    let injected = match &r.chaos {
        None => "null".to_string(),
        Some(c) => format!(
            concat!(
                "{{ \"seed\": {}, \"crowd_no_shows\": {}, \"crowd_slow_answers\": {}, ",
                "\"slow_workers\": {}, \"stalled_workers\": {}, \"resolver_panics\": {}, ",
                "\"durability_io_errors\": {}, \"generation_bumps\": {}, \"total\": {} }}"
            ),
            c.seed,
            c.crowd_no_shows,
            c.crowd_slow_answers,
            c.slow_workers,
            c.stalled_workers,
            c.resolver_panics,
            c.durability_io_errors,
            c.generation_bumps,
            c.total_injected(),
        ),
    };
    let breaker = match &r.breaker {
        None => "null".to_string(),
        Some(b) => format!(
            concat!(
                "{{ \"state\": \"{}\", \"trips\": {}, \"probes\": {}, \"recoveries\": {}, ",
                "\"machine_serves\": {} }}"
            ),
            b.state.name(),
            b.trips,
            b.probes,
            b.recoveries,
            b.machine_serves,
        ),
    };
    format!(
        concat!(
            "{{ \"mode\": \"{}\", \"served\": {}, \"degraded_errors\": {}, ",
            "\"wall_s\": {:.4}, \"req_per_s\": {:.1}, ",
            "\"sojourn_us\": {{ \"p50\": {}, \"p95\": {} }}, ",
            "\"crowd_starved\": {}, \"injected\": {}, \"breaker\": {} }}"
        ),
        r.label,
        r.served,
        r.degraded_errors,
        r.wall_s,
        r.req_per_s,
        r.p50.as_micros(),
        r.p95.as_micros(),
        r.crowd_starved,
        injected,
        breaker,
    )
}

fn fairness_json(r: &FairnessReport) -> String {
    format!(
        concat!(
            "{{ \"workers\": {}, \"hot_weight\": {}, ",
            "\"cold_solo_p99_us\": {}, \"cold_loaded_p99_us\": {}, ",
            "\"degradation\": {:.2}, \"aggregate_req_per_s\": {:.1}, ",
            "\"hot_rejected_busy\": {}, \"cold_rejected_busy\": {} }}"
        ),
        r.workers,
        r.hot_weight,
        r.solo_p99.as_micros(),
        r.loaded_p99.as_micros(),
        r.degradation,
        r.aggregate_req_per_s,
        r.hot_rejected_busy,
        r.cold_rejected_busy,
    )
}

/// One traced worker-sweep row's JSON: throughput, the per-stage
/// attribution (count/total/p50/p95 per non-empty stage), the lock-wait
/// summary and how much of the end-to-end sojourn the disjoint spans
/// explain (`coverage` ≤ 1 by construction).
fn sweep_json(r: &ModeReport, workers: usize) -> String {
    let stats = &r.snap.aggregate;
    let attributed: Duration = stats.stages.iter().map(|s| s.total).sum();
    let coverage = attributed.as_secs_f64() / r.sum_sojourn.as_secs_f64().max(1e-12);
    let stages: Vec<String> = Stage::ALL
        .iter()
        .filter_map(|&stage| {
            let s = &stats.stages[stage.index()];
            (s.count > 0).then(|| {
                format!(
                    "{{ \"stage\": \"{}\", \"count\": {}, \"total_us\": {}, \
                     \"p50_us\": {}, \"p95_us\": {} }}",
                    stage.name(),
                    s.count,
                    s.total.as_micros(),
                    s.p50.as_micros(),
                    s.p95.as_micros()
                )
            })
        })
        .collect();
    let locks: Vec<String> = LockSite::ALL
        .iter()
        .filter_map(|&site| {
            let l = &stats.locks[site.index()];
            (l.waits > 0).then(|| {
                format!(
                    "{{ \"site\": \"{}\", \"waits\": {}, \"wait_us\": {} }}",
                    site.name(),
                    l.waits,
                    l.wait.as_micros()
                )
            })
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "      \"workers\": {},\n",
            "      \"served\": {},\n",
            "      \"req_per_s\": {:.1},\n",
            "      \"sojourn_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {} }},\n",
            "      \"sum_sojourn_s\": {:.4},\n",
            "      \"attributed_s\": {:.4},\n",
            "      \"coverage\": {:.4},\n",
            "      \"lock_wait_s\": {:.6},\n",
            "      \"sampled_traces\": {},\n",
            "      \"stages\": [{}],\n",
            "      \"locks\": [{}]\n",
            "    }}"
        ),
        workers,
        r.served,
        r.served_per_s,
        r.p50.as_micros(),
        r.p95.as_micros(),
        r.p99.as_micros(),
        r.sum_sojourn.as_secs_f64(),
        attributed.as_secs_f64(),
        coverage,
        stats
            .locks
            .iter()
            .map(|l| l.wait)
            .sum::<Duration>()
            .as_secs_f64(),
        r.sampled_traces,
        stages.join(", "),
        locks.join(", "),
    )
}

fn mode_json(r: &ModeReport) -> String {
    let stats = &r.snap.aggregate;
    format!(
        concat!(
            "{{\n",
            "      \"mode\": \"{}\",\n",
            "      \"batching\": {},\n",
            "      \"served\": {},\n",
            "      \"wall_s\": {:.4},\n",
            "      \"req_per_s\": {:.1},\n",
            "      \"offered_per_s\": {:.1},\n",
            "      \"sojourn_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},\n",
            "      \"truth_hit_rate\": {:.4},\n",
            "      \"cache_hit_rate\": {:.4},\n",
            "      \"minings\": {},\n",
            "      \"fused_minings\": {},\n",
            "      \"fused_mined_ods\": {},\n",
            "      \"fused_mining_ratio\": {:.4},\n",
            "      \"mining_runs_per_request\": {:.5},\n",
            "      \"artifact_hits\": {},\n",
            "      \"artifact_misses\": {},\n",
            "      \"artifact_hit_rate\": {:.4},\n",
            "      \"batch_runs\": {},\n",
            "      \"batch_max\": {},\n",
            "      \"batched_requests\": {},\n",
            "      \"unbatched_requests\": {},\n",
            "      \"chosen_delay_us\": {},\n",
            "      \"delay_raises\": {},\n",
            "      \"delay_drops\": {}\n",
            "    }}"
        ),
        r.label,
        r.batching,
        r.served,
        r.wall_s,
        r.served_per_s,
        r.offered_per_s,
        r.p50.as_micros(),
        r.p95.as_micros(),
        r.p99.as_micros(),
        r.max.as_micros(),
        stats.truth_hit_rate(),
        stats.cache_hit_rate(),
        stats.cache_misses,
        stats.fused_minings,
        stats.fused_mined_ods,
        stats.fused_mining_ratio(),
        stats.mining_runs_per_request(),
        stats.artifact_hits,
        stats.artifact_misses,
        stats.artifact_hit_rate(),
        r.snap.batch_runs,
        r.snap.batch_max,
        r.snap.batched_requests,
        r.snap.unbatched_requests,
        r.snap.batch_delay.as_micros(),
        r.snap.batch_delay_raises,
        r.snap.batch_delay_drops,
    )
}

fn wire_json(r: &WireReport) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"clients\": {},\n",
            "    \"rate_per_s\": {:.1},\n",
            "    \"served\": {},\n",
            "    \"wall_s\": {:.4},\n",
            "    \"req_per_s\": {:.1},\n",
            "    \"sojourn_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},\n",
            "    \"status\": {{ \"ok\": {}, \"busy_429\": {}, \"other\": {} }},\n",
            "    \"gateway\": {}\n",
            "  }}"
        ),
        r.clients,
        r.rate,
        r.served,
        r.wall_s,
        r.req_per_s,
        r.p50.as_micros(),
        r.p95.as_micros(),
        r.p99.as_micros(),
        r.max.as_micros(),
        r.ok,
        r.busy_429,
        r.other_status,
        r.gateway.to_json(),
    )
}

fn print_report(r: &ModeReport) {
    println!(
        "  {:>12}: {:>9.1} req/s (offered {:>9.1})  p50 {:>8.2?}  p95 {:>8.2?}  \
         mining-runs/req {:.4}  art-hit {:>5.1}%  cache-hit {:>5.1}%  runs {}  delay {:?}",
        r.label,
        r.served_per_s,
        r.offered_per_s,
        r.p50,
        r.p95,
        r.snap.aggregate.mining_runs_per_request(),
        100.0 * r.snap.aggregate.artifact_hit_rate(),
        100.0 * r.snap.aggregate.cache_hit_rate(),
        r.snap.batch_runs,
        r.snap.batch_delay,
    );
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let scale_name = match args.scale {
        Scale::Small => "small",
        _ => "medium",
    };
    println!(
        "bench_serve: {} requests x2 phases on a {scale_name} city, {} hot origins x {} \
         destinations x 3 buckets (firehose + {:.0}/s moderate sweep)",
        args.requests, args.origins, args.dests, args.moderate_rate
    );
    let sim = SimWorld::build(args.scale, 42).expect("world");
    let world = sim.service_world();
    println!(
        "  world built in {:.1?} ({} intersections, {} trips)",
        t0.elapsed(),
        sim.city.graph.node_count(),
        sim.trips.trips.len()
    );

    // The hot-spot OD pool: a few origins, many destinations, three
    // adjacent departure buckets — the shape cell-keyed coalescing and
    // cross-bucket artifact sharing exist for.
    let origins: Vec<_> = sim
        .request_stream(args.origins, 2, 777)
        .into_iter()
        .map(|(from, _)| from)
        .collect();
    let dests: Vec<_> = sim
        .request_stream(args.dests, 2, 778)
        .into_iter()
        .map(|(_, to)| to)
        .collect();
    let hours = [8.0, 8.25, 8.5];
    let mut rng = SmallRng::seed_from_u64(0xBA7C4);
    let sequence: Vec<Request> = (0..args.requests)
        .map(|i| loop {
            let from = origins[rng.random_range(0..origins.len())];
            let to = dests[rng.random_range(0..dests.len())];
            if from != to {
                break Request::new(from, to, TimeOfDay::from_hours(hours[i % hours.len()]));
            }
        })
        .collect();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);

    println!("firehose (service capacity):");
    let adaptive_ceiling = Duration::from_millis(2);
    let off = run_mode(
        &world,
        &sequence,
        args.rate,
        workers,
        Mode::Off,
        TraceConfig::Off,
    );
    print_report(&off);
    let noreuse = run_mode(
        &world,
        &sequence,
        args.rate,
        workers,
        Mode::StaticNoReuse,
        TraceConfig::Off,
    );
    print_report(&noreuse);
    let fixed = run_mode(
        &world,
        &sequence,
        args.rate,
        workers,
        Mode::Static(Duration::ZERO),
        TraceConfig::Off,
    );
    print_report(&fixed);
    let adaptive = run_mode(
        &world,
        &sequence,
        args.rate,
        workers,
        Mode::Adaptive(adaptive_ceiling),
        TraceConfig::Off,
    );
    print_report(&adaptive);

    let speedup = adaptive.served_per_s / off.served_per_s.max(1e-9);
    let adaptive_over_static = adaptive.served_per_s / fixed.served_per_s.max(1e-9);
    let adaptive_over_noreuse = adaptive.served_per_s / noreuse.served_per_s.max(1e-9);
    let mining_work_ratio = adaptive.snap.aggregate.mining_runs_per_request()
        / off.snap.aggregate.mining_runs_per_request().max(1e-12);
    println!(
        "  speedup (req/s, adaptive/off): {speedup:.2}x (adaptive/static: \
         {adaptive_over_static:.2}x, adaptive/no-reuse: {adaptive_over_noreuse:.2}x); \
         mining runs per request (adaptive/off): {mining_work_ratio:.2}x"
    );

    println!("moderate load ({:.0}/s Poisson):", args.moderate_rate);
    let moderate: Vec<ModeReport> = [
        Mode::Static(Duration::ZERO),
        Mode::Static(Duration::from_millis(1)),
        Mode::Adaptive(adaptive_ceiling),
    ]
    .into_iter()
    .map(|mode| {
        let r = run_mode(
            &world,
            &sequence,
            args.moderate_rate,
            workers,
            mode,
            TraceConfig::Off,
        );
        print_report(&r);
        r
    })
    .collect();

    // Traced worker sweep: the same firehose workload at each worker
    // count, with sampled span tracing on, so the JSON carries a
    // per-stage attribution of where the scaling ceiling actually is.
    println!(
        "worker sweep (adaptive, traced, {:?} workers):",
        args.sweep_workers
    );
    let sweep: Vec<(usize, ModeReport)> = args
        .sweep_workers
        .iter()
        .map(|&w| {
            let r = run_mode(
                &world,
                &sequence,
                args.rate,
                w,
                Mode::Adaptive(adaptive_ceiling),
                TraceConfig::sampled(64, 64),
            );
            let stats = &r.snap.aggregate;
            let attributed: Duration = stats.stages.iter().map(|s| s.total).sum();
            // Disjoint spans live inside call windows that are
            // themselves inside ticket sojourns, so the attribution can
            // never exceed what the load generator observed end to end.
            assert!(
                attributed <= r.sum_sojourn,
                "attribution ({attributed:?}) must fit inside the total \
                 sojourn ({:?})",
                r.sum_sojourn
            );
            assert!(
                r.sampled_traces >= 1,
                "the sweep must retain at least one complete trace"
            );
            let mut top: Vec<(Stage, Duration)> = Stage::ALL
                .iter()
                .map(|&s| (s, stats.stages[s.index()].total))
                .collect();
            top.sort_by_key(|&(_, total)| std::cmp::Reverse(total));
            let lock_wait: Duration = stats.locks.iter().map(|l| l.wait).sum();
            // The sharded-ingress acceptance bar: the single-queue
            // baseline (the PR-6 worker sweep in BENCH_serve.json)
            // recorded 68.6ms of ingress lock-wait at this sweep
            // point. Per-city queues plus the scheduler-lock-free
            // single-backlog fast path must show a clear drop here —
            // a regression back toward one serialised dispatch lock
            // fails the run outright.
            if w == 8 {
                let ingress = &stats.locks[LockSite::Ingress.index()];
                const PR6_INGRESS_8W: Duration = Duration::from_micros(68_615);
                assert!(
                    ingress.wait < PR6_INGRESS_8W,
                    "8-worker ingress lock-wait {:?} regressed past the \
                     single-queue baseline ({:?})",
                    ingress.wait,
                    PR6_INGRESS_8W
                );
            }
            println!(
                "  {:>2} workers: {:>9.1} req/s  p95 {:>8.2?}  span-coverage {:>5.1}%  \
                 lock-wait {:>8.2?}  top [{} {:.0}%, {} {:.0}%, {} {:.0}%]",
                w,
                r.served_per_s,
                r.p95,
                100.0 * attributed.as_secs_f64() / r.sum_sojourn.as_secs_f64().max(1e-12),
                lock_wait,
                top[0].0.name(),
                100.0 * top[0].1.as_secs_f64() / attributed.as_secs_f64().max(1e-12),
                top[1].0.name(),
                100.0 * top[1].1.as_secs_f64() / attributed.as_secs_f64().max(1e-12),
                top[2].0.name(),
                100.0 * top[2].1.as_secs_f64() / attributed.as_secs_f64().max(1e-12),
            );
            (w, r)
        })
        .collect();
    if let Some((_, last)) = sweep.last() {
        let trace_json = last.trace_json.as_deref().expect("traced sweep run");
        std::fs::write(&args.trace_out, trace_json).expect("writing the trace report");
        println!(
            "  wrote {} ({} sampled traces at {} workers)",
            args.trace_out,
            last.sampled_traces,
            sweep.last().map(|(w, _)| *w).unwrap_or(0),
        );
    }

    // Durability cost: the same firehose workload with resolution
    // logging off / on without fsync / on with group fsync, plus the
    // time to rebuild a fresh platform from the produced log.
    println!("durability (firehose, commit log):");
    let durability: Vec<DurabilityReport> = [
        None,
        Some(cp_service::FsyncPolicy::Never),
        Some(cp_service::FsyncPolicy::Group),
    ]
    .into_iter()
    .map(|fsync| {
        let r = run_durability(&world, &sequence, workers, fsync);
        assert!(
            r.replay_matches,
            "recovering the {} log must rebuild the live truth store exactly",
            r.mode
        );
        println!(
            "  {:>15}: {:>9.1} req/s  logged {:>6}  shed {:>3}  {:>8} wal bytes  \
             recovery {:>7.2} ms ({} truths)",
            r.mode,
            r.req_per_s,
            r.events_logged,
            r.events_shed,
            r.wal_bytes,
            r.recovery_ms,
            r.recovered_truths,
        );
        r
    })
    .collect();

    // The two-city weighted-fairness row: cold-city p99 solo vs under a
    // hot-city firehose, plus the multi-city aggregate req/s.
    let fairness = args.fairness.then(|| {
        // The fairness question is a contention question: run it at 8
        // workers even on smaller hosts, matching the sweep point the
        // acceptance bar reads.
        let fairness_workers = workers.max(8);
        println!("fairness (two cities, hot weight 4, {fairness_workers} workers):");
        let r = run_fairness(&world, &sequence, fairness_workers);
        println!(
            "  cold p99 {:>8.2?} solo -> {:>8.2?} loaded ({:.1}x)  \
             aggregate {:>9.1} req/s  sheds hot {} / cold {}",
            r.solo_p99,
            r.loaded_p99,
            r.degradation,
            r.aggregate_req_per_s,
            r.hot_rejected_busy,
            r.cold_rejected_busy,
        );
        r
    });

    // The chaos/degradation rows: the same crowd-backed city, healthy
    // vs the standard fault plan, with the circuit breaker attached.
    let chaos = args.chaos.then(|| {
        // Crowd-forced resolution is the expensive path; a few hundred
        // distinct ODs are plenty to exercise every injection seam.
        let chaos_requests = args.requests.min(240);
        println!("chaos (crowd-backed, breaker on, {chaos_requests} requests):");
        let rows = [None, Some(FaultPlan::standard())]
            .into_iter()
            .map(|plan| {
                let r = run_chaos(&sim, chaos_requests, workers, plan);
                let (injected, no_shows) = r
                    .chaos
                    .map(|c| (c.total_injected(), c.crowd_no_shows))
                    .unwrap_or((0, 0));
                println!(
                    "  {:>14}: {:>9.1} req/s  p95 {:>8.2?}  served {}  degraded-errors {}  \
                     injected {} (no-shows {})  starved {}  breaker {}",
                    r.label,
                    r.req_per_s,
                    r.p95,
                    r.served,
                    r.degraded_errors,
                    injected,
                    no_shows,
                    r.crowd_starved,
                    r.breaker.as_ref().map(|b| b.state.name()).unwrap_or("none"),
                );
                r
            })
            .collect::<Vec<ChaosReport>>();
        // The healthy row must be fault-free; the chaos row must have
        // actually injected something at the configured rates.
        assert_eq!(rows[0].chaos.map(|c| c.total_injected()).unwrap_or(0), 0);
        assert!(
            rows[1].chaos.map(|c| c.total_injected()).unwrap_or(0) > 0,
            "the standard fault plan injected nothing"
        );
        rows
    });

    // The loopback-TCP row: the hot-spot workload through the HTTP
    // edge, syscalls and parsing included.
    let wire = args.wire.then(|| {
        println!(
            "wire (loopback HTTP, {} keep-alive clients, {}):",
            args.wire_clients,
            if args.wire_rate > 0.0 {
                format!("{:.0}/s open-loop", args.wire_rate)
            } else {
                "closed-loop firehose".to_string()
            }
        );
        let r = run_wire(
            &world,
            &sequence,
            args.wire_rate,
            workers,
            args.wire_clients,
        );
        assert!(
            r.gateway.is_consistent(),
            "gateway accounting must balance: {:?}",
            r.gateway
        );
        assert_eq!(
            r.ok + r.busy_429 + r.other_status,
            2 * sequence.len() as u64,
            "every wire request must be answered"
        );
        println!(
            "  {:>12}: {:>9.1} req/s  p50 {:>8.2?}  p95 {:>8.2?}  p99 {:>8.2?}  \
             ok {}  429 {}  other {}",
            "wire", r.req_per_s, r.p50, r.p95, r.p99, r.ok, r.busy_429, r.other_status,
        );
        r
    });

    let firehose_json: Vec<String> = [&off, &noreuse, &fixed, &adaptive]
        .into_iter()
        .map(mode_json)
        .collect();
    let moderate_json: Vec<String> = moderate.iter().map(mode_json).collect();
    let sweep_rows: Vec<String> = sweep.iter().map(|(w, r)| sweep_json(r, *w)).collect();
    let durability_rows: Vec<String> = durability.iter().map(durability_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"requests\": {},\n",
            "  \"phases\": 2,\n",
            "  \"moderate_rate_per_s\": {:.1},\n",
            "  \"workers\": {},\n",
            "  \"hot_origins\": {},\n",
            "  \"destinations\": {},\n",
            "  \"departure_buckets\": 3,\n",
            "  \"modes\": [\n    {}\n  ],\n",
            "  \"moderate\": [\n    {}\n  ],\n",
            "  \"worker_sweep\": [\n    {}\n  ],\n",
            "  \"durability\": [\n    {}\n  ],\n",
            "  \"fairness\": {},\n",
            "  \"chaos\": {},\n",
            "  \"wire\": {},\n",
            "  \"speedup_req_per_s\": {:.4},\n",
            "  \"adaptive_over_static_req_per_s\": {:.4},\n",
            "  \"adaptive_over_noreuse_req_per_s\": {:.4},\n",
            "  \"mining_runs_per_request_on_over_off\": {:.4}\n",
            "}}\n"
        ),
        scale_name,
        args.requests,
        args.moderate_rate,
        workers,
        args.origins,
        args.dests,
        firehose_json.join(",\n    "),
        moderate_json.join(",\n    "),
        sweep_rows.join(",\n    "),
        durability_rows.join(",\n    "),
        fairness
            .as_ref()
            .map(fairness_json)
            .unwrap_or_else(|| "null".to_string()),
        chaos
            .as_ref()
            .map(|rows| {
                format!(
                    "[\n    {}\n  ]",
                    rows.iter()
                        .map(chaos_json)
                        .collect::<Vec<_>>()
                        .join(",\n    ")
                )
            })
            .unwrap_or_else(|| "null".to_string()),
        wire.as_ref()
            .map(wire_json)
            .unwrap_or_else(|| "null".to_string()),
        speedup,
        adaptive_over_static,
        adaptive_over_noreuse,
        mining_work_ratio,
    );
    std::fs::write(&args.out, json).expect("writing the report");
    println!("  wrote {} in {:.1?}", args.out, t0.elapsed());
}
