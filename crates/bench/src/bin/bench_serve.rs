//! Open-loop serving benchmark: batching **on vs off** on a hot-spot
//! workload, written to `BENCH_serve.json` so later PRs have a baseline
//! to regress against.
//!
//! The workload models the redundancy origin-cell coalescing exists
//! for: a handful of hot origins (commute sources) fanning out to many
//! destinations inside one departure bucket. Requests arrive on a
//! Poisson clock at a target rate and are submitted through the
//! platform's blocking ingress (open-loop arrivals with bounded-queue
//! backpressure, never shedding, so both modes serve the identical
//! request sequence). Each mode gets a fresh platform over the same
//! pre-built world; the report compares served throughput, sojourn
//! percentiles, truth/cache hit rates, and — the number batching exists
//! to shrink — mining passes per request and the fused-mining ratio.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p cp-bench --bin bench_serve               # defaults
//! cargo run --release -p cp-bench --bin bench_serve -- \
//!     --requests 4000 --rate 2000 --scale medium --out BENCH_serve.json
//! ```

use cp_service::{
    BatchConfig, Platform, PlatformConfig, Request, ServiceConfig, StatsSnapshot, Ticket,
};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    rate: f64,
    scale: Scale,
    origins: usize,
    dests: usize,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            requests: 2000,
            // Firehose by default: req/s measures service capacity.
            // Pass a positive --rate for latency-under-load runs.
            rate: 0.0,
            scale: Scale::Small,
            origins: 4,
            dests: 200,
            out: "BENCH_serve.json".to_string(),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests N"),
            "--rate" => args.rate = value().parse().expect("--rate R"),
            "--scale" => {
                args.scale = match value().as_str() {
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => panic!("unknown --scale {other} (small|medium)"),
                }
            }
            "--origins" => args.origins = value().parse().expect("--origins K"),
            "--dests" => args.dests = value().parse().expect("--dests M"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

struct ModeReport {
    batching: bool,
    served: usize,
    wall_s: f64,
    served_per_s: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    max: Duration,
    stats: StatsSnapshot,
    batch_runs: u64,
    batch_max: u64,
    batched_requests: u64,
    unbatched_requests: u64,
}

/// Serves the fixed request sequence on a fresh platform; the world
/// (and its pre-built mining state) is shared, the truth store is not.
fn run_mode(
    world: &std::sync::Arc<cp_service::World>,
    sequence: &[Request],
    rate: f64,
    workers: usize,
    batch: Option<BatchConfig>,
) -> ModeReport {
    let batching = batch.is_some();
    let platform = Platform::start(PlatformConfig {
        workers,
        queue_capacity: 512,
        maintenance: None,
        batch,
    });
    // Exact-endpoint reuse: every *distinct* OD pays one mining, which
    // makes the miss path (the thing coalescing fuses) the measured
    // cost instead of the default geometry's nearby-truth aliasing.
    let id = platform.register_city(
        std::sync::Arc::clone(world),
        ServiceConfig::strict_deterministic(),
    );

    let start = Instant::now();
    let mut next_arrival = start;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(sequence.len());
    for &req in sequence {
        // Paced arrivals at the target rate; `rate <= 0` is the
        // firehose (arrivals limited only by ingress backpressure, so
        // served req/s measures pure service capacity).
        if rate > 0.0 {
            let now = Instant::now();
            if now < next_arrival {
                std::thread::sleep(next_arrival - now);
            }
            next_arrival += Duration::from_secs_f64(1.0 / rate);
        }
        let mut req = req;
        req.city = id;
        tickets.push(platform.submit_blocking(req).expect("admitted"));
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(tickets.len());
    for ticket in &tickets {
        while !ticket.is_done() {
            std::thread::sleep(Duration::from_micros(200));
        }
        latencies.push(ticket.latency().expect("completed ticket"));
    }
    let wall = start.elapsed();
    latencies.sort_unstable();

    let snap = platform.stats();
    assert!(snap.is_consistent(), "platform accounting must balance");
    assert!(
        snap.aggregate.is_consistent(),
        "city accounting must balance"
    );
    let report = ModeReport {
        batching,
        served: latencies.len(),
        wall_s: wall.as_secs_f64(),
        served_per_s: latencies.len() as f64 / wall.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
        stats: snap.aggregate,
        batch_runs: snap.batch_runs,
        batch_max: snap.batch_max,
        batched_requests: snap.batched_requests,
        unbatched_requests: snap.unbatched_requests,
    };
    platform.shutdown();
    report
}

fn mode_json(r: &ModeReport) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"batching\": {},\n",
            "      \"served\": {},\n",
            "      \"wall_s\": {:.4},\n",
            "      \"req_per_s\": {:.1},\n",
            "      \"sojourn_us\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},\n",
            "      \"truth_hit_rate\": {:.4},\n",
            "      \"cache_hit_rate\": {:.4},\n",
            "      \"minings\": {},\n",
            "      \"fused_minings\": {},\n",
            "      \"fused_mined_ods\": {},\n",
            "      \"fused_mining_ratio\": {:.4},\n",
            "      \"mining_runs_per_request\": {:.5},\n",
            "      \"batch_runs\": {},\n",
            "      \"batch_max\": {},\n",
            "      \"batched_requests\": {},\n",
            "      \"unbatched_requests\": {}\n",
            "    }}"
        ),
        r.batching,
        r.served,
        r.wall_s,
        r.served_per_s,
        r.p50.as_micros(),
        r.p95.as_micros(),
        r.p99.as_micros(),
        r.max.as_micros(),
        r.stats.truth_hit_rate(),
        r.stats.cache_hit_rate(),
        r.stats.cache_misses,
        r.stats.fused_minings,
        r.stats.fused_mined_ods,
        r.stats.fused_mining_ratio(),
        r.stats.mining_runs_per_request(),
        r.batch_runs,
        r.batch_max,
        r.batched_requests,
        r.unbatched_requests,
    )
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let scale_name = match args.scale {
        Scale::Small => "small",
        _ => "medium",
    };
    println!(
        "bench_serve: {} requests at {}/s on a {scale_name} city, {} hot origins x {} destinations",
        args.requests, args.rate, args.origins, args.dests
    );
    let sim = SimWorld::build(args.scale, 42).expect("world");
    let world = sim.service_world();
    println!(
        "  world built in {:.1?} ({} intersections, {} trips)",
        t0.elapsed(),
        sim.city.graph.node_count(),
        sim.trips.trips.len()
    );

    // The hot-spot OD pool: a few origins, many destinations, one
    // departure hour — the shape origin-cell coalescing exists for.
    let origins: Vec<_> = sim
        .request_stream(args.origins, 2, 777)
        .into_iter()
        .map(|(from, _)| from)
        .collect();
    let dests: Vec<_> = sim
        .request_stream(args.dests, 2, 778)
        .into_iter()
        .map(|(_, to)| to)
        .collect();
    let mut rng = SmallRng::seed_from_u64(0xBA7C4);
    let sequence: Vec<Request> = (0..args.requests)
        .map(|_| loop {
            let from = origins[rng.random_range(0..origins.len())];
            let to = dests[rng.random_range(0..dests.len())];
            if from != to {
                break Request::new(from, to, TimeOfDay::from_hours(8.0));
            }
        })
        .collect();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let off = run_mode(&world, &sequence, args.rate, workers, None);
    let on = run_mode(
        &world,
        &sequence,
        args.rate,
        workers,
        Some(BatchConfig {
            max_batch: 16,
            max_delay: Duration::ZERO,
        }),
    );

    for r in [&off, &on] {
        println!(
            "  batching {:>3}: {:>8.1} req/s  p50 {:>8.2?}  p95 {:>8.2?}  p99 {:>8.2?}  \
             mining-runs/req {:.4}  fused {:.1}%  batch-runs {}  max {}",
            if r.batching { "on" } else { "off" },
            r.served_per_s,
            r.p50,
            r.p95,
            r.p99,
            r.stats.mining_runs_per_request(),
            100.0 * r.stats.fused_mining_ratio(),
            r.batch_runs,
            r.batch_max,
        );
    }
    let speedup = on.served_per_s / off.served_per_s.max(1e-9);
    let mining_work_ratio =
        on.stats.mining_runs_per_request() / off.stats.mining_runs_per_request().max(1e-12);
    println!(
        "  speedup (req/s, on/off): {speedup:.2}x; mining runs per request (on/off): {mining_work_ratio:.2}x"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"requests\": {},\n",
            "  \"rate_per_s\": {:.1},\n",
            "  \"workers\": {},\n",
            "  \"hot_origins\": {},\n",
            "  \"destinations\": {},\n",
            "  \"modes\": [\n    {},\n    {}\n  ],\n",
            "  \"speedup_req_per_s\": {:.4},\n",
            "  \"mining_runs_per_request_on_over_off\": {:.4}\n",
            "}}\n"
        ),
        scale_name,
        args.requests,
        args.rate,
        workers,
        args.origins,
        args.dests,
        mode_json(&off),
        mode_json(&on),
        speedup,
        mining_work_ratio,
    );
    std::fs::write(&args.out, json).expect("writing the report");
    println!("  wrote {} in {:.1?}", args.out, t0.elapsed());
}
