//! CrowdPlanner experiment harness.
//!
//! ```sh
//! cargo run --release -p cp-bench --bin experiments            # all experiments
//! cargo run --release -p cp-bench --bin experiments -- e1 e4   # a subset
//! cargo run --release -p cp-bench --bin experiments -- --fast  # smoke sizes
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let all = cp_bench::experiments();
    let mut ran = 0;
    for (id, desc, f) in &all {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == *id) {
            continue;
        }
        println!("\n=== {} — {} ===", id.to_uppercase(), desc);
        let t0 = std::time::Instant::now();
        f(fast);
        println!("[{} done in {:.1}s]", id, t0.elapsed().as_secs_f64());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment id; available:");
        for (id, desc, _) in &all {
            eprintln!("  {id}: {desc}");
        }
        std::process::exit(1);
    }
}
