//! E5 — worker-selection strategies: how accurate are the chosen workers?
//!
//! Paper hook: §IV selects "the most eligible workers to answer the
//! questions with high accuracy", and the rated-voting scheme avoids the
//! narrow-specialist bias of plain score sums. Expected shape:
//! random < sum-of-scores top-k < rated-voting top-k < omniscient oracle.

use crate::common::{calibrated_candidates, header, rng, row};
use cp_core::taskgen::{SelectionAlgorithm, SelectionProblem};
use cp_core::worker_selection::KnowledgeModel;
use cp_core::Config;
use cp_crowd::WorkerId;
use cp_mining::CandidateGenerator;
use cp_roadnet::LandmarkId;
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};
use rand::RngExt;

/// Runs E5.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 13).expect("world");
    let platform = world.platform(200, 30, 13);
    let cfg = Config::default();
    let knowledge = KnowledgeModel::build(&platform, &world.landmarks, &cfg);
    let gen = CandidateGenerator::new(&world.city.graph, &world.trips.trips);
    let model = *platform.answer_model();
    let n_req = if fast { 20 } else { 80 };
    let requests = world.request_stream(n_req, 6, 53);
    let departure = TimeOfDay::from_hours(8.0);
    let k = cfg.k_workers;
    let mut r = rng(5);

    // Accumulated-score sum top-k (the biased baseline the paper
    // explicitly argues against in §IV-C).
    let sum_top_k = |qs: &[LandmarkId]| -> Vec<WorkerId> {
        let mut scored: Vec<(WorkerId, f64)> = platform
            .population()
            .ids()
            .map(|w| {
                let s: f64 = qs
                    .iter()
                    .map(|&l| knowledge.accumulated.get(w.index(), l.index()))
                    .sum();
                (w, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        scored.into_iter().take(k).map(|(w, _)| w).collect()
    };

    let mut totals: Vec<(f64, usize)> = vec![(0.0, 0); 4]; // random, sum, voting, oracle
    for &(a, b) in &requests {
        let routes = calibrated_candidates(&world, &gen, a, b, departure);
        if routes.len() < 2 {
            continue;
        }
        let Ok(problem) = SelectionProblem::prepare(&routes, &world.significance) else {
            continue;
        };
        let Ok(sel) = SelectionAlgorithm::Greedy.run(&problem, 2_000_000) else {
            continue;
        };
        let qs = sel.landmarks;

        let mean_acc = |workers: &[WorkerId]| -> f64 {
            let mut acc = 0.0;
            let mut n = 0;
            for &w in workers {
                for &l in &qs {
                    acc += model.accuracy(platform.population(), w, world.landmarks.get(l));
                    n += 1;
                }
            }
            acc / n.max(1) as f64
        };

        // Random k.
        let random: Vec<WorkerId> = (0..k)
            .map(|_| WorkerId(r.random_range(0..platform.population().len() as u32)))
            .collect();
        // Sum-score top-k.
        let sums = sum_top_k(&qs);
        // Rated-voting top-k (the paper's scheme).
        let voting = cp_core::worker_selection::select_workers(&platform, &knowledge, &qs, &cfg)
            .unwrap_or_default();
        // Oracle: truly best-k by latent accuracy.
        let oracle: Vec<WorkerId> = {
            let mut scored: Vec<(WorkerId, f64)> = platform
                .population()
                .ids()
                .map(|w| {
                    let s: f64 = qs
                        .iter()
                        .map(|&l| model.accuracy(platform.population(), w, world.landmarks.get(l)))
                        .sum();
                    (w, s)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            scored.into_iter().take(k).map(|(w, _)| w).collect()
        };

        for (i, ws) in [&random, &sums, &voting, &oracle].iter().enumerate() {
            if !ws.is_empty() {
                totals[i].0 += mean_acc(ws);
                totals[i].1 += 1;
            }
        }
    }

    header(
        "E5: mean worker accuracy on the task's question landmarks",
        &["strategy", "tasks", "mean accuracy"],
    );
    let names = [
        "random k",
        "sum-score top-k",
        "rated voting top-k (paper)",
        "omniscient oracle",
    ];
    for (i, name) in names.iter().enumerate() {
        row(&[
            name.to_string(),
            format!("{}", totals[i].1),
            format!("{:.3}", totals[i].0 / totals[i].1.max(1) as f64),
        ]);
    }
}
