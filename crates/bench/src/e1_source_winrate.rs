//! E1 — source win-rate vs trajectory-data density.
//!
//! Paper hook: §I argues that web services deviate from drivers and that
//! popularity-only systems fail where data is sparse; the conclusion
//! states "MFP has the highest possibility to give the best route".
//! Expected shape: web services are density-independent; miners improve
//! with density; MFP tops the table once data is dense.

use crate::common::{header, row};
use cp_mining::{CandidateGenerator, SourceKind};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};

/// Runs E1.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 13).expect("world");
    let n_req = if fast { 30 } else { 100 };
    let requests = world.request_stream(n_req, 6, 31);
    let departure = TimeOfDay::from_hours(8.0);
    let densities = if fast {
        vec![0.1, 1.0]
    } else {
        vec![0.02, 0.05, 0.1, 0.25, 0.5, 1.0]
    };

    header(
        "E1: fraction of requests where each source returns the driver-preferred route",
        &[
            "density", "trips", "WS-Short", "WS-Fast", "MPR", "LDR", "MFP",
        ],
    );
    for d in densities {
        let keep = ((world.trips.trips.len() as f64) * d) as usize;
        let subset = &world.trips.trips[..keep.min(world.trips.trips.len())];
        let gen = CandidateGenerator::new(&world.city.graph, subset);
        let mut hits = [0usize; 5];
        for &(a, b) in &requests {
            for c in gen.candidates(a, b, departure) {
                if world.is_best(&c.path) {
                    let i = SourceKind::ALL.iter().position(|&s| s == c.source).unwrap();
                    hits[i] += 1;
                }
            }
        }
        let pct = |h: usize| format!("{:.1}%", 100.0 * h as f64 / requests.len() as f64);
        row(&[
            format!("{:.0}%", d * 100.0),
            format!("{}", subset.len()),
            pct(hits[0]),
            pct(hits[1]),
            pct(hits[2]),
            pct(hits[3]),
            pct(hits[4]),
        ]);
    }
}
