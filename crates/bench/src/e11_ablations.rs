//! E11 — ablations of CrowdPlanner's design choices.
//!
//! Not a paper experiment: DESIGN.md calls out several mechanisms whose
//! value is worth isolating. Each row disables or degrades exactly one
//! mechanism and reruns the end-to-end workload of E9.

use crate::common::{header, row};
use cp_core::Config;
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};

fn run_system(world: &SimWorld, cfg: Config, n_req: usize) -> (f64, usize, usize) {
    let desk = world.shared_crowd(200, 30, 13, cfg.eta_quota);
    let mut planner = world.owned_planner(desk, cfg).expect("planner");
    let requests = world.request_stream(n_req, 6, 31);
    let mut hits = 0usize;
    for &(a, b) in &requests {
        let oracle = world.oracle(a, b).expect("oracle");
        let rec = planner
            .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
            .expect("request");
        if world.is_best(&rec.path) {
            hits += 1;
        }
    }
    let s = planner.stats();
    (
        100.0 * hits as f64 / requests.len() as f64,
        s.total_questions,
        s.crowd_attempts,
    )
}

/// Runs E11.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 13).expect("world");
    let n_req = if fast { 30 } else { 100 };

    header(
        "E11: one-mechanism-at-a-time ablations (end-to-end workload)",
        &["variant", "accuracy", "crowd questions", "crowd tasks"],
    );

    let variants: Vec<(&str, Config)> = vec![
        ("full system (defaults)", Config::default()),
        (
            "no agreement shortcut",
            Config {
                agreement_similarity: 1.0,
                agreement_quorum: 1.0,
                ..Config::default()
            },
        ),
        (
            "no early stop (ask everyone)",
            Config {
                eta_stop: 1.0,
                ..Config::default()
            },
        ),
        (
            "no verdict floor (always trust the crowd)",
            Config {
                verdict_floor: 0.0,
                ..Config::default()
            },
        ),
        (
            "fewer workers (k = 3)",
            Config {
                k_workers: 3,
                ..Config::default()
            },
        ),
        (
            "more workers (k = 15)",
            Config {
                k_workers: 15,
                ..Config::default()
            },
        ),
        (
            "narrow knowledge radius (η_dis = 500 m)",
            Config {
                eta_dis: 500.0,
                ..Config::default()
            },
        ),
        (
            "low-rank PMF (d = 2)",
            Config {
                pmf_dims: 2,
                ..Config::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let (acc, questions, tasks) = run_system(&world, cfg, n_req);
        row(&[
            name.to_string(),
            format!("{acc:.1}%"),
            format!("{questions}"),
            format!("{tasks}"),
        ]);
    }
}
