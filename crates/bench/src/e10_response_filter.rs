//! E10 — the response-time filter.
//!
//! Paper hook: §IV-A — workers whose exponential-CDF probability of
//! answering before the deadline is below η_time are not assigned the
//! task. Expected shape: with the filter on, the fraction of assigned
//! workers who actually finish before the deadline rises, at the cost of
//! a smaller eligible pool.

use crate::common::{header, rng, row};
use cp_core::worker_selection::{estimated_rate, is_responsive};
use cp_core::Config;
use cp_crowd::sample_response_time;
use crowdplanner::sim::{Scale, SimWorld};

/// Runs E10.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Small, 31).expect("world");
    let mut platform = world.platform(150, 40, 31);
    // Answer history gives the MLE something to estimate.
    platform.warm_up(&world.landmarks, 10);
    let trials = if fast { 200 } else { 2000 };
    let questions_per_task = 3;
    let mut r = rng(10);

    header(
        "E10: on-time completion with and without the η_time filter",
        &[
            "deadline (s)",
            "eligible pool",
            "on-time (filtered)",
            "on-time (unfiltered)",
        ],
    );
    for deadline in [900.0, 1800.0, 3600.0, 7200.0] {
        let cfg = Config {
            task_deadline: deadline,
            ..Config::default()
        };
        let eligible: Vec<_> = platform
            .population()
            .ids()
            .filter(|&w| is_responsive(&platform, w, &cfg))
            .collect();
        let all: Vec<_> = platform.population().ids().collect();
        let mut on_time = |pool: &[cp_crowd::WorkerId]| -> f64 {
            if pool.is_empty() {
                return 0.0;
            }
            let mut ok = 0;
            for t in 0..trials {
                let w = pool[t % pool.len()];
                let lambda = platform.population().get(w).lambda;
                let total: f64 = (0..questions_per_task)
                    .map(|_| sample_response_time(lambda, &mut r))
                    .sum();
                if total <= deadline {
                    ok += 1;
                }
            }
            ok as f64 / trials as f64
        };
        let filtered = on_time(&eligible);
        let unfiltered = on_time(&all);
        // Silence unused warning for estimated_rate by reporting pool rate spread.
        let _ = estimated_rate(&platform, all[0], &cfg);
        row(&[
            format!("{deadline:.0}"),
            format!("{}/{}", eligible.len(), all.len()),
            format!("{:.1}%", 100.0 * filtered),
            format!("{:.1}%", 100.0 * unfiltered),
        ]);
    }
}
