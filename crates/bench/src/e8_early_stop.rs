//! E8 — early stop: answers collected vs verdict accuracy.
//!
//! Paper hook: §II-B2 — "return the result to the user as early as
//! possible when the confidence is high enough". Expected shape: lower
//! η_stop collects fewer answers at some accuracy cost; higher η_stop
//! converges to asking everyone.

use crate::common::{header, row};
use cp_core::{Config, Resolution};
use cp_traj::TimeOfDay;
use crowdplanner::sim::{Scale, SimWorld};

/// Runs E8.
pub fn run(fast: bool) {
    let world = SimWorld::build(Scale::Medium, 29).expect("world");
    let n_req = if fast { 25 } else { 70 };
    let requests = world.request_stream(n_req, 6, 71);
    let thresholds = if fast {
        vec![0.5, 0.9]
    } else {
        vec![0.45, 0.55, 0.65, 0.75, 0.85, 0.95]
    };
    header(
        "E8: early stop threshold sweep (crowd-forced requests)",
        &[
            "eta_stop",
            "crowd verdicts",
            "answers/task",
            "questions/task",
            "verdict accuracy",
        ],
    );
    for eta in thresholds {
        // Force every contested request to the crowd: no machine shortcuts.
        let cfg = Config {
            eta_stop: eta,
            agreement_similarity: 1.0,
            agreement_quorum: 1.0,
            eta_confidence: 1.0,
            reuse_radius: 0.0,
            ..Config::default()
        };
        let desk = world.shared_crowd(200, 30, 29, cfg.eta_quota);
        let mut planner = world.owned_planner(desk, cfg).expect("planner");
        let (mut verdicts, mut correct, mut answers) = (0usize, 0usize, 0usize);
        for &(a, b) in &requests {
            let oracle = world.oracle(a, b).expect("oracle");
            let rec = planner
                .handle_request(a, b, TimeOfDay::from_hours(8.0), &oracle)
                .expect("request");
            if rec.resolution == Resolution::Crowd {
                verdicts += 1;
                answers += rec.workers_asked;
                if world.is_best(&rec.path) {
                    correct += 1;
                }
            }
        }
        let s = planner.stats();
        row(&[
            format!("{eta:.2}"),
            format!("{verdicts}"),
            format!("{:.2}", answers as f64 / verdicts.max(1) as f64),
            format!(
                "{:.2}",
                s.total_questions as f64 / s.crowd_attempts.max(1) as f64
            ),
            format!("{:.1}%", 100.0 * correct as f64 / verdicts.max(1) as f64),
        ]);
    }
}
