//! # cp-traj — trajectory substrate for CrowdPlanner
//!
//! Provides the data the paper mined from the real world, synthesised with
//! controlled ground truth:
//!
//! * [`preference`] — the latent driver-utility model; the population
//!   consensus defines the ground-truth "best route" per OD pair;
//! * [`generator`] — driver population + trip histories (the stand-in for
//!   the paper's "large-scale real trajectory dataset");
//! * [`trajectory`] — trips and GPS-like point traces;
//! * [`calibration`] — anchor-based calibration of routes/trajectories
//!   into landmark-based routes (paper ref \[21\]);
//! * [`checkin`] — synthetic LBSN check-ins;
//! * [`significance`] — HITS-like landmark-significance inference
//!   (paper §III-A, ref \[26\]);
//! * [`stats`] — small deterministic samplers shared by generators.

#![warn(missing_docs)]

pub mod calibration;
pub mod checkin;
pub mod generator;
pub mod preference;
pub mod significance;
pub mod stats;
pub mod trajectory;

pub use calibration::{calibrate_path, calibrate_trajectory, CalibrationParams};
pub use checkin::{generate_checkins, CheckIn, CheckInGenParams, UserId};
pub use generator::{generate_trips, Driver, TripDataset, TripGenParams};
pub use preference::DriverPreference;
pub use significance::{infer_significance, significance_from_visits, SignificanceParams, Visit};
pub use trajectory::{DriverId, TimeOfDay, Trajectory, Trip};
