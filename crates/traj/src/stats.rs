//! Small statistical helpers shared by the synthetic generators.
//!
//! `rand` is kept dependency-light (no `rand_distr`), so the couple of
//! non-uniform distributions we need are implemented here.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Standard normal sample via the Box–Muller transform.
pub fn randn(rng: &mut SmallRng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn randn_scaled(rng: &mut SmallRng, mean: f64, std: f64) -> f64 {
    mean + std * randn(rng)
}

/// Exponential sample with rate `lambda` (mean `1/lambda`).
pub fn rand_exp(rng: &mut SmallRng, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Samples an index in `0..weights.len()` with probability proportional to
/// `weights[i]`. Returns `None` for an empty or all-zero weight vector.
pub fn weighted_index(rng: &mut SmallRng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if weights.is_empty() || total.is_nan() || total <= 0.0 {
        return None;
    }
    let mut target = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Probability density of the normal distribution `N(mu, sigma^2)` at `x`.
/// Used by the Gaussian landmark-knowledge accumulation (paper §IV-B).
pub fn normal_pdf(x: f64, mu: f64, sigma: f64) -> f64 {
    let z = (x - mu) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn rand_exp_mean_matches_rate() {
        let mut r = rng();
        let lambda = 0.5;
        let n = 20_000;
        let mean = (0..n).map(|_| rand_exp(&mut r, lambda)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut r, &w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_inputs() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 5.0]), Some(1));
    }

    #[test]
    fn normal_pdf_peaks_at_mean() {
        let at_mean = normal_pdf(0.0, 0.0, 2.0);
        assert!(at_mean > normal_pdf(1.0, 0.0, 2.0));
        assert!(normal_pdf(1.0, 0.0, 2.0) > normal_pdf(4.0, 0.0, 2.0));
        // Symmetric.
        assert!((normal_pdf(1.5, 0.0, 2.0) - normal_pdf(-1.5, 0.0, 2.0)).abs() < 1e-12);
    }
}
