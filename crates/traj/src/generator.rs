//! Synthetic driver population and trip-history generator.
//!
//! This is the substitute for the paper's "large-scale real trajectory
//! dataset": a population of drivers, each with a home, a workplace, a
//! latent preference (consensus + individual noise), who drive commute and
//! errand trips. The trips they actually drive are the preferred routes
//! under their *individual* preference — so popular-route mining over the
//! dataset recovers (approximately) the consensus route, exactly the
//! structure the paper's evaluation relies on.

use crate::preference::DriverPreference;
use crate::stats::{randn_scaled, weighted_index};
use crate::trajectory::{DriverId, TimeOfDay, Trip};
use cp_roadnet::{NodeId, RoadGraph, RoadNetError};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A synthetic driver.
#[derive(Debug, Clone)]
pub struct Driver {
    /// Identifier (dense).
    pub id: DriverId,
    /// Home intersection.
    pub home: NodeId,
    /// Workplace intersection.
    pub work: NodeId,
    /// The driver's latent route preference.
    pub preference: DriverPreference,
}

/// Parameters of the trip-history generator.
#[derive(Debug, Clone)]
pub struct TripGenParams {
    /// Number of drivers.
    pub drivers: usize,
    /// Trips per driver.
    pub trips_per_driver: usize,
    /// Preference heterogeneity across drivers (0 = identical).
    pub heterogeneity: f64,
    /// Fraction of trips that are home↔work commutes (the rest are random
    /// errands).
    pub commute_fraction: f64,
    /// Number of "hotspot" destinations that attract errand traffic.
    pub hotspots: usize,
    /// Std-dev of departure time around the morning/evening peaks, hours.
    pub peak_spread_h: f64,
}

impl Default for TripGenParams {
    fn default() -> Self {
        TripGenParams {
            drivers: 200,
            trips_per_driver: 10,
            heterogeneity: 0.25,
            commute_fraction: 0.6,
            hotspots: 6,
            peak_spread_h: 1.0,
        }
    }
}

/// The generated history: population + trips.
#[derive(Debug, Clone)]
pub struct TripDataset {
    /// All drivers, indexed by [`DriverId`].
    pub drivers: Vec<Driver>,
    /// All recorded trips.
    pub trips: Vec<Trip>,
    /// The hotspot nodes used for errand destinations.
    pub hotspots: Vec<NodeId>,
}

impl TripDataset {
    /// Trips of one driver.
    pub fn trips_of(&self, d: DriverId) -> impl Iterator<Item = &Trip> {
        self.trips.iter().filter(move |t| t.driver == d)
    }
}

/// Generates a deterministic trip history over `graph`.
pub fn generate_trips(
    graph: &RoadGraph,
    params: &TripGenParams,
    seed: u64,
) -> Result<TripDataset, RoadNetError> {
    if params.drivers == 0 {
        return Err(RoadNetError::InvalidParameter("drivers must be >= 1"));
    }
    if !(0.0..=1.0).contains(&params.commute_fraction) {
        return Err(RoadNetError::InvalidParameter(
            "commute_fraction must be in [0,1]",
        ));
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
    let n = graph.node_count() as u32;
    if n < 4 {
        return Err(RoadNetError::InvalidParameter("graph too small"));
    }

    // Hotspots: a few nodes that attract errand traffic, with popularity
    // weights so some hotspots dominate (realistic demand skew).
    let hotspots: Vec<NodeId> = (0..params.hotspots)
        .map(|_| NodeId(rng.random_range(0..n)))
        .collect();
    let hotspot_weights: Vec<f64> = (0..params.hotspots)
        .map(|i| 1.0 / (i as f64 + 1.0))
        .collect();

    let mut drivers = Vec::with_capacity(params.drivers);
    for i in 0..params.drivers {
        let home = NodeId(rng.random_range(0..n));
        let mut work = NodeId(rng.random_range(0..n));
        while work == home {
            work = NodeId(rng.random_range(0..n));
        }
        drivers.push(Driver {
            id: DriverId(i as u32),
            home,
            work,
            preference: DriverPreference::sample_individual(&mut rng, params.heterogeneity),
        });
    }

    let mut trips = Vec::with_capacity(params.drivers * params.trips_per_driver);
    for driver in &drivers {
        for t in 0..params.trips_per_driver {
            let commute = rng.random_bool(params.commute_fraction);
            let (from, to, peak_h) = if commute {
                if t % 2 == 0 {
                    (driver.home, driver.work, 8.0)
                } else {
                    (driver.work, driver.home, 18.0)
                }
            } else {
                let from = if rng.random_bool(0.5) {
                    driver.home
                } else {
                    driver.work
                };
                let to = if !hotspots.is_empty() && rng.random_bool(0.7) {
                    hotspots[weighted_index(&mut rng, &hotspot_weights)
                        .expect("non-empty positive weights")]
                } else {
                    NodeId(rng.random_range(0..n))
                };
                (from, to, 13.0)
            };
            if from == to {
                continue;
            }
            let Ok(path) = driver.preference.preferred_route(graph, from, to) else {
                continue; // unreachable OD in degenerate graphs
            };
            let departure =
                TimeOfDay::new(randn_scaled(&mut rng, peak_h, params.peak_spread_h) * 3600.0);
            trips.push(Trip {
                driver: driver.id,
                path,
                departure,
            });
        }
    }
    Ok(TripDataset {
        drivers,
        trips,
        hotspots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};

    fn dataset() -> (cp_roadnet::City, TripDataset) {
        let city = generate_city(&CityParams::small(), 3).unwrap();
        let ds = generate_trips(&city.graph, &TripGenParams::default(), 3).unwrap();
        (city, ds)
    }

    #[test]
    fn generates_population_and_trips() {
        let (_, ds) = dataset();
        assert_eq!(ds.drivers.len(), 200);
        // Some trips skipped (from==to), but the bulk must exist.
        assert!(ds.trips.len() > 1500, "got {}", ds.trips.len());
    }

    #[test]
    fn trips_follow_driver_preference() {
        let (city, ds) = dataset();
        // Each trip's path must be exactly the driver's preferred route for
        // its endpoints.
        for trip in ds.trips.iter().take(50) {
            let d = &ds.drivers[trip.driver.index()];
            let expect = d
                .preference
                .preferred_route(&city.graph, trip.path.source(), trip.path.destination())
                .unwrap();
            assert_eq!(&expect, &trip.path);
        }
    }

    #[test]
    fn commute_departures_cluster_around_peaks() {
        let (_, ds) = dataset();
        let morning = ds
            .trips
            .iter()
            .filter(|t| (6..=10).contains(&t.departure.hour()))
            .count();
        let night = ds
            .trips
            .iter()
            .filter(|t| (0..=4).contains(&t.departure.hour()))
            .count();
        assert!(morning > night, "morning {morning} night {night}");
    }

    #[test]
    fn deterministic_in_seed() {
        let city = generate_city(&CityParams::small(), 3).unwrap();
        let a = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let b = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        assert_eq!(a.trips.len(), b.trips.len());
        for (x, y) in a.trips.iter().zip(b.trips.iter()) {
            assert_eq!(x.driver, y.driver);
            assert_eq!(x.path, y.path);
            assert_eq!(x.departure.0, y.departure.0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let city = generate_city(&CityParams::small(), 3).unwrap();
        let mut p = TripGenParams::default();
        p.drivers = 0;
        assert!(generate_trips(&city.graph, &p, 0).is_err());
        let mut p = TripGenParams::default();
        p.commute_fraction = 1.5;
        assert!(generate_trips(&city.graph, &p, 0).is_err());
    }

    #[test]
    fn trips_of_filters_by_driver() {
        let (_, ds) = dataset();
        let d = DriverId(0);
        assert!(ds.trips_of(d).all(|t| t.driver == d));
        assert!(ds.trips_of(d).count() > 0);
    }
}
