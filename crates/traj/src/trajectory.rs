//! Trajectory and trip types.
//!
//! A [`Trip`] is one recorded journey of one driver: the route they actually
//! drove (the "route trace", an edge path) plus the departure time. A
//! [`Trajectory`] is the GPS-like point sequence sampled along the trip —
//! the raw form that real datasets provide and that calibration consumes.

use cp_roadnet::{Path, Point, RoadGraph};

/// Identifier of a synthetic driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriverId(pub u32);

impl DriverId {
    /// The driver id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Seconds since midnight, wrapped into `[0, 86400)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TimeOfDay(pub f64);

impl TimeOfDay {
    /// Seconds in a day.
    pub const DAY: f64 = 86_400.0;

    /// Construct from seconds, wrapping into range.
    pub fn new(seconds: f64) -> Self {
        TimeOfDay(seconds.rem_euclid(Self::DAY))
    }

    /// Construct from hours (e.g. `8.5` = 08:30).
    pub fn from_hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// Hour-of-day as an integer in `[0, 24)`.
    pub fn hour(&self) -> usize {
        ((self.0 / 3600.0) as usize).min(23)
    }

    /// Circular distance to another time of day, in seconds (≤ 12 h).
    pub fn circular_distance(&self, other: TimeOfDay) -> f64 {
        let d = (self.0 - other.0).abs();
        d.min(Self::DAY - d)
    }
}

/// One recorded journey: the driven route + departure time.
#[derive(Debug, Clone)]
pub struct Trip {
    /// Who drove it.
    pub driver: DriverId,
    /// The driven route.
    pub path: Path,
    /// When the trip started.
    pub departure: TimeOfDay,
}

/// A timestamped point sequence, as a GPS logger would record.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// `(position, seconds since departure)` samples in time order.
    pub points: Vec<(Point, f64)>,
}

impl Trajectory {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Samples a trajectory along `path` at `interval` seconds between
    /// fixes, assuming free-flow speeds, with `noise` metres of uniform GPS
    /// error supplied by `jitter` (a closure so the caller controls the
    /// RNG).
    pub fn sample_along(
        graph: &RoadGraph,
        path: &Path,
        interval: f64,
        mut jitter: impl FnMut() -> (f64, f64),
    ) -> Trajectory {
        assert!(interval > 0.0, "sampling interval must be positive");
        let mut points = Vec::new();
        let mut clock = 0.0; // seconds since departure
        let mut next_fix = 0.0;
        for &e in path.edges() {
            let edge = graph.edge(e);
            let a = graph.position(edge.from);
            let b = graph.position(edge.to);
            let dur = edge.travel_time();
            // Emit all fixes that fall within this edge's traversal.
            while next_fix <= clock + dur {
                let t = ((next_fix - clock) / dur).clamp(0.0, 1.0);
                let (jx, jy) = jitter();
                points.push((a.lerp(&b, t).translate(jx, jy), next_fix));
                next_fix += interval;
            }
            clock += dur;
        }
        // Always include the arrival point.
        if let Some(&last_edge) = path.edges().last() {
            let end = graph.position(graph.edge(last_edge).to);
            let (jx, jy) = jitter();
            points.push((end.translate(jx, jy), clock));
        }
        Trajectory { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{dijkstra_path, distance_cost};
    use cp_roadnet::{generate_city, CityParams, NodeId};

    #[test]
    fn time_of_day_wraps() {
        assert_eq!(TimeOfDay::new(-3600.0).0, 82_800.0);
        assert_eq!(TimeOfDay::new(86_400.0).0, 0.0);
        assert_eq!(TimeOfDay::from_hours(25.0).hour(), 1);
    }

    #[test]
    fn circular_distance_is_symmetric_and_bounded() {
        let a = TimeOfDay::from_hours(23.0);
        let b = TimeOfDay::from_hours(1.0);
        assert_eq!(a.circular_distance(b), 2.0 * 3600.0);
        assert_eq!(b.circular_distance(a), 2.0 * 3600.0);
        let c = TimeOfDay::from_hours(11.0);
        let d = TimeOfDay::from_hours(23.0);
        assert_eq!(c.circular_distance(d), 12.0 * 3600.0);
    }

    #[test]
    fn sampling_covers_whole_route_in_time_order() {
        let city = generate_city(&CityParams::small(), 2).unwrap();
        let g = &city.graph;
        let path = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let traj = Trajectory::sample_along(g, &path, 5.0, || (0.0, 0.0));
        assert!(traj.len() >= 2);
        // Time-ordered.
        for w in traj.points.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // First fix at the source, last at the destination (no noise).
        assert!(traj.points[0].0.distance(&g.position(NodeId(0))) < 1e-9);
        assert!(
            traj.points
                .last()
                .unwrap()
                .0
                .distance(&g.position(NodeId(59)))
                < 1e-9
        );
        // Total duration matches the path's travel time.
        assert!((traj.points.last().unwrap().1 - path.travel_time(g)).abs() < 1e-9);
    }

    #[test]
    fn noise_is_applied() {
        let city = generate_city(&CityParams::small(), 2).unwrap();
        let g = &city.graph;
        let path = dijkstra_path(g, NodeId(0), NodeId(9), distance_cost(g)).unwrap();
        let clean = Trajectory::sample_along(g, &path, 10.0, || (0.0, 0.0));
        let noisy = Trajectory::sample_along(g, &path, 10.0, || (5.0, -5.0));
        assert_eq!(clean.len(), noisy.len());
        for (c, n) in clean.points.iter().zip(noisy.points.iter()) {
            assert!((n.0.x - c.0.x - 5.0).abs() < 1e-9);
            assert!((n.0.y - c.0.y + 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn denser_interval_gives_more_points() {
        let city = generate_city(&CityParams::small(), 2).unwrap();
        let g = &city.graph;
        let path = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let sparse = Trajectory::sample_along(g, &path, 30.0, || (0.0, 0.0));
        let dense = Trajectory::sample_along(g, &path, 3.0, || (0.0, 0.0));
        assert!(dense.len() > sparse.len());
    }
}
