//! HITS-like landmark-significance inference (paper §III-A, reference \[26\]).
//!
//! "By regarding the travellers as authorities, landmarks as hubs, and
//! check-ins/visits as hyperlinks, we can leverage a HITS-like algorithm to
//! infer the significance of a landmark." We build the bipartite
//! user↔landmark visit graph from two sources — LBSN check-ins and
//! calibrated taxi/driver trips — and run the mutual-reinforcement
//! iteration until convergence. The significance of a landmark is its
//! normalised score in `[0, 1]`.

use crate::calibration::{calibrate_path, CalibrationParams};
use crate::checkin::CheckIn;
use crate::generator::TripDataset;
use cp_roadnet::{LandmarkId, LandmarkSet, RoadGraph};

/// A visit edge in the bipartite user/landmark graph. Users from different
/// sources (LBSN users vs drivers) are kept in disjoint id spaces by the
/// caller.
#[derive(Debug, Clone, Copy)]
pub struct Visit {
    /// Dense visitor index.
    pub visitor: u32,
    /// Visited landmark.
    pub landmark: LandmarkId,
}

/// Options of the significance computation.
#[derive(Debug, Clone)]
pub struct SignificanceParams {
    /// Maximum HITS iterations.
    pub max_iters: usize,
    /// L2-change convergence tolerance.
    pub tolerance: f64,
}

impl Default for SignificanceParams {
    fn default() -> Self {
        SignificanceParams {
            max_iters: 100,
            tolerance: 1e-9,
        }
    }
}

/// Runs the HITS-like mutual reinforcement over visit edges and returns a
/// significance score per landmark, max-normalised into `[0, 1]`.
///
/// Landmarks that were never visited get score 0.
pub fn significance_from_visits(
    visits: &[Visit],
    landmark_count: usize,
    params: &SignificanceParams,
) -> Vec<f64> {
    if landmark_count == 0 {
        return Vec::new();
    }
    let visitor_count = visits
        .iter()
        .map(|v| v.visitor as usize + 1)
        .max()
        .unwrap_or(0);
    if visitor_count == 0 || visits.is_empty() {
        return vec![0.0; landmark_count];
    }
    // Deduplicate multi-visits into weighted edges: repeat visits reinforce.
    let mut weights: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    for v in visits {
        *weights.entry((v.visitor, v.landmark.0)).or_insert(0.0) += 1.0;
    }
    let edges: Vec<(u32, u32, f64)> = {
        let mut e: Vec<_> = weights.into_iter().map(|((u, l), w)| (u, l, w)).collect();
        e.sort_unstable_by_key(|&(u, l, _)| (u, l));
        e
    };

    let mut hub = vec![1.0f64; visitor_count]; // travellers
    let mut auth = vec![1.0f64; landmark_count]; // landmarks
    for _ in 0..params.max_iters {
        // auth(l) = Σ_{(u,l)} w * hub(u)
        let mut new_auth = vec![0.0; landmark_count];
        for &(u, l, w) in &edges {
            new_auth[l as usize] += w * hub[u as usize];
        }
        normalize(&mut new_auth);
        // hub(u) = Σ_{(u,l)} w * auth(l)
        let mut new_hub = vec![0.0; visitor_count];
        for &(u, l, w) in &edges {
            new_hub[u as usize] += w * new_auth[l as usize];
        }
        normalize(&mut new_hub);
        let delta: f64 = new_auth
            .iter()
            .zip(auth.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        auth = new_auth;
        hub = new_hub;
        if delta < params.tolerance {
            break;
        }
    }
    // Max-normalise into [0,1] so scores behave like the paper's `l.s`.
    let max = auth.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for a in &mut auth {
            *a /= max;
        }
    }
    auth
}

/// Builds the visit list from check-ins and calibrated driver trips, then
/// infers significance. This is the paper's full §III-A pipeline.
pub fn infer_significance(
    graph: &RoadGraph,
    landmarks: &LandmarkSet,
    checkins: &[CheckIn],
    trips: &TripDataset,
    calibration: &CalibrationParams,
    params: &SignificanceParams,
) -> Vec<f64> {
    let mut visits: Vec<Visit> = Vec::with_capacity(checkins.len());
    let mut max_user = 0u32;
    for c in checkins {
        max_user = max_user.max(c.user.0);
        visits.push(Visit {
            visitor: c.user.0,
            landmark: c.landmark,
        });
    }
    // Drivers occupy the id space after LBSN users.
    let driver_base = if checkins.is_empty() { 0 } else { max_user + 1 };
    for trip in &trips.trips {
        for lm in calibrate_path(graph, landmarks, &trip.path, calibration) {
            visits.push(Visit {
                visitor: driver_base + trip.driver.0,
                landmark: lm,
            });
        }
    }
    significance_from_visits(&visits, landmarks.len(), params)
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkin::{generate_checkins, CheckInGenParams};
    use crate::generator::{generate_trips, TripGenParams};
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    #[test]
    fn empty_visits_give_zero_scores() {
        let s = significance_from_visits(&[], 5, &SignificanceParams::default());
        assert_eq!(s, vec![0.0; 5]);
        assert!(significance_from_visits(&[], 0, &SignificanceParams::default()).is_empty());
    }

    #[test]
    fn single_landmark_gets_full_score() {
        let visits = vec![
            Visit {
                visitor: 0,
                landmark: LandmarkId(0),
            },
            Visit {
                visitor: 1,
                landmark: LandmarkId(0),
            },
        ];
        let s = significance_from_visits(&visits, 2, &SignificanceParams::default());
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn more_visited_landmark_scores_higher() {
        // Landmark 0 visited by 5 users, landmark 1 by 1 user.
        let mut visits = Vec::new();
        for u in 0..5 {
            visits.push(Visit {
                visitor: u,
                landmark: LandmarkId(0),
            });
        }
        visits.push(Visit {
            visitor: 5,
            landmark: LandmarkId(1),
        });
        let s = significance_from_visits(&visits, 2, &SignificanceParams::default());
        assert!(s[0] > s[1]);
        assert!((s[0] - 1.0).abs() < 1e-12, "max-normalised");
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let visits: Vec<Visit> = (0..50)
            .map(|i| Visit {
                visitor: i % 7,
                landmark: LandmarkId(i % 13),
            })
            .collect();
        let s = significance_from_visits(&visits, 13, &SignificanceParams::default());
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(s.contains(&1.0));
    }

    #[test]
    fn full_pipeline_recovers_fame_ordering() {
        // Significance inferred from synthetic visits must correlate with
        // the latent fame that drove the check-in generator: the top-decile
        // famous landmarks should clearly out-score the bottom decile.
        let city = generate_city(&CityParams::small(), 14).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 14);
        let cis = generate_checkins(&city.graph, &lms, &CheckInGenParams::default(), 14);
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 14).unwrap();
        let s = infer_significance(
            &city.graph,
            &lms,
            &cis,
            &trips,
            &CalibrationParams::default(),
            &SignificanceParams::default(),
        );
        assert_eq!(s.len(), lms.len());
        let mut by_fame: Vec<(f64, f64)> = lms
            .iter()
            .map(|l| (l.latent_fame, s[l.id.index()]))
            .collect();
        by_fame.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let d = by_fame.len() / 10;
        let top: f64 = by_fame[..d].iter().map(|x| x.1).sum::<f64>() / d as f64;
        let bot: f64 = by_fame[by_fame.len() - d..]
            .iter()
            .map(|x| x.1)
            .sum::<f64>()
            / d as f64;
        assert!(
            top > bot,
            "significance should track fame: top {top:.4} bottom {bot:.4}"
        );
    }

    #[test]
    fn deterministic() {
        let visits: Vec<Visit> = (0..30)
            .map(|i| Visit {
                visitor: i % 5,
                landmark: LandmarkId(i % 9),
            })
            .collect();
        let a = significance_from_visits(&visits, 9, &SignificanceParams::default());
        let b = significance_from_visits(&visits, 9, &SignificanceParams::default());
        assert_eq!(a, b);
    }
}
