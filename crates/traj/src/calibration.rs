//! Anchor-based trajectory calibration (paper reference \[21\]).
//!
//! The paper rewrites continuous routes into landmark-based routes "by
//! treating landmarks as anchor points". We reproduce that: a route (or a
//! raw trajectory) is calibrated to the sequence of landmarks that lie
//! within an anchor radius of the travelled geometry, ordered by the
//! position along the route at which they are first approached, and
//! de-duplicated.

use crate::trajectory::Trajectory;
use cp_roadnet::{LandmarkId, LandmarkSet, Path, Point, RoadGraph};

/// Calibration parameters.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationParams {
    /// A landmark anchors a route point when it lies within this many
    /// metres of it.
    pub anchor_radius: f64,
}

impl Default for CalibrationParams {
    fn default() -> Self {
        CalibrationParams {
            anchor_radius: 150.0,
        }
    }
}

/// Calibrates a node path into a landmark-based route.
///
/// For every intersection along the path (in travel order), landmarks
/// within `anchor_radius` are appended, nearest first; duplicates keep
/// their first (earliest) occurrence. The result is the paper's
/// "landmark-based route" `R̄ = {l1, l2, …, ln}` (Definition 3).
pub fn calibrate_path(
    graph: &RoadGraph,
    landmarks: &LandmarkSet,
    path: &Path,
    params: &CalibrationParams,
) -> Vec<LandmarkId> {
    let points: Vec<Point> = path.nodes().iter().map(|&n| graph.position(n)).collect();
    calibrate_points(&points, landmarks, params)
}

/// Calibrates a raw point sequence (e.g. a noisy GPS trajectory).
pub fn calibrate_trajectory(
    trajectory: &Trajectory,
    landmarks: &LandmarkSet,
    params: &CalibrationParams,
) -> Vec<LandmarkId> {
    let points: Vec<Point> = trajectory.points.iter().map(|&(p, _)| p).collect();
    calibrate_points(&points, landmarks, params)
}

fn calibrate_points(
    points: &[Point],
    landmarks: &LandmarkSet,
    params: &CalibrationParams,
) -> Vec<LandmarkId> {
    let mut seen = vec![false; landmarks.len()];
    let mut out = Vec::new();
    for p in points {
        let mut near = landmarks.within_radius(p, params.anchor_radius);
        // Nearest-first within one point's neighbourhood so the sequence
        // order is stable and travel-faithful.
        near.sort_by(|&a, &b| {
            let da = landmarks.get(a).position.distance_sq(p);
            let db = landmarks.get(b).position.distance_sq(p);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for id in near {
            if !seen[id.index()] {
                seen[id.index()] = true;
                out.push(id);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{dijkstra_path, distance_cost};
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams, NodeId};

    fn setup() -> (cp_roadnet::City, LandmarkSet) {
        let city = generate_city(&CityParams::small(), 8).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 8);
        (city, lms)
    }

    #[test]
    fn calibrated_route_is_duplicate_free() {
        let (city, lms) = setup();
        let g = &city.graph;
        let path = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let seq = calibrate_path(g, &lms, &path, &CalibrationParams::default());
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seq.len(), "duplicates present");
        assert!(!seq.is_empty(), "a cross-city route must pass landmarks");
    }

    #[test]
    fn all_calibrated_landmarks_are_near_the_route() {
        let (city, lms) = setup();
        let g = &city.graph;
        let params = CalibrationParams::default();
        let path = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let seq = calibrate_path(g, &lms, &path, &params);
        for id in seq {
            let lp = lms.get(id).position;
            let min_d = path
                .nodes()
                .iter()
                .map(|&n| g.position(n).distance(&lp))
                .fold(f64::INFINITY, f64::min);
            assert!(min_d <= params.anchor_radius + 1e-9);
        }
    }

    #[test]
    fn zero_radius_yields_empty_sequence() {
        let (city, lms) = setup();
        let g = &city.graph;
        let path = dijkstra_path(g, NodeId(0), NodeId(9), distance_cost(g)).unwrap();
        let seq = calibrate_path(g, &lms, &path, &CalibrationParams { anchor_radius: 0.0 });
        assert!(seq.is_empty());
    }

    #[test]
    fn wider_radius_captures_at_least_as_many() {
        let (city, lms) = setup();
        let g = &city.graph;
        let path = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let narrow = calibrate_path(
            g,
            &lms,
            &path,
            &CalibrationParams {
                anchor_radius: 80.0,
            },
        );
        let wide = calibrate_path(
            g,
            &lms,
            &path,
            &CalibrationParams {
                anchor_radius: 300.0,
            },
        );
        assert!(wide.len() >= narrow.len());
        // Narrow result is a subset of the wide result.
        for id in &narrow {
            assert!(wide.contains(id));
        }
    }

    #[test]
    fn trajectory_calibration_approximates_path_calibration() {
        let (city, lms) = setup();
        let g = &city.graph;
        let params = CalibrationParams::default();
        let path = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let from_path = calibrate_path(g, &lms, &path, &params);
        let traj = Trajectory::sample_along(g, &path, 5.0, || (0.0, 0.0));
        let from_traj = calibrate_trajectory(&traj, &lms, &params);
        // Noise-free densely-sampled trajectory covers at least the node
        // anchors (it may catch extra landmarks between intersections).
        for id in &from_path {
            assert!(from_traj.contains(id), "missing {id:?}");
        }
    }

    #[test]
    fn different_routes_calibrate_differently() {
        let (city, lms) = setup();
        let g = &city.graph;
        let params = CalibrationParams {
            anchor_radius: 120.0,
        };
        // Opposite corners via different waypoints.
        let p1 = dijkstra_path(g, NodeId(0), NodeId(59), distance_cost(g)).unwrap();
        let p2 = {
            // Force a different route: 0 -> 50 -> 59 (via far corner).
            let a = dijkstra_path(g, NodeId(0), NodeId(50), distance_cost(g)).unwrap();
            let b = dijkstra_path(g, NodeId(50), NodeId(59), distance_cost(g)).unwrap();
            let mut edges = a.edges().to_vec();
            edges.extend_from_slice(b.edges());
            Path::from_edges(g, edges).unwrap()
        };
        let s1 = calibrate_path(g, &lms, &p1, &params);
        let s2 = calibrate_path(g, &lms, &p2, &params);
        assert_ne!(s1, s2);
    }
}
