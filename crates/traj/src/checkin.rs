//! Synthetic LBSN check-in generator.
//!
//! The paper infers landmark significance from "online check-in records in
//! a popular location-based social network" plus taxi visits. This module
//! generates the check-in side: a population of LBSN users who check in at
//! landmarks with probability proportional to the landmark's *latent fame*
//! modulated by each user's category taste and spatial home bias. The
//! HITS-like inference in [`crate::significance`] then recovers
//! significance from these observations — it never sees the latent fame
//! directly.

use crate::stats::weighted_index;
use crate::trajectory::TimeOfDay;
use cp_roadnet::{LandmarkCategory, LandmarkId, LandmarkSet, Point, RoadGraph};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Identifier of an LBSN user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// One check-in event.
#[derive(Debug, Clone, Copy)]
pub struct CheckIn {
    /// Who checked in.
    pub user: UserId,
    /// Where.
    pub landmark: LandmarkId,
    /// When (time of day).
    pub time: TimeOfDay,
}

/// Parameters of the check-in generator.
#[derive(Debug, Clone)]
pub struct CheckInGenParams {
    /// Number of LBSN users.
    pub users: usize,
    /// Mean check-ins per user (activity is skewed, some users post a lot).
    pub mean_checkins: usize,
    /// Strength of each user's home-location bias: contribution of distance
    /// decay `exp(-d/spatial_scale)` to check-in choice, metres.
    pub spatial_scale: f64,
}

impl Default for CheckInGenParams {
    fn default() -> Self {
        CheckInGenParams {
            users: 150,
            mean_checkins: 20,
            spatial_scale: 2500.0,
        }
    }
}

/// Generates a deterministic check-in history.
pub fn generate_checkins(
    graph: &RoadGraph,
    landmarks: &LandmarkSet,
    params: &CheckInGenParams,
    seed: u64,
) -> Vec<CheckIn> {
    if landmarks.is_empty() || params.users == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545_F491_4F6C_DD1D);
    let bbox = graph.bounding_box();
    let mut out = Vec::new();
    for u in 0..params.users {
        // User home: uniform in the city.
        let home = Point::new(
            rng.random_range(bbox.min.x..=bbox.max.x),
            rng.random_range(bbox.min.y..=bbox.max.y),
        );
        // Category taste: a preferred category gets 3x weight.
        let fav = LandmarkCategory::ALL[rng.random_range(0..LandmarkCategory::ALL.len())];
        // Activity: heavy-tailed around the mean.
        let count = (params.mean_checkins as f64 * rng.random_range(0.2..2.5)).round() as usize;
        // Per-user check-in weights over landmarks.
        let weights: Vec<f64> = landmarks
            .iter()
            .map(|l| {
                let taste = if l.category == fav { 3.0 } else { 1.0 };
                let spatial = (-l.position.distance(&home) / params.spatial_scale).exp();
                l.latent_fame * taste * (0.3 + 0.7 * spatial)
            })
            .collect();
        for _ in 0..count {
            if let Some(i) = weighted_index(&mut rng, &weights) {
                out.push(CheckIn {
                    user: UserId(u as u32),
                    landmark: LandmarkId(i as u32),
                    time: TimeOfDay::new(rng.random_range(0.0..TimeOfDay::DAY)),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};

    fn setup() -> (cp_roadnet::City, LandmarkSet, Vec<CheckIn>) {
        let city = generate_city(&CityParams::small(), 5).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 5);
        let cis = generate_checkins(&city.graph, &lms, &CheckInGenParams::default(), 5);
        (city, lms, cis)
    }

    #[test]
    fn generates_checkins_for_all_users() {
        let (_, _, cis) = setup();
        assert!(!cis.is_empty());
        let users: std::collections::HashSet<u32> = cis.iter().map(|c| c.user.0).collect();
        assert!(users.len() > 100, "most users should check in");
    }

    #[test]
    fn famous_landmarks_attract_more_checkins() {
        let (_, lms, cis) = setup();
        let mut counts = vec![0usize; lms.len()];
        for c in &cis {
            counts[c.landmark.index()] += 1;
        }
        // Compare mean check-ins of the top fame quartile vs bottom quartile.
        let mut by_fame: Vec<(f64, usize)> = lms
            .iter()
            .map(|l| (l.latent_fame, counts[l.id.index()]))
            .collect();
        by_fame.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let q = by_fame.len() / 4;
        let top: f64 = by_fame[..q].iter().map(|x| x.1 as f64).sum::<f64>() / q as f64;
        let bot: f64 = by_fame[by_fame.len() - q..]
            .iter()
            .map(|x| x.1 as f64)
            .sum::<f64>()
            / q as f64;
        assert!(top > bot, "top quartile {top} vs bottom {bot}");
    }

    #[test]
    fn deterministic_in_seed() {
        let city = generate_city(&CityParams::small(), 5).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 5);
        let a = generate_checkins(&city.graph, &lms, &CheckInGenParams::default(), 9);
        let b = generate_checkins(&city.graph, &lms, &CheckInGenParams::default(), 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.landmark, y.landmark);
        }
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let city = generate_city(&CityParams::small(), 5).unwrap();
        let empty = LandmarkSet::new(Vec::new(), 100.0);
        assert!(generate_checkins(&city.graph, &empty, &CheckInGenParams::default(), 1).is_empty());
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 5);
        let mut p = CheckInGenParams::default();
        p.users = 0;
        assert!(generate_checkins(&city.graph, &lms, &p, 1).is_empty());
    }
}
