//! Latent driver-preference model.
//!
//! The paper's core observation is that "drivers' preferences are influenced
//! by lots of factors in addition to distance and time, such as the number
//! of traffic lights, speed limitation, road condition, …" and that the
//! *driver's preference is the ultimate criterion* for route quality. To
//! reproduce experiments without real drivers we make that latent utility
//! explicit: each synthetic driver scores a road segment by a weighted
//! combination of travel time, distance, traffic lights, and road class.
//! The *consensus* profile (population mean) defines the ground-truth "best"
//! route for every OD pair, which is what accuracy is measured against.

use cp_roadnet::routing::dijkstra_path;
use cp_roadnet::{EdgeId, NodeId, Path, RoadClass, RoadGraph, RoadNetError};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A driver's latent utility weights. All weights are non-negative; larger
/// means the driver dislikes that factor more.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverPreference {
    /// Weight per second of travel time.
    pub w_time: f64,
    /// Weight per metre of distance.
    pub w_distance: f64,
    /// Penalty per traffic light, in "seconds equivalent".
    pub w_light: f64,
    /// Extra multiplicative discomfort per road class
    /// (indexed by [`RoadClass::ALL`] order: Highway, Arterial, Collector,
    /// Local). 1.0 = neutral; >1 = dislikes the class.
    pub class_discomfort: [f64; 4],
}

impl DriverPreference {
    /// The population-consensus profile of an experienced driver: values
    /// chosen so the preferred route is usually *neither* the pure-shortest
    /// nor the pure-fastest route (the paper's Fig-motivation that services
    /// deviate from drivers).
    pub fn consensus() -> Self {
        DriverPreference {
            w_time: 1.0,
            w_distance: 0.012,
            w_light: 45.0,
            // Experienced drivers dislike locals (parking, pedestrians),
            // mildly dislike highway on-ramps/merging for mid-range urban
            // trips, and favour arterials.
            class_discomfort: [1.15, 1.0, 1.1, 1.35],
        }
    }

    /// Generalised cost of one edge, in seconds-equivalent.
    pub fn edge_cost(&self, graph: &RoadGraph, e: EdgeId) -> f64 {
        let edge = graph.edge(e);
        let discomfort = self.class_discomfort[class_index(edge.class)];
        let base = self.w_time * edge.travel_time() + self.w_distance * edge.length;
        let light = if edge.traffic_light {
            self.w_light
        } else {
            0.0
        };
        base * discomfort + light
    }

    /// Generalised cost of a whole path.
    pub fn path_cost(&self, graph: &RoadGraph, path: &Path) -> f64 {
        path.edges().iter().map(|&e| self.edge_cost(graph, e)).sum()
    }

    /// The driver's preferred route between `from` and `to` (cheapest under
    /// this preference).
    pub fn preferred_route(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
    ) -> Result<Path, RoadNetError> {
        dijkstra_path(graph, from, to, |e| self.edge_cost(graph, e))
    }

    /// Samples an individual driver's preference as the consensus perturbed
    /// by multiplicative log-normal-ish noise of strength `heterogeneity`
    /// (0 = everyone identical; 0.3 is a realistic spread).
    pub fn sample_individual(rng: &mut SmallRng, heterogeneity: f64) -> Self {
        let base = DriverPreference::consensus();
        let jitter = |rng: &mut SmallRng, v: f64| {
            let f = 1.0 + rng.random_range(-heterogeneity..=heterogeneity);
            (v * f).max(0.0)
        };
        DriverPreference {
            w_time: jitter(rng, base.w_time),
            w_distance: jitter(rng, base.w_distance),
            w_light: jitter(rng, base.w_light),
            class_discomfort: [
                jitter(rng, base.class_discomfort[0]).max(0.5),
                jitter(rng, base.class_discomfort[1]).max(0.5),
                jitter(rng, base.class_discomfort[2]).max(0.5),
                jitter(rng, base.class_discomfort[3]).max(0.5),
            ],
        }
    }

    /// Deterministic individual sample (wraps [`Self::sample_individual`]
    /// with a fresh seeded RNG); convenient for tests.
    pub fn individual_from_seed(seed: u64, heterogeneity: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51_7C_C1_B7_27_22_0A_95);
        Self::sample_individual(&mut rng, heterogeneity)
    }
}

fn class_index(c: RoadClass) -> usize {
    match c {
        RoadClass::Highway => 0,
        RoadClass::Arterial => 1,
        RoadClass::Collector => 2,
        RoadClass::Local => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{distance_cost, time_cost};
    use cp_roadnet::{generate_city, CityParams};

    #[test]
    fn consensus_route_exists_and_is_simple() {
        let city = generate_city(&CityParams::small(), 10).unwrap();
        let g = &city.graph;
        let pref = DriverPreference::consensus();
        let p = pref.preferred_route(g, NodeId(0), NodeId(59)).unwrap();
        assert!(p.is_simple());
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(59));
    }

    #[test]
    fn path_cost_is_additive_over_edges() {
        let city = generate_city(&CityParams::small(), 10).unwrap();
        let g = &city.graph;
        let pref = DriverPreference::consensus();
        let p = pref.preferred_route(g, NodeId(0), NodeId(33)).unwrap();
        let by_edges: f64 = p.edges().iter().map(|&e| pref.edge_cost(g, e)).sum();
        assert!((pref.path_cost(g, &p) - by_edges).abs() < 1e-9);
    }

    #[test]
    fn preferred_route_sometimes_differs_from_shortest_and_fastest() {
        // Over many OD pairs in a heterogeneous city, the consensus route
        // must differ from at least one pure-metric route for some pair —
        // otherwise the whole premise of the paper's evaluation is absent.
        let city = generate_city(&CityParams::medium(), 21).unwrap();
        let g = &city.graph;
        let pref = DriverPreference::consensus();
        let mut diff_short = 0;
        let mut diff_fast = 0;
        for a in (0..400u32).step_by(61) {
            for b in (0..400u32).step_by(53) {
                if a == b {
                    continue;
                }
                let pr = pref.preferred_route(g, NodeId(a), NodeId(b)).unwrap();
                let sh = dijkstra_path(g, NodeId(a), NodeId(b), distance_cost(g)).unwrap();
                let fa = dijkstra_path(g, NodeId(a), NodeId(b), time_cost(g)).unwrap();
                if pr != sh {
                    diff_short += 1;
                }
                if pr != fa {
                    diff_fast += 1;
                }
            }
        }
        assert!(diff_short > 0, "consensus never differed from shortest");
        assert!(diff_fast > 0, "consensus never differed from fastest");
    }

    #[test]
    fn heterogeneity_zero_reproduces_consensus() {
        let p = DriverPreference::individual_from_seed(1, 0.0);
        assert_eq!(p, DriverPreference::consensus());
    }

    #[test]
    fn individuals_vary_with_heterogeneity() {
        let a = DriverPreference::individual_from_seed(1, 0.3);
        let b = DriverPreference::individual_from_seed(2, 0.3);
        assert_ne!(a, b);
        // Weights stay non-negative.
        for p in [&a, &b] {
            assert!(p.w_time >= 0.0 && p.w_distance >= 0.0 && p.w_light >= 0.0);
            assert!(p.class_discomfort.iter().all(|&d| d >= 0.5));
        }
    }

    #[test]
    fn edge_cost_counts_lights() {
        let city = generate_city(&CityParams::small(), 10).unwrap();
        let g = &city.graph;
        let mut pref = DriverPreference::consensus();
        let lit = g.edge_ids().find(|&e| g.edge(e).traffic_light);
        if let Some(e) = lit {
            let c1 = pref.edge_cost(g, e);
            pref.w_light += 100.0;
            let c2 = pref.edge_cost(g, e);
            assert!((c2 - c1 - 100.0).abs() < 1e-9);
        }
    }
}
