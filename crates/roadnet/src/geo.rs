//! Planar geometry primitives used throughout the workspace.
//!
//! The synthetic city lives on a flat plane measured in metres. Using a
//! local planar frame (instead of latitude/longitude) keeps every distance
//! computation exact and cheap, which matters because landmark accumulation
//! and calibration are distance-heavy inner loops.

/// A point in the local planar frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from `x`/`y` metre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance — avoids the `sqrt` when only comparisons
    /// are needed (nearest-neighbour queries, radius filters).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: returns the point `t` of the way from `self`
    /// to `other` (`t = 0` gives `self`, `t = 1` gives `other`).
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Bearing from `self` to `other` in radians, measured counter-clockwise
    /// from the positive x axis, in `(-π, π]`.
    pub fn bearing(&self, other: &Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// Translates the point by `(dx, dy)` metres.
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BoundingBox {
    /// Creates a bounding box from two corners; the corners are normalised
    /// so that `min` is component-wise ≤ `max`.
    pub fn new(a: Point, b: Point) -> Self {
        BoundingBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty box, suitable as a fold seed for [`BoundingBox::expand`].
    pub fn empty() -> Self {
        BoundingBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Whether `p` lies inside (or on the border of) the box.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width in metres (0 for the empty box).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height in metres (0 for the empty box).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Centre of the box.
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// Inflates the box by `margin` metres on every side.
    pub fn inflate(&self, margin: f64) -> BoundingBox {
        BoundingBox {
            min: self.min.translate(-margin, -margin),
            max: self.max.translate(margin, margin),
        }
    }
}

/// Signed smallest angular difference between two bearings, in `(-π, π]`.
///
/// Used to compute turn angles when counting the turns along a route: the
/// turn cost model in [`crate::path`] penalises sharp turns, which latent
/// driver preferences care about.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    let mut d = b - a;
    while d > std::f64::consts::PI {
        d -= 2.0 * std::f64::consts::PI;
    }
    while d <= -std::f64::consts::PI {
        d += 2.0 * std::f64::consts::PI;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(3.0, 4.0);
        let b = Point::new(0.0, 0.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(1.5, -2.5);
        let b = Point::new(-4.0, 7.0);
        assert!((a.distance_sq(&b).sqrt() - a.distance(&b)).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        let m = a.midpoint(&b);
        assert_eq!(m, Point::new(5.0, 10.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, 9.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), a.midpoint(&b));
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((o.bearing(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.bearing(&Point::new(0.0, 1.0)) - PI / 2.0).abs() < 1e-12);
        assert!((o.bearing(&Point::new(-1.0, 0.0)).abs() - PI).abs() < 1e-12);
    }

    #[test]
    fn bbox_contains_and_expand() {
        let mut b = BoundingBox::empty();
        assert!(!b.contains(&Point::new(0.0, 0.0)));
        b.expand(Point::new(0.0, 0.0));
        b.expand(Point::new(10.0, 5.0));
        assert!(b.contains(&Point::new(5.0, 2.5)));
        assert!(!b.contains(&Point::new(11.0, 2.5)));
        assert_eq!(b.width(), 10.0);
        assert_eq!(b.height(), 5.0);
        assert_eq!(b.center(), Point::new(5.0, 2.5));
    }

    #[test]
    fn bbox_new_normalises_corners() {
        let b = BoundingBox::new(Point::new(10.0, -5.0), Point::new(-10.0, 5.0));
        assert_eq!(b.min, Point::new(-10.0, -5.0));
        assert_eq!(b.max, Point::new(10.0, 5.0));
    }

    #[test]
    fn bbox_inflate_grows_every_side() {
        let b = BoundingBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).inflate(1.0);
        assert!(b.contains(&Point::new(-0.5, -0.5)));
        assert!(b.contains(&Point::new(2.5, 2.5)));
        assert!(!b.contains(&Point::new(3.5, 0.0)));
    }

    #[test]
    fn angle_diff_wraps() {
        assert!((angle_diff(0.0, PI / 2.0) - PI / 2.0).abs() < 1e-12);
        assert!((angle_diff(PI / 2.0, 0.0) + PI / 2.0).abs() < 1e-12);
        // Wrapping across the ±π seam: from 3π/4 to -3π/4 is a +π/2 turn.
        assert!((angle_diff(3.0 * PI / 4.0, -3.0 * PI / 4.0) - PI / 2.0).abs() < 1e-12);
    }
}
