//! A* point-to-point search with a Euclidean admissible heuristic.
//!
//! The heuristic divides straight-line distance by the maximum network
//! speed, so it is admissible for both distance costs (`speed = 1`) and
//! time costs. The simulated web services route thousands of point-to-point
//! requests, where the goal-directed search visits a fraction of the nodes
//! Dijkstra would.

use crate::error::RoadNetError;
use crate::graph::{EdgeId, NodeId, RoadGraph};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapEntry {
    f: f64,
    g: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Cheapest path from `from` to `to` under `cost`, guided by a heuristic
/// `h(n) = euclid(n, to) / heuristic_speed`.
///
/// * For distance costs pass `heuristic_speed = 1.0`.
/// * For time costs pass the fastest speed in the network
///   (e.g. `RoadClass::Highway.speed_mps()`), which keeps `h` admissible.
pub fn astar_path(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    cost: impl Fn(EdgeId) -> f64,
    heuristic_speed: f64,
) -> Result<Path, RoadNetError> {
    if from == to {
        return Err(RoadNetError::NoPath { from, to });
    }
    let n = graph.node_count();
    let goal = graph.position(to);
    let h = |node: NodeId| graph.position(node).distance(&goal) / heuristic_speed;

    let mut g_score = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut closed = vec![false; n];
    let mut heap = BinaryHeap::new();
    g_score[from.index()] = 0.0;
    heap.push(HeapEntry {
        f: h(from),
        g: 0.0,
        node: from,
    });
    while let Some(HeapEntry { g, node, .. }) = heap.pop() {
        if closed[node.index()] {
            continue;
        }
        closed[node.index()] = true;
        if node == to {
            break;
        }
        for &e in graph.out_edges(node) {
            let edge = graph.edge(e);
            let w = cost(e);
            debug_assert!(w >= 0.0, "negative edge cost");
            let ng = g + w;
            if ng < g_score[edge.to.index()] {
                g_score[edge.to.index()] = ng;
                parent[edge.to.index()] = Some(e);
                heap.push(HeapEntry {
                    f: ng + h(edge.to),
                    g: ng,
                    node: edge.to,
                });
            }
        }
    }
    if !g_score[to.index()].is_finite() {
        return Err(RoadNetError::NoPath { from, to });
    }
    let mut edges_rev = Vec::new();
    let mut cur = to;
    while let Some(e) = parent[cur.index()] {
        edges_rev.push(e);
        cur = graph.edge(e).from;
    }
    edges_rev.reverse();
    Path::from_edges(graph, edges_rev).ok_or(RoadNetError::NoPath { from, to })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_city, CityParams};
    use crate::graph::RoadClass;
    use crate::routing::{dijkstra_path, distance_cost, time_cost};

    #[test]
    fn astar_matches_dijkstra_on_distance() {
        let city = generate_city(&CityParams::small(), 42).unwrap();
        let g = &city.graph;
        let pairs = [(0u32, 55u32), (3, 40), (10, 33), (7, 59)];
        for (a, b) in pairs {
            let d = dijkstra_path(g, NodeId(a), NodeId(b), distance_cost(g)).unwrap();
            let s = astar_path(g, NodeId(a), NodeId(b), distance_cost(g), 1.0).unwrap();
            assert!(
                (d.length(g) - s.length(g)).abs() < 1e-6,
                "A* length differs from Dijkstra for {a}->{b}"
            );
        }
    }

    #[test]
    fn astar_matches_dijkstra_on_time() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let g = &city.graph;
        let vmax = RoadClass::Highway.speed_mps();
        for (a, b) in [(1u32, 50u32), (12, 47), (20, 5)] {
            let d = dijkstra_path(g, NodeId(a), NodeId(b), time_cost(g)).unwrap();
            let s = astar_path(g, NodeId(a), NodeId(b), time_cost(g), vmax).unwrap();
            assert!(
                (d.travel_time(g) - s.travel_time(g)).abs() < 1e-6,
                "A* time differs from Dijkstra for {a}->{b}"
            );
        }
    }

    #[test]
    fn astar_same_node_errors() {
        let city = generate_city(&CityParams::small(), 1).unwrap();
        assert!(astar_path(
            &city.graph,
            NodeId(0),
            NodeId(0),
            distance_cost(&city.graph),
            1.0
        )
        .is_err());
    }
}
