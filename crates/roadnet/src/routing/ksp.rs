//! Yen's k-shortest simple paths.
//!
//! CrowdPlanner's candidate-route sets come from several sources; when a
//! source must produce alternatives (e.g. a web service offering "route
//! options"), Yen's algorithm provides the k cheapest *simple* paths.

use crate::error::RoadNetError;
use crate::graph::{EdgeId, NodeId, RoadGraph};
use crate::path::Path;
use crate::routing::dijkstra::CostFn;
use std::collections::BinaryHeap;

/// Candidate path in Yen's B-heap, ordered by cost (min first).
struct Candidate {
    cost: f64,
    path: Path,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.path == other.path
    }
}
impl Eq for Candidate {}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            // Tie-break on the node sequence for determinism.
            .then_with(|| other.path.nodes().cmp(self.path.nodes()))
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra restricted to a node/edge mask. Returns the cheapest masked
/// path from `from` to `to`, if any.
fn masked_dijkstra(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    cost: &impl CostFn,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> Option<(f64, Path)> {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    // Order by cost bits for a lean heap: costs are non-negative finite, so
    // the IEEE bit pattern of an f64 preserves order.
    let key = |c: f64| c.to_bits();
    dist[from.index()] = 0.0;
    heap.push(std::cmp::Reverse((key(0.0), from.0)));
    while let Some(std::cmp::Reverse((_, node))) = heap.pop() {
        let node = NodeId(node);
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        if node == to {
            break;
        }
        for &e in graph.out_edges(node) {
            if banned_edges[e.index()] {
                continue;
            }
            let edge = graph.edge(e);
            if banned_nodes[edge.to.index()] && edge.to != to {
                continue;
            }
            let nd = dist[node.index()] + cost(e);
            if nd < dist[edge.to.index()] {
                dist[edge.to.index()] = nd;
                parent[edge.to.index()] = Some(e);
                heap.push(std::cmp::Reverse((key(nd), edge.to.0)));
            }
        }
    }
    if !dist[to.index()].is_finite() {
        return None;
    }
    let mut edges_rev = Vec::new();
    let mut cur = to;
    while let Some(e) = parent[cur.index()] {
        edges_rev.push(e);
        cur = graph.edge(e).from;
    }
    edges_rev.reverse();
    let path = Path::from_edges(graph, edges_rev)?;
    Some((dist[to.index()], path))
}

/// Computes up to `k` cheapest simple paths from `from` to `to`.
///
/// Returns fewer than `k` paths when the graph does not contain `k` simple
/// paths. Errors only when not even one path exists.
pub fn k_shortest_paths(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: impl CostFn,
) -> Result<Vec<Path>, RoadNetError> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut banned_nodes = vec![false; graph.node_count()];
    let mut banned_edges = vec![false; graph.edge_count()];
    let first = masked_dijkstra(graph, from, to, &cost, &banned_nodes, &banned_edges)
        .ok_or(RoadNetError::NoPath { from, to })?;
    let mut result: Vec<Path> = vec![first.1];
    let mut candidates: BinaryHeap<Candidate> = BinaryHeap::new();

    while result.len() < k {
        let prev = result.last().expect("result non-empty").clone();
        let prev_nodes = prev.nodes().to_vec();
        // Spur from every node of the previous path except the destination.
        for i in 0..prev_nodes.len() - 1 {
            let spur_node = prev_nodes[i];
            let root_nodes = &prev_nodes[..=i];

            // Ban edges that would replay any already-found path sharing
            // this root.
            banned_edges.iter_mut().for_each(|b| *b = false);
            for p in &result {
                if p.nodes().len() > i && p.nodes()[..=i] == *root_nodes {
                    banned_edges[p.edges()[i].index()] = true;
                }
            }
            // Ban root nodes (except the spur node) to keep paths simple.
            banned_nodes.iter_mut().for_each(|b| *b = false);
            for &rn in &root_nodes[..i] {
                banned_nodes[rn.index()] = true;
            }

            if let Some((_, spur_path)) =
                masked_dijkstra(graph, spur_node, to, &cost, &banned_nodes, &banned_edges)
            {
                // Total path = root (edges 0..i) + spur.
                let mut edges: Vec<EdgeId> = prev.edges()[..i].to_vec();
                edges.extend_from_slice(spur_path.edges());
                if let Some(total) = Path::from_edges(graph, edges) {
                    if total.is_simple() {
                        let c: f64 = total.edges().iter().map(|&e| cost(e)).sum();
                        let cand = Candidate {
                            cost: c,
                            path: total,
                        };
                        // Deduplicate against both results and pending
                        // candidates.
                        if !result.contains(&cand.path)
                            && !candidates.iter().any(|x| x.path == cand.path)
                        {
                            candidates.push(cand);
                        }
                    }
                }
            }
        }
        match candidates.pop() {
            Some(c) => result.push(c.path),
            None => break,
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_city, CityParams};
    use crate::geo::Point;
    use crate::graph::{RoadClass, RoadGraphBuilder};
    use crate::routing::distance_cost;

    fn grid3() -> RoadGraph {
        // 3x3 grid, two-way streets, 100 m spacing.
        let mut b = RoadGraphBuilder::new();
        let mut ids = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                ids.push(b.add_node(Point::new(c as f64 * 100.0, r as f64 * 100.0)));
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    b.add_two_way(ids[i], ids[i + 1], RoadClass::Local, false)
                        .unwrap();
                }
                if r + 1 < 3 {
                    b.add_two_way(ids[i], ids[i + 3], RoadClass::Local, false)
                        .unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn k1_equals_shortest() {
        let g = grid3();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(8), 1, distance_cost(&g)).unwrap();
        assert_eq!(ps.len(), 1);
        assert!((ps[0].length(&g) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn paths_are_sorted_simple_and_distinct() {
        let g = grid3();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(8), 6, distance_cost(&g)).unwrap();
        assert_eq!(ps.len(), 6, "3x3 grid has 6 monotone shortest paths");
        let mut prev = 0.0;
        for p in &ps {
            assert!(p.is_simple());
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.destination(), NodeId(8));
            let len = p.length(&g);
            assert!(len + 1e-9 >= prev, "paths must be sorted by cost");
            prev = len;
        }
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i], ps[j]);
            }
        }
        // All 6 shortest are the monotone 400 m staircases.
        assert!(ps.iter().all(|p| (p.length(&g) - 400.0).abs() < 1e-9));
    }

    #[test]
    fn more_k_than_paths_returns_all() {
        // A line has exactly one simple path between its ends.
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(200.0, 0.0));
        b.add_two_way(a, c, RoadClass::Local, false).unwrap();
        b.add_two_way(c, d, RoadClass::Local, false).unwrap();
        let g = b.build();
        let ps = k_shortest_paths(&g, a, d, 5, distance_cost(&g)).unwrap();
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn k0_is_empty() {
        let g = grid3();
        assert!(
            k_shortest_paths(&g, NodeId(0), NodeId(8), 0, distance_cost(&g))
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn no_path_errors() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_node(Point::new(200.0, 0.0));
        b.add_edge(a, c, RoadClass::Local, false, None).unwrap();
        let g = b.build();
        assert!(k_shortest_paths(&g, a, NodeId(2), 3, distance_cost(&g)).is_err());
    }

    #[test]
    fn works_on_generated_city() {
        let city = generate_city(&CityParams::small(), 3).unwrap();
        let g = &city.graph;
        let ps = k_shortest_paths(g, NodeId(0), NodeId(35), 4, distance_cost(g)).unwrap();
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].length(g) <= w[1].length(g) + 1e-9);
        }
    }
}
