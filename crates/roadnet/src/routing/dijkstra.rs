//! Dijkstra shortest paths with a pluggable edge-cost function.

use crate::error::RoadNetError;
use crate::graph::{EdgeId, NodeId, RoadGraph};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Any non-negative edge cost. Negative costs are a caller bug; they are
/// debug-asserted in the relaxation loop.
pub trait CostFn: Fn(EdgeId) -> f64 {}
impl<F: Fn(EdgeId) -> f64> CostFn for F {}

/// Min-heap entry ordered by cost.
#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest cost; ties
        // broken by node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a single-source Dijkstra run.
pub struct DijkstraResult {
    /// `dist[n]` is the cost of the cheapest path from the source to `n`,
    /// or `f64::INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// `parent_edge[n]` is the edge by which the cheapest path enters `n`.
    pub parent_edge: Vec<Option<EdgeId>>,
}

impl DijkstraResult {
    /// Reconstructs the cheapest path to `target`, if reachable.
    pub fn path_to(&self, graph: &RoadGraph, target: NodeId) -> Option<Path> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut edges_rev = Vec::new();
        let mut cur = target;
        while let Some(e) = self.parent_edge[cur.index()] {
            edges_rev.push(e);
            cur = graph.edge(e).from;
        }
        if edges_rev.is_empty() {
            return None; // target == source: no edges
        }
        edges_rev.reverse();
        Path::from_edges(graph, edges_rev)
    }
}

/// When the expansion may stop: never (full component), after settling
/// one node (a scalar compare — no per-call mask allocation on the hot
/// point-to-point path), or after settling `count` masked nodes.
enum Stop {
    Exhaustion,
    At(NodeId),
    Multi(Vec<bool>, usize),
}

/// The shared expansion core behind [`shortest_path_tree`] and
/// [`shortest_path_tree_to_all`]: settles nodes in deterministic order
/// (cost, then node id), stopping per the [`Stop`] criterion. One
/// definition of the relaxation/tie-break logic, so the single- and
/// multi-target searches can never diverge (the byte-identity the
/// fused mining path depends on).
fn expand_tree(
    graph: &RoadGraph,
    source: NodeId,
    mut stop: Stop,
    cost: impl CostFn,
) -> DijkstraResult {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost: d, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        match &mut stop {
            Stop::Exhaustion => {}
            Stop::At(target) => {
                if node == *target {
                    break;
                }
            }
            Stop::Multi(wanted, remaining) => {
                if wanted[node.index()] {
                    wanted[node.index()] = false;
                    *remaining -= 1;
                    if *remaining == 0 {
                        break;
                    }
                }
            }
        }
        for &e in graph.out_edges(node) {
            let edge = graph.edge(e);
            let w = cost(e);
            debug_assert!(w >= 0.0, "negative edge cost");
            let nd = d + w;
            if nd < dist[edge.to.index()] {
                dist[edge.to.index()] = nd;
                parent_edge[edge.to.index()] = Some(e);
                heap.push(HeapEntry {
                    cost: nd,
                    node: edge.to,
                });
            }
        }
    }
    DijkstraResult { dist, parent_edge }
}

/// Runs Dijkstra from `source` until `until` (if given) is settled or the
/// whole reachable component is settled.
pub fn shortest_path_tree(
    graph: &RoadGraph,
    source: NodeId,
    until: Option<NodeId>,
    cost: impl CostFn,
) -> DijkstraResult {
    let stop = match until {
        Some(t) => Stop::At(t),
        None => Stop::Exhaustion,
    };
    expand_tree(graph, source, stop, cost)
}

/// Cheapest path from `from` to `to` under `cost`.
pub fn dijkstra_path(
    graph: &RoadGraph,
    from: NodeId,
    to: NodeId,
    cost: impl CostFn,
) -> Result<Path, RoadNetError> {
    if from == to {
        return Err(RoadNetError::NoPath { from, to });
    }
    let tree = shortest_path_tree(graph, from, Some(to), cost);
    tree.path_to(graph, to)
        .ok_or(RoadNetError::NoPath { from, to })
}

/// Runs Dijkstra from `source` until every node in `targets` is settled
/// (or the reachable component is exhausted) and returns the tree.
///
/// The settle order, relaxations and parent assignments are exactly
/// those of [`shortest_path_tree`] — the single-target run is a prefix
/// of this one — so for every target, `path_to` reconstructs a path
/// byte-identical to `dijkstra_path(graph, source, target, cost)`. A
/// parent pointer is final once its node is settled (relaxation only
/// rewrites parents on a strict cost improvement, impossible after
/// settling), so continuing past one target cannot change its path.
/// This is the primitive behind fused batch mining: one expansion
/// answers every destination sharing the source.
pub fn shortest_path_tree_to_all(
    graph: &RoadGraph,
    source: NodeId,
    targets: &[NodeId],
    cost: impl CostFn,
) -> DijkstraResult {
    let n = graph.node_count();
    let mut wanted = vec![false; n];
    let mut remaining = 0usize;
    for &t in targets {
        if !wanted[t.index()] {
            wanted[t.index()] = true;
            remaining += 1;
        }
    }
    if remaining == 0 {
        // Nothing to reach: the trivial tree, no expansion at all
        // (without this, an all-degenerate batch group would pay a
        // full-component Dijkstra per miner just to return errors).
        let mut dist = vec![f64::INFINITY; n];
        dist[source.index()] = 0.0;
        return DijkstraResult {
            dist,
            parent_edge: vec![None; n],
        };
    }
    expand_tree(graph, source, Stop::Multi(wanted, remaining), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::graph::{RoadClass, RoadGraphBuilder};
    use crate::routing::{distance_cost, time_cost};

    /// Diamond where the top branch is shorter but the bottom branch is
    /// faster (top is Local with lights, bottom is Highway).
    fn diamond() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let s = b.add_node(Point::new(0.0, 0.0));
        let top = b.add_node(Point::new(500.0, 100.0));
        let bot = b.add_node(Point::new(500.0, -800.0));
        let t = b.add_node(Point::new(1000.0, 0.0));
        b.add_edge(s, top, RoadClass::Local, true, None).unwrap();
        b.add_edge(top, t, RoadClass::Local, true, None).unwrap();
        b.add_edge(s, bot, RoadClass::Highway, false, None).unwrap();
        b.add_edge(bot, t, RoadClass::Highway, false, None).unwrap();
        b.build()
    }

    #[test]
    fn shortest_by_distance_takes_top() {
        let g = diamond();
        let p = dijkstra_path(&g, NodeId(0), NodeId(3), distance_cost(&g)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn fastest_by_time_takes_bottom() {
        let g = diamond();
        let p = dijkstra_path(&g, NodeId(0), NodeId(3), time_cost(&g)).unwrap();
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn multi_target_tree_matches_single_target_paths() {
        let city = crate::generator::generate_city(&crate::generator::CityParams::small(), 11)
            .expect("city");
        let g = &city.graph;
        let from = NodeId(0);
        let targets: Vec<NodeId> = [7u32, 59, 23, 41, 59, 12].map(NodeId).to_vec();
        let costs: [&dyn Fn(EdgeId) -> f64; 2] =
            [&|e| g.edge(e).length, &|e| g.edge(e).travel_time()];
        for cost in costs {
            let tree = shortest_path_tree_to_all(g, from, &targets, cost);
            for &t in &targets {
                let single = dijkstra_path(g, from, t, cost).unwrap();
                let multi = tree.path_to(g, t).expect("target settled");
                assert_eq!(single, multi, "target {t:?}");
            }
        }
        // No targets: the tree is still well-formed (source settled only).
        let empty = shortest_path_tree_to_all(g, from, &[], distance_cost(g));
        assert_eq!(empty.dist[from.index()], 0.0);
    }

    #[test]
    fn unreachable_returns_no_path() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(200.0, 0.0));
        b.add_edge(a, c, RoadClass::Local, false, None).unwrap();
        // d has no incoming edges.
        let g = b.build();
        assert!(matches!(
            dijkstra_path(&g, a, d, distance_cost(&g)),
            Err(RoadNetError::NoPath { .. })
        ));
    }

    #[test]
    fn source_equals_target_is_no_path() {
        let g = diamond();
        assert!(dijkstra_path(&g, NodeId(0), NodeId(0), distance_cost(&g)).is_err());
    }

    #[test]
    fn tree_distances_satisfy_triangle_inequality_on_edges() {
        let g = diamond();
        let tree = shortest_path_tree(&g, NodeId(0), None, distance_cost(&g));
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let du = tree.dist[edge.from.index()];
            let dv = tree.dist[edge.to.index()];
            if du.is_finite() {
                assert!(
                    dv <= du + edge.length + 1e-9,
                    "edge {e:?} violates relaxation"
                );
            }
        }
    }

    #[test]
    fn path_cost_matches_reported_distance() {
        let g = diamond();
        let tree = shortest_path_tree(&g, NodeId(0), None, distance_cost(&g));
        let p = tree.path_to(&g, NodeId(3)).unwrap();
        assert!((p.length(&g) - tree.dist[3]).abs() < 1e-9);
    }
}
