//! Routing algorithms over the road graph.
//!
//! * [`dijkstra`] — generic single-source shortest path with a pluggable
//!   edge-cost function (distance, travel time, or any latent utility).
//! * [`astar`] — goal-directed search with a Euclidean admissible heuristic,
//!   used by the simulated web services where point-to-point queries
//!   dominate.
//! * [`ksp`] — Yen's k-shortest simple paths, used to build diverse
//!   candidate route sets.

pub mod astar;
pub mod dijkstra;
pub mod ksp;

pub use astar::astar_path;
pub use dijkstra::{
    dijkstra_path, shortest_path_tree, shortest_path_tree_to_all, CostFn, DijkstraResult,
};
pub use ksp::k_shortest_paths;

use crate::graph::{EdgeId, RoadGraph};

/// Edge cost = length in metres (shortest-distance routing).
pub fn distance_cost(graph: &RoadGraph) -> impl Fn(EdgeId) -> f64 + '_ {
    move |e| graph.edge(e).length
}

/// Edge cost = free-flow travel time in seconds (fastest routing).
pub fn time_cost(graph: &RoadGraph) -> impl Fn(EdgeId) -> f64 + '_ {
    move |e| graph.edge(e).travel_time()
}
