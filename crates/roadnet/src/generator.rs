//! Synthetic city generator.
//!
//! The paper evaluates on a real city (taxi trajectories + LBSN check-ins).
//! We do not have that data, so this module builds a structured synthetic
//! city that preserves what the algorithms care about:
//!
//! * a mostly-planar street grid with *heterogeneous* road classes
//!   (locals, collectors, arterials, a highway ring), so that shortest,
//!   fastest and driver-preferred routes genuinely differ;
//! * traffic lights concentrated on big intersections, so light-avoiding
//!   preferences are expressible;
//! * positional jitter so no two cities are geometrically identical, while
//!   everything stays deterministic in the seed.

use crate::error::RoadNetError;
use crate::geo::Point;
use crate::graph::{NodeId, RoadClass, RoadGraph, RoadGraphBuilder};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Parameters of the synthetic city.
#[derive(Debug, Clone)]
pub struct CityParams {
    /// Grid rows (north-south blocks + 1).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Block edge length in metres.
    pub spacing: f64,
    /// Max positional jitter applied to every intersection, in metres.
    pub jitter: f64,
    /// Every `arterial_period`-th row/column is an arterial street.
    pub arterial_period: usize,
    /// Whether the outermost ring is a highway.
    pub highway_ring: bool,
    /// Probability that an arterial segment head carries a traffic light.
    pub light_prob_arterial: f64,
    /// Probability that a local/collector segment head carries a light.
    pub light_prob_local: f64,
}

impl CityParams {
    /// A 6×10 toy city (60 intersections) for unit tests.
    pub fn small() -> Self {
        CityParams {
            rows: 6,
            cols: 10,
            spacing: 200.0,
            jitter: 20.0,
            arterial_period: 3,
            highway_ring: true,
            light_prob_arterial: 0.6,
            light_prob_local: 0.15,
        }
    }

    /// A 20×20 city (400 intersections) for integration tests and examples.
    pub fn medium() -> Self {
        CityParams {
            rows: 20,
            cols: 20,
            spacing: 250.0,
            jitter: 30.0,
            arterial_period: 4,
            highway_ring: true,
            light_prob_arterial: 0.6,
            light_prob_local: 0.15,
        }
    }

    /// A 40×40 city (1600 intersections) for benchmarks.
    pub fn large() -> Self {
        CityParams {
            rows: 40,
            cols: 40,
            spacing: 250.0,
            jitter: 30.0,
            arterial_period: 5,
            highway_ring: true,
            light_prob_arterial: 0.6,
            light_prob_local: 0.15,
        }
    }

    fn validate(&self) -> Result<(), RoadNetError> {
        if self.rows < 2 || self.cols < 2 {
            return Err(RoadNetError::InvalidParameter("grid must be at least 2x2"));
        }
        if !(self.spacing.is_finite() && self.spacing > 0.0) {
            return Err(RoadNetError::InvalidParameter("spacing must be positive"));
        }
        if self.jitter < 0.0 || self.jitter * 2.0 >= self.spacing {
            return Err(RoadNetError::InvalidParameter(
                "jitter must be in [0, spacing/2)",
            ));
        }
        if self.arterial_period == 0 {
            return Err(RoadNetError::InvalidParameter(
                "arterial_period must be >= 1",
            ));
        }
        if !(0.0..=1.0).contains(&self.light_prob_arterial)
            || !(0.0..=1.0).contains(&self.light_prob_local)
        {
            return Err(RoadNetError::InvalidParameter(
                "light probabilities must be in [0,1]",
            ));
        }
        Ok(())
    }
}

/// A generated city: the road graph plus grid metadata.
#[derive(Debug, Clone)]
pub struct City {
    /// The road network.
    pub graph: RoadGraph,
    /// The parameters it was generated from.
    pub params: CityParams,
    /// Seed used, recorded for reproducibility reports.
    pub seed: u64,
}

impl City {
    /// Node id at grid coordinate `(row, col)`.
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        debug_assert!(row < self.params.rows && col < self.params.cols);
        NodeId((row * self.params.cols + col) as u32)
    }

    /// Grid coordinate of a node.
    pub fn grid_of(&self, n: NodeId) -> (usize, usize) {
        let i = n.index();
        (i / self.params.cols, i % self.params.cols)
    }
}

fn class_for(params: &CityParams, row_like: bool, idx: usize, other_max: usize) -> RoadClass {
    // Outer ring may be a highway.
    if params.highway_ring && (idx == 0 || idx == other_max) {
        return RoadClass::Highway;
    }
    if idx.is_multiple_of(params.arterial_period) {
        RoadClass::Arterial
    } else if row_like && idx.is_multiple_of(2) {
        RoadClass::Collector
    } else {
        RoadClass::Local
    }
}

/// Generates a deterministic synthetic city.
pub fn generate_city(params: &CityParams, seed: u64) -> Result<City, RoadNetError> {
    params.validate()?;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut b = RoadGraphBuilder::new();
    let (rows, cols) = (params.rows, params.cols);
    for r in 0..rows {
        for c in 0..cols {
            let jx = if params.jitter > 0.0 {
                rng.random_range(-params.jitter..params.jitter)
            } else {
                0.0
            };
            let jy = if params.jitter > 0.0 {
                rng.random_range(-params.jitter..params.jitter)
            } else {
                0.0
            };
            b.add_node(Point::new(
                c as f64 * params.spacing + jx,
                r as f64 * params.spacing + jy,
            ));
        }
    }
    let node = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    // Horizontal streets: the street's class is determined by its row.
    for r in 0..rows {
        let class = class_for(params, true, r, rows - 1);
        for c in 0..cols - 1 {
            let light = light_roll(&mut rng, params, class);
            b.add_two_way(node(r, c), node(r, c + 1), class, light)?;
        }
    }
    // Vertical streets: class by column.
    for c in 0..cols {
        let class = class_for(params, false, c, cols - 1);
        for r in 0..rows - 1 {
            let light = light_roll(&mut rng, params, class);
            b.add_two_way(node(r, c), node(r + 1, c), class, light)?;
        }
    }
    let graph = b.build();
    graph.validate()?;
    Ok(City {
        graph,
        params: params.clone(),
        seed,
    })
}

fn light_roll(rng: &mut SmallRng, params: &CityParams, class: RoadClass) -> bool {
    let p = match class {
        RoadClass::Highway => 0.0,
        RoadClass::Arterial => params.light_prob_arterial,
        _ => params.light_prob_local,
    };
    rng.random_bool(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{dijkstra_path, distance_cost, shortest_path_tree};

    #[test]
    fn small_city_has_expected_size() {
        let city = generate_city(&CityParams::small(), 0).unwrap();
        assert_eq!(city.graph.node_count(), 60);
        // Grid edges: rows*(cols-1) + cols*(rows-1), two-way.
        let expect = 2 * (6 * 9 + 10 * 5);
        assert_eq!(city.graph.edge_count(), expect);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = generate_city(&CityParams::small(), 99).unwrap();
        let b = generate_city(&CityParams::small(), 99).unwrap();
        for n in a.graph.nodes() {
            assert_eq!(a.graph.position(n), b.graph.position(n));
        }
        for e in a.graph.edge_ids() {
            assert_eq!(a.graph.edge(e).traffic_light, b.graph.edge(e).traffic_light);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_city(&CityParams::small(), 1).unwrap();
        let b = generate_city(&CityParams::small(), 2).unwrap();
        let moved = a
            .graph
            .nodes()
            .any(|n| a.graph.position(n) != b.graph.position(n));
        assert!(moved);
    }

    #[test]
    fn city_is_strongly_connected() {
        let city = generate_city(&CityParams::small(), 5).unwrap();
        let g = &city.graph;
        let tree = shortest_path_tree(g, NodeId(0), None, distance_cost(g));
        assert!(
            tree.dist.iter().all(|d| d.is_finite()),
            "forward reachability"
        );
        // Two-way streets: reverse reachability follows, but verify a few
        // return paths explicitly.
        for n in [13u32, 27, 59] {
            dijkstra_path(g, NodeId(n), NodeId(0), distance_cost(g)).unwrap();
        }
    }

    #[test]
    fn highway_ring_present_when_enabled() {
        let city = generate_city(&CityParams::small(), 6).unwrap();
        let g = &city.graph;
        let hw = g
            .edge_ids()
            .filter(|&e| g.edge(e).class == RoadClass::Highway)
            .count();
        assert!(hw > 0);
    }

    #[test]
    fn no_highway_ring_when_disabled() {
        let mut p = CityParams::small();
        p.highway_ring = false;
        let city = generate_city(&p, 6).unwrap();
        let g = &city.graph;
        assert_eq!(
            g.edge_ids()
                .filter(|&e| g.edge(e).class == RoadClass::Highway)
                .count(),
            0
        );
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = CityParams::small();
        p.rows = 1;
        assert!(generate_city(&p, 0).is_err());
        let mut p = CityParams::small();
        p.jitter = p.spacing;
        assert!(generate_city(&p, 0).is_err());
        let mut p = CityParams::small();
        p.arterial_period = 0;
        assert!(generate_city(&p, 0).is_err());
        let mut p = CityParams::small();
        p.light_prob_local = 1.5;
        assert!(generate_city(&p, 0).is_err());
    }

    #[test]
    fn grid_round_trip() {
        let city = generate_city(&CityParams::small(), 0).unwrap();
        for r in 0..6 {
            for c in 0..10 {
                let n = city.node_at(r, c);
                assert_eq!(city.grid_of(n), (r, c));
            }
        }
    }
}
