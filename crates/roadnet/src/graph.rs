//! Road-network graph.
//!
//! The graph is a directed multigraph stored in a compact adjacency-list
//! layout: nodes are road intersections, edges are directed road segments
//! with a length, a road class (which implies a free-flow speed) and an
//! optional traffic light at the segment's head. All identifiers are `u32`
//! newtypes so the hot routing loops index dense `Vec`s instead of hashing.

use crate::error::RoadNetError;
use crate::geo::{BoundingBox, Point};

/// Identifier of a road intersection (graph node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed road segment (graph edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road segment. The class determines the free-flow
/// speed used by the fastest-path web service and by the driver utility
/// model in `cp-traj`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// Limited-access highway / motorway.
    Highway,
    /// Major arterial street.
    Arterial,
    /// Collector street.
    Collector,
    /// Local / residential street.
    Local,
}

impl RoadClass {
    /// Free-flow speed in metres per second.
    pub fn speed_mps(self) -> f64 {
        match self {
            RoadClass::Highway => 27.8,   // ~100 km/h
            RoadClass::Arterial => 16.7,  // ~60 km/h
            RoadClass::Collector => 13.9, // ~50 km/h
            RoadClass::Local => 8.3,      // ~30 km/h
        }
    }

    /// All classes, ordered from fastest to slowest.
    pub const ALL: [RoadClass; 4] = [
        RoadClass::Highway,
        RoadClass::Arterial,
        RoadClass::Collector,
        RoadClass::Local,
    ];
}

/// A directed road segment.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Tail intersection.
    pub from: NodeId,
    /// Head intersection.
    pub to: NodeId,
    /// Segment length in metres.
    pub length: f64,
    /// Functional road class.
    pub class: RoadClass,
    /// Whether a traffic light guards the head of this segment.
    pub traffic_light: bool,
}

impl Edge {
    /// Free-flow traversal time in seconds, including an expected traffic
    /// light delay of half the light cycle (30 s cycle → 15 s expected wait,
    /// halved again because lights are green half the time → 15 s worst-case
    /// expected ≈ 15 s; we use 15 s which matches common micro-simulation
    /// defaults).
    pub fn travel_time(&self) -> f64 {
        let base = self.length / self.class.speed_mps();
        if self.traffic_light {
            base + 15.0
        } else {
            base
        }
    }
}

/// A directed road-network graph.
///
/// Construction happens through [`RoadGraphBuilder`]; once built the graph
/// is immutable, which lets routing and mining share it freely across
/// threads (`&RoadGraph` is `Send + Sync`).
#[derive(Debug, Clone)]
pub struct RoadGraph {
    positions: Vec<Point>,
    edges: Vec<Edge>,
    /// `out_index[n]..out_index[n+1]` indexes `out_edges` for node `n`.
    out_index: Vec<u32>,
    out_edges: Vec<EdgeId>,
    in_index: Vec<u32>,
    in_edges: Vec<EdgeId>,
    bbox: BoundingBox,
}

impl RoadGraph {
    /// Number of intersections.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed segments.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Planar position of a node.
    #[inline]
    pub fn position(&self, n: NodeId) -> Point {
        self.positions[n.index()]
    }

    /// The edge record for `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Outgoing edges of `n`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        let lo = self.out_index[n.index()] as usize;
        let hi = self.out_index[n.index() + 1] as usize;
        &self.out_edges[lo..hi]
    }

    /// Incoming edges of `n`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        let lo = self.in_index[n.index()] as usize;
        let hi = self.in_index[n.index() + 1] as usize;
        &self.in_edges[lo..hi]
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Bounding box of all intersections.
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// Finds the directed edge from `a` to `b`, if one exists. When parallel
    /// edges exist the shortest is returned (routing never wants a longer
    /// parallel segment).
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.out_edges(a)
            .iter()
            .copied()
            .filter(|&e| self.edge(e).to == b)
            .min_by(|&x, &y| {
                self.edge(x)
                    .length
                    .partial_cmp(&self.edge(y).length)
                    .expect("edge lengths are finite")
            })
    }

    /// Nearest intersection to `p` by Euclidean distance. Linear scan —
    /// adequate for request mapping; landmark lookups use the grid index in
    /// [`crate::landmark`] instead.
    pub fn nearest_node(&self, p: &Point) -> NodeId {
        let mut best = NodeId(0);
        let mut best_d = f64::INFINITY;
        for (i, pos) in self.positions.iter().enumerate() {
            let d = pos.distance_sq(p);
            if d < best_d {
                best_d = d;
                best = NodeId(i as u32);
            }
        }
        best
    }

    /// Validates that node indices referenced by edges are in range.
    /// Builder output always passes; exposed for deserialized graphs.
    pub fn validate(&self) -> Result<(), RoadNetError> {
        let n = self.node_count() as u32;
        for (i, e) in self.edges.iter().enumerate() {
            if e.from.0 >= n || e.to.0 >= n {
                return Err(RoadNetError::InvalidEdge {
                    edge: EdgeId(i as u32),
                });
            }
            if !(e.length.is_finite() && e.length > 0.0) {
                return Err(RoadNetError::InvalidEdge {
                    edge: EdgeId(i as u32),
                });
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`RoadGraph`].
#[derive(Debug, Default)]
pub struct RoadGraphBuilder {
    positions: Vec<Point>,
    edges: Vec<Edge>,
}

impl RoadGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection at `p` and returns its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = NodeId(self.positions.len() as u32);
        self.positions.push(p);
        id
    }

    /// Adds a directed segment. The length is the Euclidean distance between
    /// the endpoints unless `length` overrides it (e.g. a curved road).
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: RoadClass,
        traffic_light: bool,
        length: Option<f64>,
    ) -> Result<EdgeId, RoadNetError> {
        let n = self.positions.len() as u32;
        if from.0 >= n || to.0 >= n {
            return Err(RoadNetError::UnknownNode);
        }
        if from == to {
            return Err(RoadNetError::SelfLoop { node: from });
        }
        let geo_len = self.positions[from.index()].distance(&self.positions[to.index()]);
        let length = length.unwrap_or(geo_len).max(1.0);
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from,
            to,
            length,
            class,
            traffic_light,
        });
        Ok(id)
    }

    /// Adds a bidirectional pair of segments and returns `(forward, back)`.
    pub fn add_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        class: RoadClass,
        traffic_light: bool,
    ) -> Result<(EdgeId, EdgeId), RoadNetError> {
        let f = self.add_edge(a, b, class, traffic_light, None)?;
        let r = self.add_edge(b, a, class, traffic_light, None)?;
        Ok((f, r))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Position of a node added earlier.
    pub fn position(&self, n: NodeId) -> Point {
        self.positions[n.index()]
    }

    /// Finalises the adjacency structure.
    pub fn build(self) -> RoadGraph {
        let n = self.positions.len();
        let mut out_deg = vec![0u32; n + 1];
        let mut in_deg = vec![0u32; n + 1];
        for e in &self.edges {
            out_deg[e.from.index() + 1] += 1;
            in_deg[e.to.index() + 1] += 1;
        }
        for i in 1..=n {
            out_deg[i] += out_deg[i - 1];
            in_deg[i] += in_deg[i - 1];
        }
        let mut out_edges = vec![EdgeId(0); self.edges.len()];
        let mut in_edges = vec![EdgeId(0); self.edges.len()];
        let mut out_cursor = out_deg.clone();
        let mut in_cursor = in_deg.clone();
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            out_edges[out_cursor[e.from.index()] as usize] = id;
            out_cursor[e.from.index()] += 1;
            in_edges[in_cursor[e.to.index()] as usize] = id;
            in_cursor[e.to.index()] += 1;
        }
        let mut bbox = BoundingBox::empty();
        for p in &self.positions {
            bbox.expand(*p);
        }
        RoadGraph {
            positions: self.positions,
            edges: self.edges,
            out_index: out_deg,
            out_edges,
            in_index: in_deg,
            in_edges,
            bbox,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> RoadGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = RoadGraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 100.0));
        let n2 = b.add_node(Point::new(100.0, -100.0));
        let n3 = b.add_node(Point::new(200.0, 0.0));
        b.add_edge(n0, n1, RoadClass::Arterial, false, None)
            .unwrap();
        b.add_edge(n1, n3, RoadClass::Arterial, false, None)
            .unwrap();
        b.add_edge(n0, n2, RoadClass::Local, true, None).unwrap();
        b.add_edge(n2, n3, RoadClass::Local, true, None).unwrap();
        b.build()
    }

    #[test]
    fn builder_produces_consistent_adjacency() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_edges(NodeId(0)).len(), 2);
        assert_eq!(g.in_edges(NodeId(3)).len(), 2);
        assert_eq!(g.out_edges(NodeId(3)).len(), 0);
        for e in g.out_edges(NodeId(0)) {
            assert_eq!(g.edge(*e).from, NodeId(0));
        }
        for e in g.in_edges(NodeId(3)) {
            assert_eq!(g.edge(*e).to, NodeId(3));
        }
        g.validate().unwrap();
    }

    #[test]
    fn edge_lengths_default_to_euclidean() {
        let g = diamond();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let expect = Point::new(0.0, 0.0).distance(&Point::new(100.0, 100.0));
        assert!((g.edge(e).length - expect).abs() < 1e-9);
    }

    #[test]
    fn travel_time_includes_light_delay() {
        let g = diamond();
        let lit = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        let unlit = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let lit_e = g.edge(lit);
        let unlit_e = g.edge(unlit);
        assert!(
            (lit_e.travel_time() - (lit_e.length / RoadClass::Local.speed_mps() + 15.0)).abs()
                < 1e-9
        );
        assert!(
            (unlit_e.travel_time() - unlit_e.length / RoadClass::Arterial.speed_mps()).abs() < 1e-9
        );
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = RoadGraphBuilder::new();
        let n = b.add_node(Point::new(0.0, 0.0));
        assert!(matches!(
            b.add_edge(n, n, RoadClass::Local, false, None),
            Err(RoadNetError::SelfLoop { .. })
        ));
    }

    #[test]
    fn unknown_nodes_rejected() {
        let mut b = RoadGraphBuilder::new();
        let n = b.add_node(Point::new(0.0, 0.0));
        assert!(matches!(
            b.add_edge(n, NodeId(42), RoadClass::Local, false, None),
            Err(RoadNetError::UnknownNode)
        ));
    }

    #[test]
    fn nearest_node_finds_closest() {
        let g = diamond();
        assert_eq!(g.nearest_node(&Point::new(5.0, 5.0)), NodeId(0));
        assert_eq!(g.nearest_node(&Point::new(199.0, 1.0)), NodeId(3));
    }

    #[test]
    fn find_edge_prefers_shortest_parallel() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_edge(a, c, RoadClass::Local, false, Some(500.0))
            .unwrap();
        let short = b
            .add_edge(a, c, RoadClass::Local, false, Some(100.0))
            .unwrap();
        let g = b.build();
        assert_eq!(g.find_edge(a, c), Some(short));
    }

    #[test]
    fn two_way_adds_both_directions() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(50.0, 0.0));
        b.add_two_way(a, c, RoadClass::Collector, false).unwrap();
        let g = b.build();
        assert!(g.find_edge(a, c).is_some());
        assert!(g.find_edge(c, a).is_some());
    }

    #[test]
    fn speeds_monotone_in_class() {
        let speeds: Vec<f64> = RoadClass::ALL.iter().map(|c| c.speed_mps()).collect();
        for w in speeds.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
