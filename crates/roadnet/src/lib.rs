//! # cp-roadnet — road-network substrate for CrowdPlanner
//!
//! This crate provides everything the CrowdPlanner reproduction needs from
//! a digital map:
//!
//! * planar [`geo`]metry primitives;
//! * a compact directed road [`graph`] with road classes and traffic lights;
//! * a deterministic synthetic-city [`generator`] (the substitute for the
//!   real city the paper evaluated on — see `DESIGN.md` for the
//!   substitution argument);
//! * [`routing`] algorithms: Dijkstra, A*, and Yen's k-shortest paths;
//! * [`path`] metrics (length, time, lights, turns) and route-agreement
//!   similarity;
//! * [`landmark`]s with a uniform-grid spatial index.
//!
//! Everything is deterministic given a `u64` seed and free of global state.

#![warn(missing_docs)]

pub mod error;
pub mod generator;
pub mod geo;
pub mod graph;
pub mod landmark;
pub mod path;
pub mod routing;

pub use error::RoadNetError;
pub use generator::{generate_city, City, CityParams};
pub use geo::{BoundingBox, Point};
pub use graph::{Edge, EdgeId, NodeId, RoadClass, RoadGraph, RoadGraphBuilder};
pub use landmark::{
    generate_landmarks, Landmark, LandmarkCategory, LandmarkGenParams, LandmarkId, LandmarkSet,
};
pub use path::{edge_jaccard, Path};
