//! Error types for the road-network substrate.

use crate::graph::{EdgeId, NodeId};
use std::fmt;

/// Errors produced while constructing or querying a road network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoadNetError {
    /// An edge referenced a node id that was never added.
    UnknownNode,
    /// Self-loop edges are not allowed in a road network.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// A stored edge is structurally invalid (bad endpoints or length).
    InvalidEdge {
        /// The offending edge.
        edge: EdgeId,
    },
    /// No path exists between the requested origin and destination.
    NoPath {
        /// Requested origin.
        from: NodeId,
        /// Requested destination.
        to: NodeId,
    },
    /// A generator parameter was out of its valid range.
    InvalidParameter(&'static str),
}

impl fmt::Display for RoadNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadNetError::UnknownNode => write!(f, "edge references an unknown node"),
            RoadNetError::SelfLoop { node } => {
                write!(f, "self-loop edges are not allowed (node {})", node.0)
            }
            RoadNetError::InvalidEdge { edge } => write!(f, "edge {} is invalid", edge.0),
            RoadNetError::NoPath { from, to } => {
                write!(f, "no path from node {} to node {}", from.0, to.0)
            }
            RoadNetError::InvalidParameter(what) => {
                write!(f, "invalid generator parameter: {what}")
            }
        }
    }
}

impl std::error::Error for RoadNetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(RoadNetError::UnknownNode
            .to_string()
            .contains("unknown node"));
        assert!(RoadNetError::SelfLoop { node: NodeId(7) }
            .to_string()
            .contains('7'));
        assert!(RoadNetError::NoPath {
            from: NodeId(1),
            to: NodeId(2)
        }
        .to_string()
        .contains("no path"));
        assert!(RoadNetError::InvalidParameter("grid too small")
            .to_string()
            .contains("grid too small"));
    }
}
