//! Paths (routes) over the road graph and their metrics.
//!
//! A [`Path`] is the computer-side representation of a route from the paper:
//! "a sequence [p1, p2, …, pn] which consists of a source, a destination and
//! a sequence of consecutive road intersections in-between" (Definition 1).

use crate::geo::angle_diff;
use crate::graph::{EdgeId, NodeId, RoadGraph};

/// A connected sequence of directed edges in a [`RoadGraph`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    edges: Vec<EdgeId>,
    nodes: Vec<NodeId>,
}

impl Path {
    /// Builds a path from a node sequence, resolving each consecutive pair
    /// to the (shortest) connecting edge. Returns `None` if any pair is not
    /// connected or fewer than two nodes are given.
    pub fn from_nodes(graph: &RoadGraph, nodes: &[NodeId]) -> Option<Path> {
        if nodes.len() < 2 {
            return None;
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            edges.push(graph.find_edge(w[0], w[1])?);
        }
        Some(Path {
            edges,
            nodes: nodes.to_vec(),
        })
    }

    /// Builds a path from an edge sequence, checking connectivity.
    pub fn from_edges(graph: &RoadGraph, edges: Vec<EdgeId>) -> Option<Path> {
        if edges.is_empty() {
            return None;
        }
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        nodes.push(graph.edge(edges[0]).from);
        for w in edges.windows(2) {
            if graph.edge(w[0]).to != graph.edge(w[1]).from {
                return None;
            }
        }
        for &e in &edges {
            nodes.push(graph.edge(e).to);
        }
        Some(Path { edges, nodes })
    }

    /// Source intersection.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination intersection.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// The intersection sequence (source … destination).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path has no edges (never true for constructed paths).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether the path visits any intersection twice.
    pub fn is_simple(&self) -> bool {
        let mut seen: Vec<NodeId> = self.nodes.clone();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// Total length in metres.
    pub fn length(&self, graph: &RoadGraph) -> f64 {
        self.edges.iter().map(|&e| graph.edge(e).length).sum()
    }

    /// Total free-flow travel time in seconds (including expected light
    /// delays).
    pub fn travel_time(&self, graph: &RoadGraph) -> f64 {
        self.edges
            .iter()
            .map(|&e| graph.edge(e).travel_time())
            .sum()
    }

    /// Number of traffic lights passed.
    pub fn traffic_lights(&self, graph: &RoadGraph) -> usize {
        self.edges
            .iter()
            .filter(|&&e| graph.edge(e).traffic_light)
            .count()
    }

    /// Number of "real" turns: consecutive edge pairs whose bearing change
    /// exceeds 30°. Drivers dislike turn-heavy routes; the latent utility
    /// model in `cp-traj` consumes this.
    pub fn turn_count(&self, graph: &RoadGraph) -> usize {
        let threshold = 30.0_f64.to_radians();
        self.nodes
            .windows(3)
            .filter(|w| {
                let a = graph.position(w[0]).bearing(&graph.position(w[1]));
                let b = graph.position(w[1]).bearing(&graph.position(w[2]));
                angle_diff(a, b).abs() > threshold
            })
            .count()
    }

    /// Fraction of the path length travelled on `class` roads.
    pub fn class_fraction(&self, graph: &RoadGraph, class: crate::graph::RoadClass) -> f64 {
        let total = self.length(graph);
        if total == 0.0 {
            return 0.0;
        }
        let on: f64 = self
            .edges
            .iter()
            .map(|&e| graph.edge(e))
            .filter(|e| e.class == class)
            .map(|e| e.length)
            .sum();
        on / total
    }
}

/// Length-weighted Jaccard similarity of the edge sets of two paths.
///
/// This is the agreement measure used by the route-evaluation component:
/// two candidate routes "agree with each other to a high degree" when most
/// of their mileage is shared.
pub fn edge_jaccard(graph: &RoadGraph, a: &Path, b: &Path) -> f64 {
    let mut ea: Vec<EdgeId> = a.edges().to_vec();
    let mut eb: Vec<EdgeId> = b.edges().to_vec();
    ea.sort_unstable();
    ea.dedup();
    eb.sort_unstable();
    eb.dedup();
    let mut inter = 0.0;
    let mut union = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < ea.len() && j < eb.len() {
        match ea[i].cmp(&eb[j]) {
            std::cmp::Ordering::Less => {
                union += graph.edge(ea[i]).length;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += graph.edge(eb[j]).length;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                inter += graph.edge(ea[i]).length;
                union += graph.edge(ea[i]).length;
                i += 1;
                j += 1;
            }
        }
    }
    for &e in &ea[i..] {
        union += graph.edge(e).length;
    }
    for &e in &eb[j..] {
        union += graph.edge(e).length;
    }
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::graph::{RoadClass, RoadGraphBuilder};

    fn line_graph(n: usize) -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        for w in nodes.windows(2) {
            b.add_two_way(w[0], w[1], RoadClass::Collector, false)
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn from_nodes_resolves_edges() {
        let g = line_graph(4);
        let p = Path::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.destination(), NodeId(3));
        assert!((p.length(&g) - 300.0).abs() < 1e-9);
        assert!(p.is_simple());
    }

    #[test]
    fn from_nodes_rejects_disconnected() {
        let g = line_graph(4);
        assert!(Path::from_nodes(&g, &[NodeId(0), NodeId(3)]).is_none());
        assert!(Path::from_nodes(&g, &[NodeId(0)]).is_none());
    }

    #[test]
    fn from_edges_checks_connectivity() {
        let g = line_graph(3);
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        let e10 = g.find_edge(NodeId(1), NodeId(0)).unwrap();
        assert!(Path::from_edges(&g, vec![e01, e12]).is_some());
        assert!(Path::from_edges(&g, vec![e01, e10]).is_some()); // 0->1->0, connected but not simple
        assert!(Path::from_edges(&g, vec![e12, e01]).is_none());
        assert!(Path::from_edges(&g, vec![]).is_none());
    }

    #[test]
    fn non_simple_detected() {
        let g = line_graph(3);
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e10 = g.find_edge(NodeId(1), NodeId(0)).unwrap();
        let p = Path::from_edges(&g, vec![e01, e10]).unwrap();
        assert!(!p.is_simple());
    }

    #[test]
    fn turn_count_on_l_shape() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(100.0, 100.0));
        b.add_edge(a, c, RoadClass::Local, false, None).unwrap();
        b.add_edge(c, d, RoadClass::Local, false, None).unwrap();
        let g = b.build();
        let p = Path::from_nodes(&g, &[a, c, d]).unwrap();
        assert_eq!(p.turn_count(&g), 1);
    }

    #[test]
    fn straight_path_has_no_turns() {
        let g = line_graph(5);
        let p =
            Path::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]).unwrap();
        assert_eq!(p.turn_count(&g), 0);
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let g = line_graph(5);
        let p1 = Path::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let p2 = Path::from_nodes(&g, &[NodeId(2), NodeId(3), NodeId(4)]).unwrap();
        assert!((edge_jaccard(&g, &p1, &p1) - 1.0).abs() < 1e-12);
        assert_eq!(edge_jaccard(&g, &p1, &p2), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let g = line_graph(4);
        let p1 = Path::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let p2 = Path::from_nodes(&g, &[NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        // Shared edge 1->2 (100 m); union 300 m.
        let j = edge_jaccard(&g, &p1, &p2);
        assert!((j - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn class_fraction_sums_to_one_over_classes() {
        let g = line_graph(4);
        let p = Path::from_nodes(&g, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let total: f64 = RoadClass::ALL
            .iter()
            .map(|&c| p.class_fraction(&g, c))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
