//! Landmarks and spatial indexing.
//!
//! A landmark (paper Definition 2) is "a geographical object in the space,
//! which is stable and independent of the recommended routes". Landmarks
//! carry a *latent fame* — the hidden ground-truth popularity that drives
//! the synthetic check-in generator — while the *significance* `l.s` that
//! the algorithms actually use is inferred from data by the HITS-like
//! procedure in `cp-traj::significance`, mirroring the paper's pipeline.

use crate::geo::{BoundingBox, Point};
use crate::graph::{NodeId, RoadGraph};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Identifier of a landmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LandmarkId(pub u32);

impl LandmarkId {
    /// The landmark id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Category of a landmark; the worker-knowledge model groups familiarity by
/// category (the paper's "hidden knowledge categories" that PMF discovers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LandmarkCategory {
    /// Restaurants, cafes, bars.
    Food,
    /// Malls, markets, shops.
    Shopping,
    /// Offices, business parks.
    Business,
    /// Parks, stadiums, museums.
    Leisure,
    /// Stations, airports, interchanges.
    Transport,
    /// Schools and universities.
    Education,
}

impl LandmarkCategory {
    /// All categories.
    pub const ALL: [LandmarkCategory; 6] = [
        LandmarkCategory::Food,
        LandmarkCategory::Shopping,
        LandmarkCategory::Business,
        LandmarkCategory::Leisure,
        LandmarkCategory::Transport,
        LandmarkCategory::Education,
    ];

    /// Dense index of the category.
    pub fn index(self) -> usize {
        match self {
            LandmarkCategory::Food => 0,
            LandmarkCategory::Shopping => 1,
            LandmarkCategory::Business => 2,
            LandmarkCategory::Leisure => 3,
            LandmarkCategory::Transport => 4,
            LandmarkCategory::Education => 5,
        }
    }
}

/// A geographical landmark.
#[derive(Debug, Clone)]
pub struct Landmark {
    /// Identifier (dense, index into [`LandmarkSet`]).
    pub id: LandmarkId,
    /// Position in the plane.
    pub position: Point,
    /// Nearest road intersection — the anchor used by trajectory
    /// calibration.
    pub anchor: NodeId,
    /// Latent ground-truth fame in `(0, 1]`; drives check-in generation.
    /// Not visible to the recommendation algorithms.
    pub latent_fame: f64,
    /// Category.
    pub category: LandmarkCategory,
}

/// A dense collection of landmarks plus a uniform-grid spatial index.
#[derive(Debug, Clone)]
pub struct LandmarkSet {
    landmarks: Vec<Landmark>,
    cell_size: f64,
    bbox: BoundingBox,
    cols: usize,
    rows: usize,
    /// `cells[r*cols+c]` lists landmark ids in that cell.
    cells: Vec<Vec<LandmarkId>>,
}

impl LandmarkSet {
    /// Builds the set and its spatial index. `cell_size` should be around
    /// the typical query radius (η_dis); any positive value is correct.
    pub fn new(landmarks: Vec<Landmark>, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut bbox = BoundingBox::empty();
        for l in &landmarks {
            bbox.expand(l.position);
        }
        if landmarks.is_empty() {
            bbox = BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        }
        let cols = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let mut cells = vec![Vec::new(); cols * rows];
        for l in &landmarks {
            let (r, c) = cell_of(&bbox, cell_size, cols, rows, &l.position);
            cells[r * cols + c].push(l.id);
        }
        LandmarkSet {
            landmarks,
            cell_size,
            bbox,
            cols,
            rows,
            cells,
        }
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// The landmark record.
    #[inline]
    pub fn get(&self, id: LandmarkId) -> &Landmark {
        &self.landmarks[id.index()]
    }

    /// Iterator over all landmarks.
    pub fn iter(&self) -> impl Iterator<Item = &Landmark> {
        self.landmarks.iter()
    }

    /// All landmark ids.
    pub fn ids(&self) -> impl Iterator<Item = LandmarkId> + '_ {
        (0..self.landmarks.len() as u32).map(LandmarkId)
    }

    /// Landmarks within `radius` metres of `p`, in id order.
    pub fn within_radius(&self, p: &Point, radius: f64) -> Vec<LandmarkId> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let lo = cell_of(
            &self.bbox,
            self.cell_size,
            self.cols,
            self.rows,
            &Point::new(p.x - radius, p.y - radius),
        );
        let hi = cell_of(
            &self.bbox,
            self.cell_size,
            self.cols,
            self.rows,
            &Point::new(p.x + radius, p.y + radius),
        );
        for r in lo.0..=hi.0 {
            for c in lo.1..=hi.1 {
                for &id in &self.cells[r * self.cols + c] {
                    if self.get(id).position.distance_sq(p) <= r2 {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Nearest landmark to `p` within `max_radius`, if any.
    pub fn nearest(&self, p: &Point, max_radius: f64) -> Option<LandmarkId> {
        self.within_radius(p, max_radius)
            .into_iter()
            .min_by(|&a, &b| {
                let da = self.get(a).position.distance_sq(p);
                let db = self.get(b).position.distance_sq(p);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

fn cell_of(bbox: &BoundingBox, cell: f64, cols: usize, rows: usize, p: &Point) -> (usize, usize) {
    let cx = ((p.x - bbox.min.x) / cell).floor();
    let cy = ((p.y - bbox.min.y) / cell).floor();
    let c = (cx.max(0.0) as usize).min(cols - 1);
    let r = (cy.max(0.0) as usize).min(rows - 1);
    (r, c)
}

/// Parameters for landmark placement.
#[derive(Debug, Clone)]
pub struct LandmarkGenParams {
    /// Number of landmarks to place.
    pub count: usize,
    /// Max offset of a landmark from its anchor intersection, metres.
    pub scatter: f64,
    /// Pareto shape of the latent-fame distribution; smaller = more skew.
    /// The paper's observation that "the White House is world famous but
    /// Pennsylvania Ave is only known by locals" is exactly heavy-tailed
    /// fame.
    pub fame_shape: f64,
    /// Spatial-index cell size (typically η_dis).
    pub cell_size: f64,
}

impl Default for LandmarkGenParams {
    fn default() -> Self {
        LandmarkGenParams {
            count: 120,
            scatter: 40.0,
            fame_shape: 1.2,
            cell_size: 500.0,
        }
    }
}

/// Places `params.count` landmarks near uniformly-sampled intersections of
/// `graph`, with Pareto-tailed latent fame, deterministically from `seed`.
pub fn generate_landmarks(graph: &RoadGraph, params: &LandmarkGenParams, seed: u64) -> LandmarkSet {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let n = graph.node_count() as u32;
    let mut landmarks = Vec::with_capacity(params.count);
    for i in 0..params.count {
        let anchor = NodeId(rng.random_range(0..n));
        let base = graph.position(anchor);
        let dx = rng.random_range(-params.scatter..=params.scatter);
        let dy = rng.random_range(-params.scatter..=params.scatter);
        // Pareto(1, shape) mapped into (0, 1]: fame = min(1, 1/u^(1/shape)) / 10
        // then clamped; keeps a heavy tail with a few very famous landmarks.
        let u: f64 = rng.random_range(1e-6..1.0f64);
        let pareto = u.powf(-1.0 / params.fame_shape);
        let fame = (pareto / 10.0).clamp(0.05, 1.0);
        let category = LandmarkCategory::ALL[rng.random_range(0..LandmarkCategory::ALL.len())];
        landmarks.push(Landmark {
            id: LandmarkId(i as u32),
            position: base.translate(dx, dy),
            anchor,
            latent_fame: fame,
            category,
        });
    }
    LandmarkSet::new(landmarks, params.cell_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_city, CityParams};

    fn setup() -> (crate::generator::City, LandmarkSet) {
        let city = generate_city(&CityParams::small(), 11).unwrap();
        let lms = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 11);
        (city, lms)
    }

    #[test]
    fn generates_requested_count() {
        let (_, lms) = setup();
        assert_eq!(lms.len(), 120);
        assert!(!lms.is_empty());
    }

    #[test]
    fn ids_are_dense() {
        let (_, lms) = setup();
        for (i, id) in lms.ids().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(lms.get(id).id, id);
        }
    }

    #[test]
    fn fame_in_range_and_skewed() {
        let (_, lms) = setup();
        let mut famous = 0;
        for l in lms.iter() {
            assert!(l.latent_fame >= 0.05 && l.latent_fame <= 1.0);
            if l.latent_fame > 0.5 {
                famous += 1;
            }
        }
        // Heavy tail: some famous landmarks, but a minority.
        assert!(famous >= 1);
        assert!(famous < lms.len() / 2);
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let (_, lms) = setup();
        let q = Point::new(700.0, 450.0);
        for radius in [100.0, 400.0, 900.0] {
            let fast = lms.within_radius(&q, radius);
            let mut slow: Vec<LandmarkId> = lms
                .iter()
                .filter(|l| l.position.distance(&q) <= radius)
                .map(|l| l.id)
                .collect();
            slow.sort_unstable();
            assert_eq!(fast, slow, "radius {radius}");
        }
    }

    #[test]
    fn nearest_is_truly_nearest() {
        let (_, lms) = setup();
        let q = Point::new(300.0, 300.0);
        let got = lms.nearest(&q, 5000.0).unwrap();
        let best = lms
            .iter()
            .min_by(|a, b| {
                a.position
                    .distance_sq(&q)
                    .partial_cmp(&b.position.distance_sq(&q))
                    .unwrap()
            })
            .unwrap()
            .id;
        assert_eq!(got, best);
    }

    #[test]
    fn nearest_respects_max_radius() {
        let (_, lms) = setup();
        // Far outside the city.
        let q = Point::new(1e7, 1e7);
        assert!(lms.nearest(&q, 100.0).is_none());
    }

    #[test]
    fn deterministic_in_seed() {
        let city = generate_city(&CityParams::small(), 4).unwrap();
        let a = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 9);
        let b = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.latent_fame, y.latent_fame);
        }
    }

    #[test]
    fn empty_set_queries_are_safe() {
        let lms = LandmarkSet::new(Vec::new(), 100.0);
        assert!(lms.is_empty());
        assert!(lms.within_radius(&Point::new(0.0, 0.0), 50.0).is_empty());
        assert!(lms.nearest(&Point::new(0.0, 0.0), 50.0).is_none());
    }

    #[test]
    fn anchors_are_valid_nodes() {
        let (city, lms) = setup();
        for l in lms.iter() {
            assert!(l.anchor.index() < city.graph.node_count());
            // Landmark must be near its anchor.
            assert!(l.position.distance(&city.graph.position(l.anchor)) <= 40.0 * 1.5);
        }
    }
}
