//! Pluggable request resolution.
//!
//! The executor owns everything shared (truth shards, candidate cache,
//! single-flight table); what *resolving a miss* means is a per-worker
//! strategy behind the [`Resolver`] trait:
//!
//! * [`MachineResolver`] — the machine-only pipeline (agreement
//!   clustering, then the best-machine-guess fallback ranked by learned
//!   source priors). It is a **pure function** of the world and the
//!   request, which is what makes the concurrent service bit-for-bit
//!   deterministic and is the right default for throughput serving;
//! * [`CrowdResolver`] — the full paper pipeline including crowd tasks,
//!   wrapping one [`CrowdPlanner`] per worker thread (each with its own
//!   simulated platform). Crowd outcomes depend on each platform's answer
//!   history, so this resolver trades determinism-under-concurrency for
//!   paper fidelity.

use crate::error::ServiceError;
use cp_core::{
    evaluate_candidates, Config, CrowdPlanner, Evaluation, Resolution, SourceReliability,
    TruthStore,
};
use cp_mining::CandidateRoute;
use cp_roadnet::{LandmarkId, NodeId, Path, RoadGraph};
use cp_traj::TimeOfDay;
use std::sync::Arc;

/// A freshly resolved route.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The recommended route.
    pub path: Path,
    /// How the pipeline decided.
    pub resolution: Resolution,
    /// Confidence of the decision.
    pub confidence: f64,
}

/// Resolves a request the shared layers could not serve.
pub trait Resolver {
    /// Resolves `(from, to, departure)` given the pre-mined `candidates`
    /// (possibly from the shared cache). Implementations may ignore the
    /// candidates and run their own pipeline.
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError>;
}

/// Boxed resolvers resolve by delegation, so trait objects (the
/// platform's worker-local `Box<dyn Resolver + Send>`) plug into the
/// same generic executor paths as concrete resolvers.
impl<R: Resolver + ?Sized> Resolver for Box<R> {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        (**self).resolve(from, to, departure, candidates)
    }
}

/// Machine-only resolution: agreement, else best machine guess ranked by
/// the paper-prior source reliability. Deterministic: identical inputs
/// always produce identical routes, independent of call order or thread
/// interleaving.
///
/// Owns its graph handle (`Arc<RoadGraph>`), so it is `'static` and can
/// live on a resident platform worker as easily as on a caller's stack.
#[derive(Debug)]
pub struct MachineResolver {
    graph: Arc<RoadGraph>,
    cfg: Config,
    /// Evaluation runs against an empty store so the outcome cannot
    /// depend on mutable shared state (the executor's *sharded* store
    /// already handled reuse before resolution).
    no_truths: TruthStore,
    priors: SourceReliability,
}

impl MachineResolver {
    /// Creates a resolver over a shared graph handle with the given
    /// thresholds (see [`World::graph_arc`](crate::World::graph_arc)).
    pub fn new(graph: Arc<RoadGraph>, cfg: Config) -> Self {
        MachineResolver {
            graph,
            cfg,
            no_truths: TruthStore::new(),
            priors: SourceReliability::default(),
        }
    }
}

impl Resolver for MachineResolver {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        _departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        if candidates.is_empty() {
            return Err(ServiceError::NoCandidates);
        }
        match evaluate_candidates(
            &self.graph,
            candidates,
            &self.no_truths,
            from,
            to,
            &self.cfg,
        ) {
            Evaluation::Agreement { path, supporters } => Ok(Resolved {
                path,
                resolution: Resolution::Agreement,
                confidence: supporters as f64 / candidates.len() as f64,
            }),
            Evaluation::Confident { path, confidence } => Ok(Resolved {
                path,
                resolution: Resolution::Confident,
                confidence,
            }),
            Evaluation::Undecided { confidences } => {
                // Best machine guess: highest confidence, ties broken by
                // the source's prior reliability, then by candidate
                // order (which is fixed by the generator).
                let mut best = 0usize;
                let mut best_score = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for (i, c) in candidates.iter().enumerate() {
                    let score = (confidences[i], self.priors.best_of(&[c.source]));
                    if score.0 > best_score.0 || (score.0 == best_score.0 && score.1 > best_score.1)
                    {
                        best = i;
                        best_score = score;
                    }
                }
                Ok(Resolved {
                    path: candidates[best].path.clone(),
                    resolution: Resolution::Fallback,
                    confidence: self.cfg.eta_confidence * 0.5,
                })
            }
        }
    }
}

/// Full-pipeline resolution through one [`CrowdPlanner`] (typically one
/// per worker thread), with the crowd's latent knowledge supplied by an
/// oracle factory: `oracle_for(from, to)` returns the per-request
/// "does the best route pass landmark l?" closure.
///
/// `CrowdPlanner` still borrows its world, so this resolver is
/// lifetime-bound: use it with the closed-batch
/// [`RouteService::serve`](crate::RouteService::serve) (scoped threads),
/// not with the resident [`Platform`](crate::Platform) pool, which
/// requires `'static` resolvers.
pub struct CrowdResolver<'w, F> {
    planner: CrowdPlanner<'w>,
    oracle_for: F,
}

impl<'w, F, O> CrowdResolver<'w, F>
where
    F: Fn(NodeId, NodeId) -> O,
    O: Fn(LandmarkId) -> bool,
{
    /// Wraps a planner and an oracle factory.
    pub fn new(planner: CrowdPlanner<'w>, oracle_for: F) -> Self {
        CrowdResolver {
            planner,
            oracle_for,
        }
    }

    /// The wrapped planner (its private truth store and platform stats).
    pub fn planner(&self) -> &CrowdPlanner<'w> {
        &self.planner
    }
}

impl<'w, F, O> Resolver for CrowdResolver<'w, F>
where
    F: Fn(NodeId, NodeId) -> O,
    O: Fn(LandmarkId) -> bool,
{
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        _candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        let oracle = (self.oracle_for)(from, to);
        let rec = self
            .planner
            .handle_request(from, to, departure, &oracle)
            .map_err(ServiceError::Core)?;
        Ok(Resolved {
            path: rec.path,
            resolution: rec.resolution,
            confidence: rec.confidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_mining::CandidateGenerator;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    #[test]
    fn machine_resolver_is_deterministic_and_endpoint_correct() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let generator = CandidateGenerator::new(&city.graph, &trips.trips);
        let graph = Arc::new(city.graph.clone());
        let mut r1 = MachineResolver::new(Arc::clone(&graph), Config::default());
        let mut r2 = MachineResolver::new(Arc::clone(&graph), Config::default());
        let dep = TimeOfDay::from_hours(8.0);
        for (a, b) in [(0u32, 59u32), (5, 54), (12, 47)] {
            let cands = generator.candidates(NodeId(a), NodeId(b), dep);
            let x = r1.resolve(NodeId(a), NodeId(b), dep, &cands).unwrap();
            let y = r2.resolve(NodeId(a), NodeId(b), dep, &cands).unwrap();
            assert_eq!(x.path, y.path);
            assert_eq!(x.resolution, y.resolution);
            assert_eq!(x.path.source(), NodeId(a));
            assert_eq!(x.path.destination(), NodeId(b));
            assert!(matches!(
                x.resolution,
                Resolution::Agreement | Resolution::Confident | Resolution::Fallback
            ));
        }
    }

    #[test]
    fn machine_resolver_rejects_empty_candidates() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let mut r = MachineResolver::new(Arc::new(city.graph), Config::default());
        assert!(matches!(
            r.resolve(NodeId(0), NodeId(1), TimeOfDay::from_hours(8.0), &[]),
            Err(ServiceError::NoCandidates)
        ));
    }
}
