//! Pluggable request resolution.
//!
//! The executor owns everything shared (truth shards, candidate cache,
//! single-flight table); what *resolving a miss* means is a per-worker
//! strategy behind the [`Resolver`] trait:
//!
//! * [`MachineResolver`] — the machine-only pipeline (agreement
//!   clustering, then the best-machine-guess fallback ranked by learned
//!   source priors). It is a **pure function** of the world and the
//!   request, which is what makes the concurrent service bit-for-bit
//!   deterministic and is the right default for throughput serving;
//! * [`CrowdResolver`] — the full paper pipeline including crowd tasks,
//!   wrapping one owned [`CrowdPlanner`] per worker. The planner is
//!   `Send + 'static` (it holds `Arc` world handles and an
//!   `Arc<dyn CrowdDesk>`), so crowd resolution runs on the resident
//!   [`Platform`](crate::Platform) pool — register a crowd-backed city
//!   with [`Platform::register_city_crowd`](crate::Platform::register_city_crowd).
//!   All of a city's resolvers share one desk, whose reserve → ask →
//!   commit protocol caps every worker's concurrently outstanding
//!   tasks; contention surfaces in the service statistics
//!   (`crowd_quota_rejections`, `crowd_starved`).
//!
//! Crowd outcomes depend on the shared desk's answer history, so a crowd
//! resolver trades determinism-under-concurrency for paper fidelity.

use crate::error::ServiceError;
use cp_core::{
    evaluate_candidates, Config, CrowdPlanner, Evaluation, Resolution, SourceReliability,
    TruthStore,
};
use cp_mining::CandidateRoute;
use cp_roadnet::{LandmarkId, NodeId, Path, RoadGraph};
use cp_traj::TimeOfDay;
use std::sync::Arc;

/// Crowd-side cost and contention observed while resolving one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrowdCost {
    /// Questions answered by all workers for this request.
    pub questions: u64,
    /// Workers who participated.
    pub workers: u64,
    /// Worker reservations refused at the shared desk's cap while
    /// serving this request.
    pub quota_rejections: u64,
    /// Whether the crowd was needed but *every* reservation was refused
    /// (the request fell back to the machine's best guess).
    pub starved: bool,
}

/// A freshly resolved route.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The recommended route.
    pub path: Path,
    /// How the pipeline decided.
    pub resolution: Resolution,
    /// Confidence of the decision.
    pub confidence: f64,
    /// Crowd cost/contention, when a crowd pipeline resolved the
    /// request (`None` for machine-only resolvers).
    pub crowd: Option<CrowdCost>,
}

/// Resolves a request the shared layers could not serve.
pub trait Resolver {
    /// Resolves `(from, to, departure)` given the pre-mined `candidates`
    /// (possibly from the shared cache). Implementations may ignore the
    /// candidates and run their own pipeline.
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError>;
}

/// Boxed resolvers resolve by delegation, so trait objects (the
/// platform's worker-local `Box<dyn Resolver + Send>`) plug into the
/// same generic executor paths as concrete resolvers.
impl<R: Resolver + ?Sized> Resolver for Box<R> {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        (**self).resolve(from, to, departure, candidates)
    }
}

/// Machine-only resolution: agreement, else best machine guess ranked by
/// the paper-prior source reliability. Deterministic: identical inputs
/// always produce identical routes, independent of call order or thread
/// interleaving.
///
/// Owns its graph handle (`Arc<RoadGraph>`), so it is `'static` and can
/// live on a resident platform worker as easily as on a caller's stack.
#[derive(Debug)]
pub struct MachineResolver {
    graph: Arc<RoadGraph>,
    cfg: Config,
    /// Evaluation runs against an empty store so the outcome cannot
    /// depend on mutable shared state (the executor's *sharded* store
    /// already handled reuse before resolution).
    no_truths: TruthStore,
    priors: SourceReliability,
}

impl MachineResolver {
    /// Creates a resolver over a shared graph handle with the given
    /// thresholds (see [`World::graph_arc`](crate::World::graph_arc)).
    pub fn new(graph: Arc<RoadGraph>, cfg: Config) -> Self {
        MachineResolver {
            graph,
            cfg,
            no_truths: TruthStore::new(),
            priors: SourceReliability::default(),
        }
    }
}

impl Resolver for MachineResolver {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        _departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        if candidates.is_empty() {
            return Err(ServiceError::NoCandidates);
        }
        match evaluate_candidates(
            &self.graph,
            candidates,
            &self.no_truths,
            from,
            to,
            &self.cfg,
        ) {
            Evaluation::Agreement { path, supporters } => Ok(Resolved {
                path,
                resolution: Resolution::Agreement,
                confidence: supporters as f64 / candidates.len() as f64,
                crowd: None,
            }),
            Evaluation::Confident { path, confidence } => Ok(Resolved {
                path,
                resolution: Resolution::Confident,
                confidence,
                crowd: None,
            }),
            Evaluation::Undecided { confidences } => {
                // Best machine guess: highest confidence, ties broken by
                // the source's prior reliability, then by candidate
                // order (which is fixed by the generator).
                let mut best = 0usize;
                let mut best_score = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for (i, c) in candidates.iter().enumerate() {
                    let score = (confidences[i], self.priors.best_of(&[c.source]));
                    if score.0 > best_score.0 || (score.0 == best_score.0 && score.1 > best_score.1)
                    {
                        best = i;
                        best_score = score;
                    }
                }
                Ok(Resolved {
                    path: candidates[best].path.clone(),
                    resolution: Resolution::Fallback,
                    confidence: self.cfg.eta_confidence * 0.5,
                    crowd: None,
                })
            }
        }
    }
}

/// Supplies the per-request crowd-knowledge oracle: `oracle_for(from,
/// to)` returns the "does the best route pass landmark l?" closure the
/// simulated workers noisily report.
///
/// `Send + Sync` replaces the old closure-generic parameter, so a
/// factory can be shared (`Arc<dyn OracleFactory>`) by every resolver on
/// the resident pool. Any `Fn(NodeId, NodeId) -> impl Fn(LandmarkId) ->
/// bool` closure implements it via the blanket impl.
pub trait OracleFactory: Send + Sync {
    /// Builds the oracle for one request.
    fn oracle_for(&self, from: NodeId, to: NodeId) -> Box<dyn Fn(LandmarkId) -> bool + '_>;
}

impl<F, O> OracleFactory for F
where
    F: Fn(NodeId, NodeId) -> O + Send + Sync,
    O: Fn(LandmarkId) -> bool + 'static,
{
    fn oracle_for(&self, from: NodeId, to: NodeId) -> Box<dyn Fn(LandmarkId) -> bool + '_> {
        Box::new(self(from, to))
    }
}

/// Full-pipeline resolution through one owned [`CrowdPlanner`]
/// (typically one per platform worker, all sharing the city's crowd
/// desk), with the crowd's latent knowledge supplied by an
/// [`OracleFactory`].
///
/// Owned and `Send + 'static`: registerable on the resident
/// [`Platform`](crate::Platform) pool (see
/// [`Platform::register_city_crowd`](crate::Platform::register_city_crowd))
/// as well as usable with the closed-batch
/// [`RouteService::serve`](crate::RouteService::serve).
pub struct CrowdResolver {
    planner: CrowdPlanner,
    oracle_for: Arc<dyn OracleFactory>,
    fail_when_starved: bool,
}

impl CrowdResolver {
    /// Wraps an owned planner and a shared oracle factory.
    pub fn new(planner: CrowdPlanner, oracle_for: Arc<dyn OracleFactory>) -> Self {
        CrowdResolver {
            planner,
            oracle_for,
            fail_when_starved: false,
        }
    }

    /// When enabled, a request whose crowd task is entirely
    /// quota-starved (every reservation refused) fails with
    /// [`ServiceError::CrowdStarved`] instead of silently serving the
    /// machine's fallback guess — callers that prefer shedding over
    /// degraded answers can retry or re-route.
    pub fn fail_when_starved(mut self, fail: bool) -> Self {
        self.fail_when_starved = fail;
        self
    }

    /// The wrapped planner (its private truth store and statistics).
    pub fn planner(&self) -> &CrowdPlanner {
        &self.planner
    }
}

impl Resolver for CrowdResolver {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        let before = self.planner.stats().clone();
        let oracle = self.oracle_for.oracle_for(from, to);
        // The executor already mined (and cached) the candidate set from
        // the same shared mining state; hand it to the planner by
        // reference so a crowd-backed request neither mines nor copies
        // the candidates twice.
        let rec = self
            .planner
            .handle_request_with_candidates(from, to, departure, Some(candidates), &|l| oracle(l))
            .map_err(ServiceError::Core)?;
        let after = self.planner.stats();
        let starved = after.starved_tasks > before.starved_tasks;
        let quota_rejections = (after.quota_rejections - before.quota_rejections) as u64;
        if starved && self.fail_when_starved {
            return Err(ServiceError::CrowdStarved { quota_rejections });
        }
        Ok(Resolved {
            path: rec.path,
            resolution: rec.resolution,
            confidence: rec.confidence,
            crowd: Some(CrowdCost {
                questions: rec.questions_asked as u64,
                workers: rec.workers_asked as u64,
                quota_rejections,
                starved,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use cp_crowd::{
        AnswerModel, CrowdDesk, Platform, PopulationParams, SharedCrowd, WorkerPopulation,
    };
    use cp_mining::CandidateGenerator;
    use cp_roadnet::{generate_city, generate_landmarks, CityParams, LandmarkGenParams};
    use cp_traj::{generate_checkins, CalibrationParams, TripGenParams};
    use cp_traj::{generate_trips, infer_significance, CheckInGenParams, SignificanceParams};

    #[test]
    fn machine_resolver_is_deterministic_and_endpoint_correct() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let generator = CandidateGenerator::new(&city.graph, &trips.trips);
        let graph = Arc::new(city.graph.clone());
        let mut r1 = MachineResolver::new(Arc::clone(&graph), Config::default());
        let mut r2 = MachineResolver::new(Arc::clone(&graph), Config::default());
        let dep = TimeOfDay::from_hours(8.0);
        for (a, b) in [(0u32, 59u32), (5, 54), (12, 47)] {
            let cands = generator.candidates(NodeId(a), NodeId(b), dep);
            let x = r1.resolve(NodeId(a), NodeId(b), dep, &cands).unwrap();
            let y = r2.resolve(NodeId(a), NodeId(b), dep, &cands).unwrap();
            assert_eq!(x.path, y.path);
            assert_eq!(x.resolution, y.resolution);
            assert_eq!(x.crowd, None, "machine resolution reports no crowd cost");
            assert_eq!(x.path.source(), NodeId(a));
            assert_eq!(x.path.destination(), NodeId(b));
            assert!(matches!(
                x.resolution,
                Resolution::Agreement | Resolution::Confident | Resolution::Fallback
            ));
        }
    }

    #[test]
    fn machine_resolver_rejects_empty_candidates() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let mut r = MachineResolver::new(Arc::new(city.graph), Config::default());
        assert!(matches!(
            r.resolve(NodeId(0), NodeId(1), TimeOfDay::from_hours(8.0), &[]),
            Err(ServiceError::NoCandidates)
        ));
    }

    fn crowd_fixture(seed: u64) -> (Arc<World>, CrowdResolver, Arc<SharedCrowd>) {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let landmarks = generate_landmarks(&city.graph, &LandmarkGenParams::default(), seed);
        let trips = generate_trips(&city.graph, &TripGenParams::default(), seed).unwrap();
        let checkins =
            generate_checkins(&city.graph, &landmarks, &CheckInGenParams::default(), seed);
        let significance = infer_significance(
            &city.graph,
            &landmarks,
            &checkins,
            &trips,
            &CalibrationParams::default(),
            &SignificanceParams::default(),
        );
        let world = Arc::new(World::new(city.graph.clone(), trips.trips.clone()));
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), seed);
        let mut platform = Platform::new(pop, AnswerModel::default(), seed);
        platform.warm_up(&landmarks, 10);
        let desk = Arc::new(SharedCrowd::new(platform, 5));
        let planner = CrowdPlanner::with_mining_state(
            world.graph_arc(),
            Arc::new(landmarks),
            Arc::new(significance),
            world.trips_arc(),
            world.transfer_arc(),
            world.mpr,
            world.mfp,
            world.ldr,
            Arc::clone(&desk) as Arc<dyn CrowdDesk>,
            Config::default(),
        )
        .unwrap();
        // Oracle: "the landmark's id is even" — deterministic latent
        // knowledge good enough for resolver plumbing tests.
        let factory: Arc<dyn OracleFactory> =
            Arc::new(|_from: NodeId, _to: NodeId| |l: LandmarkId| l.0.is_multiple_of(2));
        let resolver = CrowdResolver::new(planner, factory);
        (world, resolver, desk)
    }

    #[test]
    fn crowd_resolver_is_send_static_and_reports_crowd_cost() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<CrowdResolver>();

        let (world, mut resolver, desk) = crowd_fixture(7);
        let dep = TimeOfDay::from_hours(8.0);
        let candidates = world.candidates(NodeId(0), NodeId(59), dep);
        let rec = resolver
            .resolve(NodeId(0), NodeId(59), dep, &candidates)
            .unwrap();
        assert_eq!(rec.path.source(), NodeId(0));
        assert_eq!(rec.path.destination(), NodeId(59));
        let cost = rec.crowd.expect("crowd resolution reports its cost");
        assert!(!cost.starved);
        assert!(desk.desk_stats().is_drained());
        assert_eq!(resolver.planner().stats().requests, 1);
    }
}
