//! Service-level errors.

use cp_core::CoreError;

/// Why a request could not be served.
#[derive(Debug)]
pub enum ServiceError {
    /// No source could connect the OD pair.
    NoCandidates,
    /// The underlying planner pipeline failed.
    Core(CoreError),
    /// The leader of a deduplicated flight failed; followers surface
    /// this instead of retrying (callers may resubmit).
    LeaderFailed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NoCandidates => write!(f, "no candidate route connects the OD pair"),
            ServiceError::Core(e) => write!(f, "planner pipeline error: {e}"),
            ServiceError::LeaderFailed => {
                write!(f, "the deduplicated in-flight request failed; resubmit")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}
