//! Service-level errors.

use crate::world::CityId;
use cp_core::CoreError;

/// Why a request could not be served (or admitted).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No source could connect the OD pair.
    NoCandidates,
    /// The underlying planner pipeline failed.
    Core(CoreError),
    /// The leader of a deduplicated flight failed; followers surface
    /// this instead of retrying (callers may resubmit).
    LeaderFailed,
    /// The platform's bounded ingress queue is full — admission control
    /// rejected the request. Callers should back off and resubmit.
    Busy,
    /// The request names a city no world was registered under.
    UnknownCity(CityId),
    /// The platform is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request's city was deregistered at runtime
    /// (`Platform::deregister_city`). Queued tickets are shed with this
    /// terminal error when the city drains; later submissions are
    /// rejected with it immediately. The city is gone — resubmitting
    /// will not help.
    CityOffboarded(CityId),
    /// The resolver panicked while serving this request. The platform
    /// worker survives (the panic is contained and the worker's resolver
    /// is rebuilt); callers may resubmit.
    ResolverPanicked,
    /// The crowd was required but entirely quota-starved: every selected
    /// worker's reservation was refused at the shared desk's
    /// `max_outstanding` cap. Only surfaced by crowd resolvers opted
    /// into strict shedding (`CrowdResolver::fail_when_starved`);
    /// otherwise starvation degrades to a machine fallback. Either way
    /// it is visible in the `crowd_starved` statistics.
    CrowdStarved {
        /// Reservations refused while serving this request.
        quota_rejections: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NoCandidates => write!(f, "no candidate route connects the OD pair"),
            ServiceError::Core(e) => write!(f, "planner pipeline error: {e}"),
            ServiceError::LeaderFailed => {
                write!(f, "the deduplicated in-flight request failed; resubmit")
            }
            ServiceError::Busy => {
                write!(f, "ingress queue full; back off and resubmit")
            }
            ServiceError::UnknownCity(city) => {
                write!(f, "no world registered under {city}")
            }
            ServiceError::ShuttingDown => {
                write!(f, "the platform is shutting down")
            }
            ServiceError::CityOffboarded(city) => {
                write!(f, "{city} was deregistered and no longer serves")
            }
            ServiceError::ResolverPanicked => {
                write!(
                    f,
                    "the resolver panicked while serving the request; resubmit"
                )
            }
            ServiceError::CrowdStarved { quota_rejections } => {
                write!(
                    f,
                    "crowd quota-starved: all {quota_rejections} worker reservations were refused; back off and resubmit"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServiceError::Busy.to_string().contains("queue full"));
        assert!(ServiceError::CrowdStarved {
            quota_rejections: 9
        }
        .to_string()
        .contains("quota-starved"));
        assert!(ServiceError::UnknownCity(CityId(9))
            .to_string()
            .contains("city#9"));
        assert!(ServiceError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(ServiceError::CityOffboarded(CityId(3))
            .to_string()
            .contains("city#3"));
    }

    #[test]
    fn admission_errors_are_comparable() {
        assert_eq!(ServiceError::Busy, ServiceError::Busy);
        assert_ne!(
            ServiceError::UnknownCity(CityId(1)),
            ServiceError::UnknownCity(CityId(2))
        );
    }
}
