//! Span-level request tracing and lock-contention attribution.
//!
//! PRs 1–5 made the serving stack fast on one worker; this module makes
//! it *explainable* at many. Every request's lifetime is attributed to
//! pipeline [`Stage`]s — ingress queue wait, batch collection, truth
//! lookup, candidate-cache lookup, flight-table wait, artifact
//! fetch/build, fused mining, machine/crowd resolution, truth commit —
//! and every contended primitive (the ingress mutex, truth-shard
//! `RwLock`s, artifact-cache and candidate-cache mutexes, the flight
//! table) counts how long acquisitions actually blocked ([`LockStats`]).
//!
//! Three cost tiers, selected per city by [`TraceConfig`] in
//! [`ServiceConfig`](crate::ServiceConfig):
//!
//! * **Off** (default) — spans read no clock and allocate nothing; the
//!   only residue is one enum match per instrumentation point.
//! * **Counters** — each span records into per-stage log₂ latency
//!   histograms folded into [`ServiceStats`] (Relaxed atomics, still no
//!   allocation on the serve path), and lock waits are timed via
//!   try-lock-first acquisition (an uncontended lock never reads the
//!   clock).
//! * **Sampled** — counters plus every `every`-th `handle`/
//!   `serve_coalesced` call captures a complete [`RequestTrace`] (all
//!   spans in order) into a bounded ring buffer, exportable as JSON via
//!   [`Platform::trace_report`](crate::Platform::trace_report).
//!
//! Instrumentation is proven byte-identical to untraced serving by the
//! `trace_equivalence` proptest, and the zero-allocation claim for
//! `Off` is enforced by the `trace_overhead` counting-allocator test.

use crate::stats::ServiceStats;
use cp_roadnet::NodeId;
use cp_traj::TimeOfDay;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::{Duration, Instant};

/// A pipeline stage a request's sojourn time can be attributed to.
///
/// Spans are **disjoint** (never nested), so a request's attributed
/// stage total is always ≤ its end-to-end sojourn; the remainder is
/// uninstrumented glue (queue bookkeeping, result fan-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Waiting in the platform ingress queue for a worker (measured at
    /// dispatch from the ticket's submission instant; for run members
    /// collected by the batcher this includes the collection window).
    QueueWait,
    /// The batcher holding a run open for same-cell arrivals
    /// (`collect_run`; booked once per run against its seed request).
    BatchCollect,
    /// Sharded truth-store lookups (pre-pass and leader double-checks).
    TruthLookup,
    /// Candidate-LRU probes.
    CacheLookup,
    /// Blocking on another caller's in-flight resolution (single-flight
    /// follower waits).
    FlightWait,
    /// Fetching or building per-origin all-day mining artifacts and
    /// period transfer networks ([`MiningArtifactCache`](crate::MiningArtifactCache)).
    ArtifactFetch,
    /// Candidate generation (fused artifact-backed or targeted).
    Mining,
    /// Machine resolution (deterministic planner; also crowd-path errors
    /// other than starvation).
    ResolveMachine,
    /// Crowd resolution (desk round-trips; includes quota-starved
    /// attempts).
    ResolveCrowd,
    /// Depositing the verified truth into the sharded store.
    Commit,
}

impl Stage {
    /// Number of stages (array dimension for per-stage histograms).
    pub const COUNT: usize = 10;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::BatchCollect,
        Stage::TruthLookup,
        Stage::CacheLookup,
        Stage::FlightWait,
        Stage::ArtifactFetch,
        Stage::Mining,
        Stage::ResolveMachine,
        Stage::ResolveCrowd,
        Stage::Commit,
    ];

    /// Stable snake_case name (used in trace-report JSON and bench
    /// attribution rows).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::BatchCollect => "batch_collect",
            Stage::TruthLookup => "truth_lookup",
            Stage::CacheLookup => "cache_lookup",
            Stage::FlightWait => "flight_wait",
            Stage::ArtifactFetch => "artifact_fetch",
            Stage::Mining => "mining",
            Stage::ResolveMachine => "resolve_machine",
            Stage::ResolveCrowd => "resolve_crowd",
            Stage::Commit => "commit",
        }
    }

    /// The stage's index into per-stage arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A contended synchronisation primitive whose acquisition waits are
/// attributed separately (the scaling-ceiling suspects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum LockSite {
    /// The ingress path: in a per-city trace this is the city's own
    /// sharded queue mutex; in the platform aggregate it additionally
    /// folds in the shared DRR scheduler lock.
    Ingress,
    /// The truth store's per-shard `RwLock`s (reads and writes pooled).
    TruthShards,
    /// The candidate-LRU mutex.
    CandidateCache,
    /// The mining-artifact cache's origin/period mutexes.
    ArtifactCache,
    /// The single-flight table's map mutex.
    FlightTable,
}

impl LockSite {
    /// Number of lock sites (array dimension for lock summaries).
    pub const COUNT: usize = 5;

    /// Every site, in order.
    pub const ALL: [LockSite; LockSite::COUNT] = [
        LockSite::Ingress,
        LockSite::TruthShards,
        LockSite::CandidateCache,
        LockSite::ArtifactCache,
        LockSite::FlightTable,
    ];

    /// Stable snake_case name (used in trace-report JSON).
    pub fn name(self) -> &'static str {
        match self {
            LockSite::Ingress => "ingress",
            LockSite::TruthShards => "truth_shards",
            LockSite::CandidateCache => "candidate_cache",
            LockSite::ArtifactCache => "artifact_cache",
            LockSite::FlightTable => "flight_table",
        }
    }

    /// The site's index into per-site arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Per-city tracing configuration (a field of
/// [`ServiceConfig`](crate::ServiceConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No instrumentation: spans read no clock and allocate nothing.
    #[default]
    Off,
    /// Per-stage histograms + lock-wait counters (Relaxed atomics; no
    /// allocation on the serve path).
    Counters,
    /// Counters plus complete per-request traces, sampled into a
    /// bounded ring buffer.
    Sampled {
        /// Sample every n-th `handle`/`serve_coalesced` call (0 is
        /// treated as 1: sample everything).
        every: u64,
        /// Most sampled traces retained (oldest dropped first; 0 is
        /// treated as 1).
        ring: usize,
    },
}

impl TraceConfig {
    /// Counters-only tracing.
    pub fn counters() -> Self {
        TraceConfig::Counters
    }

    /// Sampled-full tracing: counters plus every `every`-th call's
    /// complete trace, at most `ring` retained.
    pub fn sampled(every: u64, ring: usize) -> Self {
        TraceConfig::Sampled { every, ring }
    }

    /// Whether any instrumentation (counters or sampling) is on.
    pub fn enabled(&self) -> bool {
        !matches!(self, TraceConfig::Off)
    }

    /// Whether complete per-request traces are captured.
    pub fn samples(&self) -> bool {
        matches!(self, TraceConfig::Sampled { .. })
    }
}

/// One stage's latency distribution in a
/// [`StatsSnapshot`](crate::StatsSnapshot) (log₂ buckets: percentiles
/// are upper bucket edges, like the request-latency summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSummary {
    /// Spans recorded.
    pub count: u64,
    /// Total time attributed to the stage.
    pub total: Duration,
    /// Median span (bucket upper edge).
    pub p50: Duration,
    /// 95th-percentile span (bucket upper edge).
    pub p95: Duration,
    /// Longest span.
    pub max: Duration,
}

/// One lock site's contention summary: how many acquisitions actually
/// blocked, and for how long in total. Uncontended acquisitions are
/// free (try-lock first; the clock is read only after a failed try).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockSummary {
    /// Acquisitions that found the lock held.
    pub waits: u64,
    /// Total time spent blocked acquiring.
    pub wait: Duration,
    /// Acquisitions that found the lock poisoned (a holder panicked).
    /// The guard is recovered and serving continues — the counter is
    /// the only residue, so a contained resolver panic can never
    /// cascade into the tracing layer.
    pub poisoned: u64,
}

/// Contention counters for one lock site. Disabled (the default) it
/// adds a single relaxed load per acquisition; enabled, acquisitions
/// try-lock first and only a failed try reads the clock and times the
/// blocking acquire.
#[derive(Debug, Default)]
pub struct LockStats {
    enabled: AtomicBool,
    waits: AtomicU64,
    wait_ns: AtomicU64,
    poisoned: AtomicU64,
}

impl LockStats {
    /// Fresh, disabled counters.
    pub fn new() -> Self {
        LockStats::default()
    }

    /// Turns contention timing on or off (set once at service
    /// construction; flipping mid-flight is harmless but mixes regimes).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether contention timing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A point-in-time summary.
    pub fn summary(&self) -> LockSummary {
        LockSummary {
            waits: self.waits.load(Ordering::Relaxed),
            wait: Duration::from_nanos(self.wait_ns.load(Ordering::Relaxed)),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Recovers the guard out of a poisoning error, counting the event.
    /// A lock is poisoned when a holder panicked; every structure guarded
    /// by `LockStats` is counters or caches whose partial updates are
    /// safe to observe, so serving continues.
    fn recover<G>(&self, e: std::sync::PoisonError<G>) -> G {
        self.poisoned.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    }

    fn record(&self, blocked: Duration) {
        self.waits.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(
            blocked.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// Acquires `mutex`, timing the wait iff the lock was contended.
    pub fn lock<'a, T>(&self, mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
        if !self.is_enabled() {
            return mutex.lock().unwrap_or_else(|e| self.recover(e));
        }
        match mutex.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                let t0 = Instant::now();
                let guard = mutex.lock().unwrap_or_else(|e| self.recover(e));
                self.record(t0.elapsed());
                guard
            }
            Err(TryLockError::Poisoned(e)) => self.recover(e),
        }
    }

    /// Read-acquires `rwlock`, timing the wait iff it was contended.
    pub fn read<'a, T>(&self, rwlock: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
        if !self.is_enabled() {
            return rwlock.read().unwrap_or_else(|e| self.recover(e));
        }
        match rwlock.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                let t0 = Instant::now();
                let guard = rwlock.read().unwrap_or_else(|e| self.recover(e));
                self.record(t0.elapsed());
                guard
            }
            Err(TryLockError::Poisoned(e)) => self.recover(e),
        }
    }

    /// Write-acquires `rwlock`, timing the wait iff it was contended.
    pub fn write<'a, T>(&self, rwlock: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
        if !self.is_enabled() {
            return rwlock.write().unwrap_or_else(|e| self.recover(e));
        }
        match rwlock.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                let t0 = Instant::now();
                let guard = rwlock.write().unwrap_or_else(|e| self.recover(e));
                self.record(t0.elapsed());
                guard
            }
            Err(TryLockError::Poisoned(e)) => self.recover(e),
        }
    }
}

/// One sampled call's complete trace: the seed request's identity, how
/// many requests the call covered, its outcome, the end-to-end service
/// time and every span in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Seed request origin.
    pub from: NodeId,
    /// Seed request destination.
    pub to: NodeId,
    /// Seed request departure (seconds since midnight).
    pub departure_s: f64,
    /// Requests the traced call served (1 for `handle`; the run size
    /// for `serve_coalesced`).
    pub batch_size: usize,
    /// The seed request's outcome: `"truth_hit"`, `"dedup"`,
    /// `"resolved"` or `"error"`.
    pub outcome: &'static str,
    /// End-to-end service time of the traced call (excludes queue
    /// wait, which is attributed at the platform layer).
    pub total: Duration,
    /// Spans in the order they were recorded.
    pub spans: Vec<(Stage, Duration)>,
}

/// The per-service tracing engine: holds the configuration, the
/// sampling tick and the bounded ring of captured traces. Per-stage
/// histograms live in the service's [`ServiceStats`] (so the platform's
/// exact cross-city `absorb` covers them too).
#[derive(Debug)]
pub struct SpanRecorder {
    cfg: TraceConfig,
    tick: AtomicU64,
    ring: Mutex<VecDeque<RequestTrace>>,
}

impl SpanRecorder {
    /// A recorder for the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        SpanRecorder {
            cfg,
            tick: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Whether any instrumentation is on.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Begins one `handle`/`serve_coalesced` call's trace context. Off:
    /// a no-op context (no clock, no allocation). Counters: spans
    /// record into `stats`. Sampled: additionally, every `every`-th
    /// call collects its spans for the ring.
    pub fn call<'a>(&self, stats: &'a ServiceStats) -> CallTrace<'a> {
        match self.cfg {
            TraceConfig::Off => CallTrace {
                stats: None,
                events: None,
            },
            TraceConfig::Counters => CallTrace {
                stats: Some(stats),
                events: None,
            },
            TraceConfig::Sampled { every, .. } => {
                let n = self.tick.fetch_add(1, Ordering::Relaxed);
                CallTrace {
                    stats: Some(stats),
                    events: n.is_multiple_of(every.max(1)).then(Vec::new),
                }
            }
        }
    }

    /// Completes a call's trace context: if the call was sampled, its
    /// spans become a [`RequestTrace`] in the bounded ring.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &self,
        tr: CallTrace<'_>,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        batch_size: usize,
        outcome: &'static str,
        total: Duration,
    ) {
        let Some(events) = tr.events else { return };
        let TraceConfig::Sampled { ring, .. } = self.cfg else {
            return;
        };
        let trace = RequestTrace {
            from,
            to,
            departure_s: departure.0,
            batch_size,
            outcome,
            total,
            spans: events
                .into_iter()
                .map(|(stage, ns)| (stage, Duration::from_nanos(ns)))
                .collect(),
        };
        let mut buf = self.ring.lock().expect("trace ring poisoned");
        while buf.len() >= ring.max(1) {
            buf.pop_front();
        }
        buf.push_back(trace);
    }

    /// A copy of the sampled traces currently retained (oldest first).
    pub fn samples(&self) -> Vec<RequestTrace> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// One `handle`/`serve_coalesced` call's tracing context. Obtain with
/// [`SpanRecorder::call`], open disjoint spans with [`CallTrace::span`]
/// (or time manually via [`CallTrace::clock`]/[`CallTrace::record`]
/// when the stage is only known afterwards), and hand back to
/// [`SpanRecorder::finish`].
pub struct CallTrace<'a> {
    /// `None` when tracing is off — every operation short-circuits.
    stats: Option<&'a ServiceStats>,
    /// `Some` when this call was sampled: spans collected for the ring.
    events: Option<Vec<(Stage, u64)>>,
}

impl<'a> CallTrace<'a> {
    /// Whether this context records anything (false ⇒ every span is
    /// free).
    pub fn active(&self) -> bool {
        self.stats.is_some()
    }

    /// Opens a scoped span: time from now until the guard drops is
    /// attributed to `stage`. When tracing is off no clock is read.
    pub fn span<'c>(&'c mut self, stage: Stage) -> SpanGuard<'c, 'a> {
        let t0 = self.clock();
        SpanGuard {
            tr: self,
            stage,
            t0,
        }
    }

    /// Reads the clock iff tracing is on (pair with
    /// [`CallTrace::record`] for stages decided after the fact, e.g.
    /// machine vs crowd resolution).
    pub fn clock(&self) -> Option<Instant> {
        self.stats.map(|_| Instant::now())
    }

    /// Attributes the time since `t0` (from [`CallTrace::clock`]) to
    /// `stage`. A `None` start is a no-op.
    pub fn record(&mut self, stage: Stage, t0: Option<Instant>) {
        let (Some(stats), Some(t0)) = (self.stats, t0) else {
            return;
        };
        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        stats.record_stage(stage, ns);
        if let Some(events) = &mut self.events {
            events.push((stage, ns));
        }
    }
}

/// A scoped stage timer: created by [`CallTrace::span`], records on
/// drop.
pub struct SpanGuard<'c, 'a> {
    tr: &'c mut CallTrace<'a>,
    stage: Stage,
    t0: Option<Instant>,
}

impl Drop for SpanGuard<'_, '_> {
    fn drop(&mut self) {
        let t0 = self.t0.take();
        self.tr.record(self.stage, t0);
    }
}

/// One city's slice of a [`TraceReport`].
#[derive(Debug, Clone)]
pub struct CityTrace {
    /// The city's platform index.
    pub city: u32,
    /// Per-stage latency attribution (from the city's histograms).
    pub stages: [StageSummary; Stage::COUNT],
    /// Per-site lock contention. The ingress row is this city's own
    /// sharded queue mutex; the shared DRR scheduler lock is reported
    /// at the report's top level.
    pub locks: [LockSummary; LockSite::COUNT],
    /// Sampled complete traces (oldest first).
    pub traces: Vec<RequestTrace>,
}

/// A platform-wide trace export: per-city stage attribution, lock
/// contention and sampled request traces, serialisable to JSON for
/// point-in-time debugging (see
/// [`Platform::trace_report`](crate::Platform::trace_report)).
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Contention on the shared DRR scheduler lock (the only ingress
    /// lock left that all cities touch; per-city queue mutexes are in
    /// each [`CityTrace`]'s lock table).
    pub ingress: LockSummary,
    /// Durability counters (`None` with durability off).
    pub durability: Option<crate::durable::DurabilitySnapshot>,
    /// Injected-fault counters (`None` with chaos off).
    pub chaos: Option<crate::chaos::ChaosSnapshot>,
    /// Every registered city's attribution and samples.
    pub cities: Vec<CityTrace>,
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

impl TraceReport {
    /// Total sampled traces across all cities.
    pub fn total_traces(&self) -> usize {
        self.cities.iter().map(|c| c.traces.len()).sum()
    }

    /// Hand-rolled JSON export (std-only; all stage/site names are
    /// static snake_case, so no escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"ingress\": ");
        out.push_str(&format!(
            "{{\"waits\": {}, \"wait_us\": {:.1}}},\n",
            self.ingress.waits,
            us(self.ingress.wait)
        ));
        if let Some(d) = &self.durability {
            out.push_str(&format!(
                "  \"durability\": {{\"events_logged\": {}, \"events_shed\": {}, \
                 \"wal_bytes\": {}, \"io_errors\": {}, \"write_retries\": {}, \
                 \"writes_recovered\": {}, \"checkpoints\": {}, \
                 \"last_checkpoint_seq\": {}}},\n",
                d.events_logged,
                d.events_shed,
                d.wal_bytes,
                d.io_errors,
                d.write_retries,
                d.writes_recovered,
                d.checkpoints,
                d.last_checkpoint_seq
            ));
        }
        if let Some(c) = &self.chaos {
            out.push_str(&format!(
                "  \"chaos\": {{\"seed\": {}, \"crowd_no_shows\": {}, \
                 \"crowd_slow_answers\": {}, \"slow_workers\": {}, \
                 \"stalled_workers\": {}, \"resolver_panics\": {}, \
                 \"durability_io_errors\": {}, \"generation_bumps\": {}}},\n",
                c.seed,
                c.crowd_no_shows,
                c.crowd_slow_answers,
                c.slow_workers,
                c.stalled_workers,
                c.resolver_panics,
                c.durability_io_errors,
                c.generation_bumps
            ));
        }
        out.push_str("  \"cities\": [\n");
        for (ci, city) in self.cities.iter().enumerate() {
            out.push_str(&format!("    {{\"city\": {},\n", city.city));
            out.push_str("     \"stages\": [");
            let mut first = true;
            for stage in Stage::ALL {
                let s = &city.stages[stage.index()];
                if s.count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "{{\"stage\": \"{}\", \"count\": {}, \"total_us\": {:.1}, \
                     \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"max_us\": {:.1}}}",
                    stage.name(),
                    s.count,
                    us(s.total),
                    us(s.p50),
                    us(s.p95),
                    us(s.max)
                ));
            }
            out.push_str("],\n     \"locks\": [");
            let mut first = true;
            for site in LockSite::ALL {
                let l = &city.locks[site.index()];
                if l.waits == 0 && l.poisoned == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "{{\"site\": \"{}\", \"waits\": {}, \"wait_us\": {:.1}, \
                     \"poisoned\": {}}}",
                    site.name(),
                    l.waits,
                    us(l.wait),
                    l.poisoned
                ));
            }
            out.push_str("],\n     \"traces\": [\n");
            for (ti, trace) in city.traces.iter().enumerate() {
                out.push_str(&format!(
                    "       {{\"from\": {}, \"to\": {}, \"departure_s\": {:.1}, \
                     \"batch\": {}, \"outcome\": \"{}\", \"total_us\": {:.1}, \"spans\": [",
                    trace.from.0,
                    trace.to.0,
                    trace.departure_s,
                    trace.batch_size,
                    trace.outcome,
                    us(trace.total)
                ));
                for (si, (stage, d)) in trace.spans.iter().enumerate() {
                    if si > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[\"{}\", {:.1}]", stage.name(), us(*d)));
                }
                out.push_str("]}");
                if ti + 1 < city.traces.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("     ]}");
            if ci + 1 < self.cities.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_context_reads_no_clock_and_records_nothing() {
        let stats = ServiceStats::new();
        let recorder = SpanRecorder::new(TraceConfig::Off);
        let mut tr = recorder.call(&stats);
        assert!(!tr.active());
        {
            let _s = tr.span(Stage::TruthLookup);
        }
        assert!(tr.clock().is_none());
        recorder.finish(
            tr,
            NodeId(0),
            NodeId(1),
            TimeOfDay::from_hours(8.0),
            1,
            "resolved",
            Duration::from_micros(5),
        );
        let snap = stats.snapshot();
        assert_eq!(snap.stages[Stage::TruthLookup.index()].count, 0);
        assert!(recorder.samples().is_empty());
    }

    #[test]
    fn counters_record_stage_histograms_but_no_samples() {
        let stats = ServiceStats::new();
        let recorder = SpanRecorder::new(TraceConfig::counters());
        let mut tr = recorder.call(&stats);
        assert!(tr.active());
        {
            let _s = tr.span(Stage::Mining);
        }
        let t0 = tr.clock();
        tr.record(Stage::ResolveMachine, t0);
        recorder.finish(
            tr,
            NodeId(0),
            NodeId(1),
            TimeOfDay::from_hours(8.0),
            1,
            "resolved",
            Duration::from_micros(5),
        );
        let snap = stats.snapshot();
        assert_eq!(snap.stages[Stage::Mining.index()].count, 1);
        assert_eq!(snap.stages[Stage::ResolveMachine.index()].count, 1);
        assert!(recorder.samples().is_empty());
    }

    #[test]
    fn sampling_honours_every_and_bounds_the_ring() {
        let stats = ServiceStats::new();
        let recorder = SpanRecorder::new(TraceConfig::sampled(2, 3));
        for i in 0..10u32 {
            let mut tr = recorder.call(&stats);
            {
                let _s = tr.span(Stage::TruthLookup);
            }
            recorder.finish(
                tr,
                NodeId(i),
                NodeId(i + 1),
                TimeOfDay::from_hours(8.0),
                1,
                "truth_hit",
                Duration::from_micros(2),
            );
        }
        // Calls 0, 2, 4, 6, 8 were sampled; the ring keeps the last 3.
        let samples = recorder.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].from, NodeId(4));
        assert_eq!(samples[2].from, NodeId(8));
        assert!(samples.iter().all(|t| !t.spans.is_empty()));
    }

    #[test]
    fn lock_stats_time_only_contended_acquisitions() {
        let locks = LockStats::new();
        locks.set_enabled(true);
        let mutex = Mutex::new(0u32);
        {
            let _g = locks.lock(&mutex);
        }
        assert_eq!(locks.summary().waits, 0, "uncontended: no wait booked");
        std::thread::scope(|s| {
            let held = mutex.lock().unwrap();
            s.spawn(|| {
                let _g = locks.lock(&mutex);
            });
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
        });
        let summary = locks.summary();
        assert_eq!(summary.waits, 1);
        assert!(summary.wait >= Duration::from_millis(5));
    }

    #[test]
    fn disabled_lock_stats_record_nothing() {
        let locks = LockStats::new();
        let rw = RwLock::new(0u32);
        {
            let _g = locks.read(&rw);
        }
        {
            let _g = locks.write(&rw);
        }
        assert_eq!(locks.summary(), LockSummary::default());
    }

    #[test]
    fn poisoned_locks_are_counted_and_recovered() {
        let locks = LockStats::new();
        let mutex = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = mutex.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(mutex.is_poisoned());
        // Disabled path recovers and counts.
        {
            let g = locks.lock(&mutex);
            assert_eq!(*g, 7);
        }
        assert_eq!(locks.summary().poisoned, 1);
        // Enabled (try-lock) path recovers and counts too.
        locks.set_enabled(true);
        {
            let g = locks.lock(&mutex);
            assert_eq!(*g, 7);
        }
        let summary = locks.summary();
        assert_eq!(summary.poisoned, 2);
        assert_eq!(summary.waits, 0, "poisoning is not contention");

        let rw = RwLock::new(1u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = rw.write().unwrap();
            panic!("poison the rwlock");
        }));
        {
            let _g = locks.read(&rw);
        }
        {
            let _g = locks.write(&rw);
        }
        assert_eq!(locks.summary().poisoned, 4);
    }

    #[test]
    fn report_json_contains_stages_and_traces() {
        let report = TraceReport {
            ingress: LockSummary {
                waits: 2,
                wait: Duration::from_micros(10),
                poisoned: 0,
            },
            durability: None,
            chaos: None,
            cities: vec![CityTrace {
                city: 0,
                stages: {
                    let mut stages = [StageSummary::default(); Stage::COUNT];
                    stages[Stage::Mining.index()] = StageSummary {
                        count: 3,
                        total: Duration::from_micros(300),
                        p50: Duration::from_micros(64),
                        p95: Duration::from_micros(128),
                        max: Duration::from_micros(150),
                    };
                    stages
                },
                locks: [LockSummary::default(); LockSite::COUNT],
                traces: vec![RequestTrace {
                    from: NodeId(1),
                    to: NodeId(2),
                    departure_s: 28800.0,
                    batch_size: 4,
                    outcome: "resolved",
                    total: Duration::from_micros(120),
                    spans: vec![(Stage::Mining, Duration::from_micros(80))],
                }],
            }],
        };
        assert_eq!(report.total_traces(), 1);
        let json = report.to_json();
        assert!(json.contains("\"mining\""));
        assert!(json.contains("\"ingress\""));
        assert!(json.contains("\"outcome\": \"resolved\""));
        assert!(json.contains("\"batch\": 4"));
    }
}
