//! The multi-city serving platform: resident workers, bounded ingress,
//! submit/poll tickets.
//!
//! [`RouteService`] serves one city and only in closed batches; a
//! deployed CrowdPlanner faces an *open* stream of requests spread over
//! many cities. [`Platform`] is the front door:
//!
//! * **owned worlds** — each city is an `Arc<World>` registered under a
//!   [`CityId`]; the platform owns a full per-city service instance
//!   (truth shards, candidate LRU, flight table, stats), so cities never
//!   contend with each other on anything but CPU;
//! * **resident worker pool** — [`Platform::start`] spawns N
//!   `std::thread` workers that live until [`Platform::shutdown`]; each
//!   worker lazily builds one resolver per city from the city's
//!   registered factory and keeps it across requests;
//! * **bounded ingress + admission control** — [`Platform::submit`] is
//!   non-blocking: it enqueues and returns a [`Ticket`], or rejects with
//!   [`ServiceError::Busy`] when the queue is full (shed load instead of
//!   collapsing under it). [`Platform::submit_blocking`] waits for space
//!   instead;
//! * **joinable, pollable tickets** — [`Ticket::wait`] blocks for the
//!   result, [`Ticket::try_wait`] polls without blocking, and
//!   [`Ticket::latency`] reports the submit→completion sojourn time
//!   (queue wait + service time — the number an open-loop load generator
//!   needs);
//! * **graceful shutdown** — [`Platform::shutdown`] stops admissions,
//!   drains every queued job (each admitted ticket resolves exactly
//!   once), and joins the workers. Dropping the platform does the same.
//!
//! ```
//! use cp_roadnet::{generate_city, CityParams, NodeId};
//! use cp_service::{Platform, PlatformConfig, Request, ServiceConfig, World};
//! use cp_traj::{generate_trips, TimeOfDay, TripGenParams};
//! use std::sync::Arc;
//!
//! let city = generate_city(&CityParams::small(), 7).unwrap();
//! let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
//! let platform = Platform::start(PlatformConfig::default());
//! let id = platform.register_city(
//!     Arc::new(World::new(city.graph, trips.trips)),
//!     ServiceConfig::default(),
//! );
//! let ticket = platform
//!     .submit(Request::to_city(id, NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0)))
//!     .unwrap();
//! let served = ticket.wait().unwrap();
//! assert_eq!(served.path.source(), NodeId(0));
//! platform.shutdown();
//! ```

use crate::chaos::{
    BreakerConfig, BreakerSnapshot, ChaosConfig, ChaosDesk, ChaosResolver, ChaosSnapshot,
    ChaosState, CrowdBreaker, FaultPlan, FaultSite,
};
use crate::durable::{DurabilityConfig, DurabilitySnapshot, DurableRuntime};
use crate::error::ServiceError;
use crate::executor::{Request, RouteService, ServedRoute, ServiceConfig};
use crate::resolver::{CrowdResolver, MachineResolver, OracleFactory, Resolver};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::trace::{CityTrace, LockSite, LockStats, LockSummary, Stage, TraceReport};
use crate::world::{CityId, World};
use cp_core::{CoreError, CrowdPlanner, TruthEntry};
use cp_crowd::{AnswerRecord, CrowdDesk, CrowdState, PlatformState, WorkerId};
use cp_durable::{
    purge_segments_below, read_log, read_snapshot, CrowdSnapshot, DurableError, Event,
    SnapshotWriter, TruthRec,
};
use cp_roadnet::{EdgeId, LandmarkId, LandmarkSet, NodeId, Path as RoutePath};
use cp_traj::TimeOfDay;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Background-maintenance configuration: a resident janitor thread
/// sweeps every city's truth store on a fixed cadence, replacing
/// caller-driven [`RouteService::evict_truths_older_than`] loops.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// Time between sweeps.
    pub interval: Duration,
    /// Truths at least this old are evicted on each sweep.
    pub max_age: Duration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            interval: Duration::from_secs(60),
            max_age: Duration::from_secs(3600),
        }
    }
}

/// Opportunistic request-coalescing configuration: workers dequeue
/// *runs* of queued jobs sharing `(city, origin cell)` — time buckets
/// may mix freely, the fused mining path splits only its
/// period-dependent MFP aggregation per bucket — and serve them through
/// [`RouteService::serve_coalesced`], so a hot origin cell pays its
/// expensive single-source mining once per run instead of once per
/// request.
#[derive(Debug, Clone, Copy)]
pub enum BatchConfig {
    /// A fixed collection window: every under-full run is held open for
    /// exactly `max_delay` waiting for more same-key arrivals.
    /// `Duration::ZERO` is purely opportunistic — only jobs already
    /// queued coalesce, and an idle queue never delays a request.
    Fixed {
        /// Most jobs coalesced into one run (≥ 1; 1 disables coalescing
        /// in all but name).
        max_batch: usize,
        /// The fixed collection window.
        max_delay: Duration,
    },
    /// A self-tuning collection window: a controller observes the
    /// ingress queue depth and recent run occupancy and moves the
    /// actual delay between zero and `max_delay` (the ceiling). At
    /// saturation the queue itself supplies coalescable backlog, so the
    /// delay snaps to zero (waiting would only add latency). Off a
    /// shallow queue it climbs optimistically — a lone opportunistic
    /// dispatch opens a ceiling/16 probe and lone paid windows keep
    /// doubling (a short window cannot prove its value, so persistence
    /// is required to find the window where trickling same-cell
    /// arrivals meet) — but [`ADAPTIVE_GIVE_UP`] consecutive paid
    /// windows that each bought nothing snap it back to zero with an
    /// [`ADAPTIVE_PROBE_COOLDOWN`]-dispatch cooldown, so traffic that
    /// never coalesces pays a bounded, amortised probe tax instead of
    /// a permanent ceiling-sized window. The chosen delay and the
    /// controller's transition counts are exported in
    /// [`PlatformSnapshot`].
    Adaptive {
        /// Most jobs coalesced into one run (≥ 1).
        max_batch: usize,
        /// The ceiling the controller may raise the delay to.
        max_delay: Duration,
    },
}

/// Consecutive *paid* collection windows that may each dispatch a lone
/// run before the adaptive controller gives up and snaps the window to
/// zero (see [`BatchConfig::Adaptive`]).
pub const ADAPTIVE_GIVE_UP: u32 = 8;

/// Lone zero-window dispatches the adaptive controller waits out after
/// a give-up before probing again. Bounds the amortised cost of
/// probing on traffic that never coalesces to
/// `GIVE_UP × ceiling / (GIVE_UP + COOLDOWN)` per dispatch at worst.
pub const ADAPTIVE_PROBE_COOLDOWN: u32 = 32;

/// Consecutive dispatched runs filling at most a quarter of the current
/// run-size cap before the adaptive controller halves the cap: sparse
/// runs mean the cap is paying collection-scan cost (every dequeue
/// walks the queue looking for cell-mates up to the cap) without buying
/// coalescing. A run that *fills* the cap raises it back (doubling
/// toward the configured `max_batch`). Fixed mode never steps the cap.
pub const ADAPTIVE_CAP_SPARSE_RUNS: u32 = 4;

/// The lowest the adaptive run-size cap may drop (a cap of 2 still
/// coalesces pairs; dropping to 1 would silently disable batching).
pub const ADAPTIVE_CAP_FLOOR: usize = 2;

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::Fixed {
            max_batch: 16,
            max_delay: Duration::ZERO,
        }
    }
}

impl BatchConfig {
    /// A fixed-window configuration (the PR-4 behaviour).
    pub fn fixed(max_batch: usize, max_delay: Duration) -> Self {
        BatchConfig::Fixed {
            max_batch,
            max_delay,
        }
    }

    /// An adaptive configuration with the given delay ceiling.
    pub fn adaptive(max_batch: usize, max_delay: Duration) -> Self {
        BatchConfig::Adaptive {
            max_batch,
            max_delay,
        }
    }

    /// The largest run a worker may coalesce.
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchConfig::Fixed { max_batch, .. } | BatchConfig::Adaptive { max_batch, .. } => {
                max_batch
            }
        }
    }

    /// The most a worker may hold an under-full run open: the fixed
    /// window, or the adaptive controller's ceiling.
    pub fn delay_ceiling(&self) -> Duration {
        match *self {
            BatchConfig::Fixed { max_delay, .. } | BatchConfig::Adaptive { max_delay, .. } => {
                max_delay
            }
        }
    }

    /// Whether the collection window self-tunes.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, BatchConfig::Adaptive { .. })
    }

    /// Clamps `max_batch` to ≥ 1.
    fn normalized(self) -> Self {
        match self {
            BatchConfig::Fixed {
                max_batch,
                max_delay,
            } => BatchConfig::Fixed {
                max_batch: max_batch.max(1),
                max_delay,
            },
            BatchConfig::Adaptive {
                max_batch,
                max_delay,
            } => BatchConfig::Adaptive {
                max_batch: max_batch.max(1),
                max_delay,
            },
        }
    }
}

/// Platform-level configuration (per-city serving behaviour lives in
/// each city's [`ServiceConfig`]).
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Resident worker threads shared by all cities.
    pub workers: usize,
    /// Bounded **per-city** ingress queue capacity; a full city queue
    /// makes [`Platform::submit`] shed that city's requests with
    /// [`ServiceError::Busy`] — other cities' queues are unaffected.
    pub queue_capacity: usize,
    /// Default deficit-round-robin weight assigned to newly registered
    /// cities (clamped to ≥ 1; override per city with
    /// [`Platform::set_city_weight`]). While backlogged, a city is
    /// granted `weight` seed dispatches per scheduler rotation, so a
    /// weight-4 city gets 4× a weight-1 city's dispatch share under
    /// contention — but an idle city forfeits its quantum, so a hot
    /// city can saturate idle capacity without starving anyone.
    pub city_weight: u32,
    /// Optional background maintenance (truth-age sweeps + stats
    /// snapshot export). `None` (the default) spawns no janitor.
    pub maintenance: Option<MaintenanceConfig>,
    /// Optional origin-cell request coalescing. `None` (the default)
    /// dispatches one job per worker wakeup, exactly as before.
    pub batch: Option<BatchConfig>,
    /// Optional durability: a write-ahead log of committed resolutions
    /// plus checkpointable snapshots (see [`DurabilityConfig`]). `None`
    /// (the default) keeps the platform fully in-memory and the commit
    /// path allocation-free.
    pub durability: Option<DurabilityConfig>,
    /// Optional deterministic fault injection (see [`ChaosConfig`]).
    /// `None` (the default) keeps every serve-path seam a branch on a
    /// `None` — allocation- and clock-identical to a chaos-free build.
    pub chaos: Option<ChaosConfig>,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            workers: 4,
            queue_capacity: 256,
            city_weight: 1,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        }
    }
}

/// A resolver factory: builds worker-local resolvers for one city
/// (`worker_index` → boxed resolver). Resolvers on the resident pool
/// must be `'static` and `Send`; see [`MachineResolver`].
type ResolverFactory = Box<dyn Fn(usize) -> Box<dyn Resolver + Send> + Send + Sync>;

/// One registered city: its service instance plus the factory workers
/// use to build their per-city resolvers, and — for crowd-backed cities
/// that opted in via [`CrowdServing::with_persist`] — the handle the
/// durability layer uses to export/import/replay crowd state.
struct CityState {
    service: Arc<RouteService>,
    factory: ResolverFactory,
    crowd_state: Option<Arc<dyn CrowdState>>,
    /// This city's crowd circuit breaker (`None` unless the city was
    /// registered crowd-backed with [`CrowdServing::with_breaker`]).
    breaker: Option<Arc<CrowdBreaker>>,
    /// Lock-free mirror of the queue's `offboarded` flag, so routing
    /// checks ([`Platform::city_service`]) need no queue lock.
    offboarded: AtomicBool,
    /// This city's sharded ingress (bounded queue + DRR weight).
    ingress: CityQueue,
}

/// Everything a crowd-backed city shares across its per-worker planners:
/// the landmark set and significance scores, the crowd desk (quota
/// accounting lives there), and the oracle factory standing in for the
/// crowd's latent knowledge. See
/// [`Platform::register_city_crowd`].
#[derive(Clone)]
pub struct CrowdServing {
    /// The city's landmarks.
    pub landmarks: Arc<LandmarkSet>,
    /// HITS-inferred landmark significance (one entry per landmark).
    pub significance: Arc<Vec<f64>>,
    /// The shared crowd desk every resolver assigns through.
    pub desk: Arc<dyn CrowdDesk>,
    /// Supplies the per-request crowd-knowledge oracle.
    pub oracle: Arc<dyn OracleFactory>,
    /// Fail quota-starved requests with
    /// [`ServiceError::CrowdStarved`] instead of serving the machine
    /// fallback (defaults to `false`).
    pub fail_when_starved: bool,
    /// The stateful side of the desk, for durability: snapshot export /
    /// import and answer replay. `None` (the default) leaves the crowd
    /// out of snapshots and the answer log. Set it to the same
    /// [`SharedCrowd`](cp_crowd::SharedCrowd) the desk wraps via
    /// [`CrowdServing::with_persist`].
    pub persist: Option<Arc<dyn CrowdState>>,
    /// Optional per-city crowd circuit breaker: starvation-class crowd
    /// failures over a sliding window trip the city to machine-only
    /// resolution with half-open probing (see [`BreakerConfig`]).
    /// `None` (the default) keeps the PR-9 behaviour.
    pub breaker: Option<BreakerConfig>,
}

impl CrowdServing {
    /// Bundles the shared crowd inputs (starvation degrades to machine
    /// fallback; flip `fail_when_starved` for strict shedding).
    pub fn new(
        landmarks: Arc<LandmarkSet>,
        significance: Arc<Vec<f64>>,
        desk: Arc<dyn CrowdDesk>,
        oracle: Arc<dyn OracleFactory>,
    ) -> Self {
        CrowdServing {
            landmarks,
            significance,
            desk,
            oracle,
            fail_when_starved: false,
            persist: None,
            breaker: None,
        }
    }

    /// Attaches the desk's stateful handle so snapshots capture the
    /// crowd (history, rewards, RNG) and its answers reach the WAL.
    pub fn with_persist(mut self, state: Arc<dyn CrowdState>) -> Self {
        self.persist = Some(state);
        self
    }

    /// Attaches a crowd circuit breaker (see [`BreakerConfig`]).
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Some(cfg);
        self
    }
}

impl std::fmt::Debug for CrowdServing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrowdServing")
            .field("landmarks", &self.landmarks.len())
            .field("fail_when_starved", &self.fail_when_starved)
            .finish_non_exhaustive()
    }
}

/// One admitted request waiting for a worker. The owning city is
/// implicit: jobs live in their city's own queue.
struct Job {
    req: Request,
    slot: Arc<TicketSlot>,
}

/// One city's bounded ingress queue plus its drain flag, admission and
/// dispatch accounting and its adaptive batch controller, all under the
/// city's own mutex. The counters are mutated in the same critical
/// sections that move jobs, so `admitted == batched_requests +
/// unbatched_requests + queue_depth` holds per city at every instant a
/// snapshot can observe (admission also bumps `admitted` under this
/// lock).
struct CityIngress {
    jobs: VecDeque<Job>,
    draining: bool,
    /// `true` once [`Platform::deregister_city`] ran: submissions are
    /// rejected with [`ServiceError::CityOffboarded`] and the queue
    /// stays empty forever (so DRR naturally skips the city).
    offboarded: bool,
    /// Queued jobs shed with a terminal error by the offboarding drain.
    shed: u64,
    /// Requests admitted into this city's queue.
    admitted: u64,
    /// Non-blocking submissions shed because this city's queue was full.
    rejected_busy: u64,
    /// Jobs dispatched inside a coalesced run of ≥ 2.
    batched_requests: u64,
    /// Jobs dispatched alone (runs of 1, and every job when batching is
    /// off).
    unbatched_requests: u64,
    /// Coalesced runs (of ≥ 2) dispatched.
    batch_runs: u64,
    /// Largest run dispatched (high-water mark).
    batch_max: u64,
    /// The collection window currently in force (nanoseconds): the
    /// fixed window, or this city's adaptive controller's chosen value.
    /// Mutated only under this lock, in the same critical sections that
    /// move jobs, so snapshots observe a coherent controller state.
    delay_ns: u64,
    /// Adaptive-controller transitions that raised the delay.
    delay_raises: u64,
    /// Adaptive-controller transitions that dropped the delay.
    delay_drops: u64,
    /// Consecutive *paid* collection windows that still dispatched a
    /// lone run — the adaptive give-up streak.
    unproductive: u32,
    /// Lone zero-window dispatches remaining before the probe may
    /// reopen after a give-up.
    probe_cooldown: u32,
    /// The run-size cap currently in force: the configured `max_batch`
    /// in fixed mode, stepped by observed run occupancy in adaptive
    /// mode (between [`ADAPTIVE_CAP_FLOOR`] and the configured cap).
    max_batch_cur: usize,
    /// Adaptive-cap transitions that raised the cap.
    cap_raises: u64,
    /// Adaptive-cap transitions that lowered the cap.
    cap_drops: u64,
    /// Consecutive dispatched runs that filled ≤ 1/4 of the current
    /// cap — the cap-lowering streak.
    sparse_runs: u32,
}

/// One city's sharded ingress: its bounded queue (own mutex/condvar
/// pair), its own [`LockStats`] site so the trace layer attributes
/// contention per city, a lock-free depth mirror for the scheduler's
/// peek, and its DRR weight.
struct CityQueue {
    queue: Mutex<CityIngress>,
    /// Signalled when a job lands in *this* city's queue (collectors
    /// holding a delay window open listen here) or its drain starts.
    arrivals: Condvar,
    /// Signalled when a job leaves this city's queue or drain starts
    /// (blocking submitters listen here).
    not_full: Condvar,
    /// Contention counters for this city's ingress mutex (enabled once
    /// the city traces; see [`Platform::trace_report`]).
    locks: LockStats,
    /// Lock-free mirror of `queue.jobs.len()`, kept in sync under the
    /// queue lock, so the DRR scheduler peeks without taking any city
    /// lock.
    depth: AtomicUsize,
    /// DRR weight (≥ 1): quantum of seed dispatches granted per
    /// rotation while backlogged.
    weight: AtomicU32,
}

impl CityQueue {
    fn new(cfg: &PlatformConfig) -> CityQueue {
        CityQueue {
            queue: Mutex::new(CityIngress {
                jobs: VecDeque::new(),
                draining: false,
                offboarded: false,
                shed: 0,
                admitted: 0,
                rejected_busy: 0,
                batched_requests: 0,
                unbatched_requests: 0,
                batch_runs: 0,
                batch_max: 0,
                // Fixed mode pins the window; adaptive starts at zero
                // (opportunistic) and earns its delay from evidence.
                delay_ns: match cfg.batch {
                    Some(b) if !b.is_adaptive() => {
                        b.delay_ceiling().as_nanos().min(u64::MAX as u128) as u64
                    }
                    _ => 0,
                },
                delay_raises: 0,
                delay_drops: 0,
                unproductive: 0,
                probe_cooldown: 0,
                max_batch_cur: cfg.batch.map(|b| b.max_batch()).unwrap_or(0),
                cap_raises: 0,
                cap_drops: 0,
                sparse_runs: 0,
            }),
            arrivals: Condvar::new(),
            not_full: Condvar::new(),
            locks: LockStats::new(),
            depth: AtomicUsize::new(0),
            weight: AtomicU32::new(cfg.city_weight.max(1)),
        }
    }
}

/// The weighted deficit-round-robin schedule the workers drive: a
/// rotating cursor over the registered cities plus per-city deficit
/// counters, under one mutex whose critical section is a handful of
/// atomic peeks — the per-job queue work (push, pop, run collection,
/// delay windows) all happens under the per-city locks.
struct Scheduler {
    draining: bool,
    /// The city whose quantum the rotation is currently spending.
    cursor: usize,
    /// Remaining seed dispatches in each city's current quantum.
    deficits: Vec<u64>,
}

/// State shared between the platform handle and its workers.
struct Inner {
    cfg: PlatformConfig,
    cities: RwLock<Vec<Arc<CityState>>>,
    /// The DRR dispatch schedule (see [`Scheduler`]).
    sched: Mutex<Scheduler>,
    /// Idle workers park here; signalled when any city gains work (only
    /// when someone is parked — see `sleepers`) or draining starts.
    work: Condvar,
    /// Contention counters for the dispatch (scheduler) mutex.
    sched_locks: LockStats,
    /// Workers parked (or committing to park) on `work`. Submissions
    /// skip the scheduler lock entirely while this is zero — the common
    /// case under load, which is exactly when the old global ingress
    /// mutex collapsed.
    sleepers: AtomicUsize,
    /// Jobs queued across all cities (mirrors the per-city depths).
    /// Paired with `sleepers` SeqCst-style so a submission and a
    /// parking worker can never miss each other.
    queued: AtomicU64,
    /// Cities whose queue is currently non-empty (every 0↔non-zero
    /// depth transition happens under that city's queue lock, so the
    /// count is exact). While this is ≤ 1 there is no fairness decision
    /// to arbitrate, and dispatch skips the scheduler lock entirely —
    /// a single-city firehose never serialises workers on anything
    /// global. The race where a second city gains backlog between the
    /// check and the pop costs at most one unarbitrated pick.
    backlogged: AtomicUsize,
    submitted: AtomicU64,
    rejected_unknown_city: AtomicU64,
    rejected_shutdown: AtomicU64,
    /// Submissions rejected because the target city was deregistered.
    rejected_offboarded: AtomicU64,
    completed: AtomicU64,
    /// `true` once shutdown started; the janitor exits on the next wake.
    maintenance_stop: Mutex<bool>,
    /// Signalled to wake the janitor early (shutdown).
    maintenance_cv: Condvar,
    /// Completed maintenance sweeps.
    maintenance_sweeps: AtomicU64,
    /// Truths evicted by maintenance sweeps (cumulative).
    maintenance_evicted: AtomicU64,
    /// The report exported by the most recent sweep.
    last_maintenance: Mutex<Option<MaintenanceReport>>,
    /// The running durability machinery (`None` with durability off).
    durable: Option<DurableRuntime>,
    /// The running chaos engine (`None` with chaos off: every seam is a
    /// single branch on this option).
    chaos: Option<Arc<ChaosState>>,
}

/// What one background maintenance sweep observed and exported.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// Sweeps completed so far (this one included).
    pub sweeps: u64,
    /// Truths evicted by this sweep.
    pub evicted: usize,
    /// Truths evicted by all sweeps so far.
    pub evicted_total: u64,
    /// Full platform statistics exported at sweep time.
    pub snapshot: PlatformSnapshot,
}

/// What [`Platform::recover_from`] / [`Platform::replay_log`] applied:
/// snapshot-vs-log provenance plus the deduplicated overlap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Truth entries restored from the snapshot.
    pub truths_restored: u64,
    /// Crowd answers folded into the snapshot (its generation).
    pub answers_restored: u64,
    /// Truth entries applied from the WAL.
    pub truths_replayed: u64,
    /// Crowd answers applied from the WAL.
    pub answers_replayed: u64,
    /// WAL truth records skipped because the snapshot already held them
    /// (the rotation overlap).
    pub truths_skipped: u64,
    /// WAL answer records skipped as already covered by the snapshot's
    /// generation.
    pub answers_skipped: u64,
    /// The snapshot's WAL watermark (0 without a snapshot).
    pub wal_watermark: u64,
    /// The last WAL sequence applied or skipped (`None` for an empty
    /// log).
    pub last_wal_seq: Option<u64>,
}

/// One city's slice of the sharded ingress, captured atomically under
/// that city's queue lock: depth, weight, admission/dispatch counters
/// and the city's adaptive batch-controller state.
#[derive(Debug, Clone)]
pub struct CityQueueSnapshot {
    /// The city.
    pub city: CityId,
    /// The city's DRR weight.
    pub weight: u32,
    /// Jobs currently waiting in this city's queue.
    pub queue_depth: usize,
    /// Requests admitted into this city's queue.
    pub admitted: u64,
    /// Non-blocking submissions shed because this city's queue was
    /// full (other cities shed independently).
    pub rejected_busy: u64,
    /// Jobs dispatched inside a coalesced run of ≥ 2.
    pub batched_requests: u64,
    /// Jobs dispatched alone.
    pub unbatched_requests: u64,
    /// Coalesced runs (of ≥ 2) dispatched.
    pub batch_runs: u64,
    /// Largest coalesced run dispatched (high-water mark).
    pub batch_max: u64,
    /// The collection window this city's controller currently holds.
    pub batch_delay: Duration,
    /// This city's delay raises.
    pub batch_delay_raises: u64,
    /// This city's delay drops.
    pub batch_delay_drops: u64,
    /// The run-size cap currently in force (the configured `max_batch`
    /// in fixed mode; stepped by run occupancy in adaptive mode; 0 with
    /// batching off).
    pub max_batch: usize,
    /// Adaptive-cap raises (0 in fixed mode).
    pub batch_cap_raises: u64,
    /// Adaptive-cap drops (0 in fixed mode).
    pub batch_cap_drops: u64,
    /// Contention on this city's ingress mutex (zeros unless the city
    /// traces).
    pub ingress: LockSummary,
    /// Whether the city was deregistered at runtime
    /// ([`Platform::deregister_city`]).
    pub offboarded: bool,
    /// Queued tickets shed with [`ServiceError::CityOffboarded`] by the
    /// offboarding drain.
    pub shed: u64,
    /// The city's crowd-circuit-breaker observables (`None` for cities
    /// registered without a breaker).
    pub breaker: Option<BreakerSnapshot>,
}

impl CityQueueSnapshot {
    /// The per-city dispatch ledger: every admitted job is either still
    /// queued, was dispatched exactly once — batched or unbatched — or
    /// was shed with a terminal error by an offboarding drain. All
    /// terms are captured under the city's queue lock, so this is exact
    /// at every observable instant.
    pub fn is_consistent(&self) -> bool {
        self.admitted
            == self.batched_requests + self.unbatched_requests + self.shed + self.queue_depth as u64
            && self.batch_max <= self.batched_requests
            && self.batch_runs <= self.batched_requests
            && (self.shed == 0 || self.offboarded)
    }
}

/// Point-in-time platform statistics: admission counters plus the exact
/// aggregate of every city's service statistics.
#[derive(Debug, Clone)]
pub struct PlatformSnapshot {
    /// Submission attempts (admitted + all rejections).
    pub submitted: u64,
    /// Requests admitted across all city queues (Σ per-city).
    pub admitted: u64,
    /// Rejections because the target city's queue was full (Σ
    /// per-city).
    pub rejected_busy: u64,
    /// Rejections because the request named an unregistered city.
    pub rejected_unknown_city: u64,
    /// Rejections because the platform was shutting down.
    pub rejected_shutdown: u64,
    /// Rejections because the target city was deregistered at runtime.
    pub rejected_offboarded: u64,
    /// Queued tickets shed with [`ServiceError::CityOffboarded`] by
    /// offboarding drains (Σ per-city).
    pub shed: u64,
    /// Tickets fulfilled by workers.
    pub completed: u64,
    /// Registered cities.
    pub cities: usize,
    /// Jobs currently waiting across all city queues (Σ per-city
    /// depths).
    pub queue_depth: usize,
    /// Jobs dispatched to workers inside a coalesced run of ≥ 2 (0
    /// unless [`PlatformConfig::batch`] is set).
    pub batched_requests: u64,
    /// Jobs dispatched to workers alone — runs of 1, and every job when
    /// coalescing is off.
    pub unbatched_requests: u64,
    /// Coalesced runs (of ≥ 2) dispatched.
    pub batch_runs: u64,
    /// Largest coalesced run dispatched (high-water mark).
    pub batch_max: u64,
    /// Whether the collection window self-tunes
    /// ([`BatchConfig::Adaptive`]).
    pub batch_adaptive: bool,
    /// The widest collection window any city's controller currently
    /// holds (the fixed window, or the max over per-city adaptive
    /// choices; zero when batching is off).
    pub batch_delay: Duration,
    /// The most the window may be held open: the fixed window itself,
    /// or the adaptive ceiling.
    pub batch_delay_ceiling: Duration,
    /// Adaptive-controller transitions that raised a delay, summed over
    /// cities (0 in fixed mode).
    pub batch_delay_raises: u64,
    /// Adaptive-controller transitions that snapped a delay to zero on
    /// saturation, summed over cities (0 in fixed mode).
    pub batch_delay_drops: u64,
    /// Every city's queue/controller slice, each captured atomically
    /// under its own queue lock (indexed by city).
    pub per_city: Vec<CityQueueSnapshot>,
    /// Background maintenance sweeps completed (0 when no janitor is
    /// configured).
    pub maintenance_sweeps: u64,
    /// Durability counters (`None` with durability off).
    pub durability: Option<DurabilitySnapshot>,
    /// Injected-fault counters (`None` with chaos off).
    pub chaos: Option<ChaosSnapshot>,
    /// Exact merge of all per-city service statistics (latency
    /// percentiles come from the merged histogram).
    pub aggregate: StatsSnapshot,
}

impl PlatformSnapshot {
    /// The admission and dispatch accounting invariants: every
    /// submission was either admitted or rejected for exactly one
    /// reason, and every admitted job is either still queued or was
    /// dispatched exactly once — batched or unbatched. Each city's
    /// dispatch counters, `admitted` and queue depth are captured under
    /// that city's queue lock (dispatch mutates them in the same
    /// critical sections that move jobs), so every per-city ledger —
    /// and therefore their sum, `admitted == batched + unbatched +
    /// Σ per-city queue_depth` — is exact at every observable instant,
    /// not just at quiescence. Additionally, no city's adaptive-delay
    /// controller may hold a window above the ceiling, the adaptive
    /// run-size cap stays within `[ADAPTIVE_CAP_FLOOR, max_batch]`, and
    /// a fixed window never transitions (raises and drops stay zero).
    pub fn is_consistent(&self) -> bool {
        let per_city_depth: u64 = self.per_city.iter().map(|c| c.queue_depth as u64).sum();
        self.admitted
            + self.rejected_busy
            + self.rejected_unknown_city
            + self.rejected_shutdown
            + self.rejected_offboarded
            == self.submitted
            && self.admitted
                == self.batched_requests
                    + self.unbatched_requests
                    + self.shed
                    + self.queue_depth as u64
            && self.shed == self.per_city.iter().map(|c| c.shed).sum::<u64>()
            && self.queue_depth as u64 == per_city_depth
            && self.admitted == self.per_city.iter().map(|c| c.admitted).sum::<u64>()
            && self.per_city.iter().all(CityQueueSnapshot::is_consistent)
            && self.batch_max <= self.batched_requests
            && self.batch_runs <= self.batched_requests
            && self.batch_delay <= self.batch_delay_ceiling
            && self
                .per_city
                .iter()
                .all(|c| c.batch_delay <= self.batch_delay_ceiling && c.weight >= 1)
            && (self.batch_adaptive
                || (self.batch_delay_raises == 0
                    && self.batch_delay_drops == 0
                    && self
                        .per_city
                        .iter()
                        .all(|c| c.batch_cap_raises == 0 && c.batch_cap_drops == 0)))
    }
}

/// State of one submitted request, shared between its [`Ticket`] and the
/// worker that fulfils it.
struct TicketSlot {
    state: Mutex<Option<Result<ServedRoute, ServiceError>>>,
    done: Condvar,
    submitted_at: Instant,
    /// Submit→completion sojourn in nanoseconds; 0 while pending (a
    /// fulfilled ticket always stores ≥ 1).
    sojourn_ns: AtomicU64,
}

impl TicketSlot {
    fn fulfill(&self, result: Result<ServedRoute, ServiceError>) {
        let ns = self
            .submitted_at
            .elapsed()
            .as_nanos()
            .clamp(1, u64::MAX as u128) as u64;
        let mut state = self.state.lock().expect("ticket poisoned");
        debug_assert!(state.is_none(), "a ticket resolves exactly once");
        *state = Some(result);
        self.sojourn_ns.store(ns, Ordering::Release);
        self.done.notify_all();
    }
}

/// A handle to one submitted request.
///
/// Join it with [`Ticket::wait`] (blocking) or poll it with
/// [`Ticket::try_wait`]; either way the result is produced exactly once
/// by the worker that served the request. Dropping a ticket abandons the
/// result but never the work — the request still runs and feeds the
/// city's truth store.
pub struct Ticket {
    city: CityId,
    slot: Arc<TicketSlot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("city", &self.city)
            .field("done", &self.is_done())
            .finish()
    }
}

impl Ticket {
    /// The city the request was routed to.
    pub fn city(&self) -> CityId {
        self.city
    }

    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<ServedRoute, ServiceError> {
        let mut state = self.slot.state.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.slot.done.wait(state).expect("ticket poisoned");
        }
    }

    /// Blocks for at most `timeout` waiting for the result. On
    /// completion returns it (`Ok`); on expiry returns the ticket
    /// itself (`Err`), so the caller can keep polling, re-wait, or
    /// abandon it — the request still runs either way and its result
    /// still feeds the city's truth store. This is the primitive behind
    /// request deadlines at a serving edge: answer 504 on `Err` without
    /// losing the work already queued.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ServedRoute, ServiceError>, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = state.take() {
                return Ok(result);
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                drop(state);
                return Err(self);
            };
            let (guard, _timed_out) = self
                .slot
                .done
                .wait_timeout(state, remaining)
                .expect("ticket poisoned");
            state = guard;
        }
    }

    /// Polls without blocking: `None` while the request is in flight,
    /// the (cloned) result once it completed.
    pub fn try_wait(&self) -> Option<Result<ServedRoute, ServiceError>> {
        self.slot.state.lock().expect("ticket poisoned").clone()
    }

    /// Whether the request has completed.
    pub fn is_done(&self) -> bool {
        self.slot.sojourn_ns.load(Ordering::Acquire) != 0
    }

    /// Submit→completion sojourn time (queue wait + service time), once
    /// the request completed; `None` while in flight.
    pub fn latency(&self) -> Option<Duration> {
        match self.slot.sojourn_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }
}

/// The owned, `Arc`-shareable multi-city serving platform.
///
/// See the [module docs](self) for the full design; in short: register
/// worlds, [`submit`](Platform::submit) requests, join
/// [`Ticket`]s, [`shutdown`](Platform::shutdown) when done.
pub struct Platform {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Platform {
    /// Spawns the resident worker pool and returns the running platform
    /// (with no cities yet — register at least one before submitting).
    pub fn start(cfg: PlatformConfig) -> Platform {
        let chaos = cfg.chaos.as_ref().map(|c| Arc::new(ChaosState::new(c)));
        let durable = cfg.durability.clone().map(|d| {
            DurableRuntime::start(d, chaos.clone())
                .expect("opening the durability directory and write-ahead log")
        });
        let inner = Arc::new(Inner {
            cfg: PlatformConfig {
                workers: cfg.workers.max(1),
                queue_capacity: cfg.queue_capacity.max(1),
                city_weight: cfg.city_weight.max(1),
                maintenance: cfg.maintenance,
                batch: cfg.batch.map(BatchConfig::normalized),
                durability: cfg.durability,
                chaos: cfg.chaos,
            },
            cities: RwLock::new(Vec::new()),
            sched: Mutex::new(Scheduler {
                draining: false,
                cursor: 0,
                deficits: Vec::new(),
            }),
            work: Condvar::new(),
            sched_locks: LockStats::new(),
            sleepers: AtomicUsize::new(0),
            queued: AtomicU64::new(0),
            backlogged: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            rejected_unknown_city: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            rejected_offboarded: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            maintenance_stop: Mutex::new(false),
            maintenance_cv: Condvar::new(),
            maintenance_sweeps: AtomicU64::new(0),
            maintenance_evicted: AtomicU64::new(0),
            last_maintenance: Mutex::new(None),
            durable,
            chaos,
        });
        let mut workers: Vec<JoinHandle<()>> = (0..inner.cfg.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cp-platform-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawning a platform worker")
            })
            .collect();
        let checkpoint_interval = inner
            .cfg
            .durability
            .as_ref()
            .and_then(|d| d.checkpoint_interval);
        if inner.cfg.maintenance.is_some() || checkpoint_interval.is_some() {
            let maintenance = inner.cfg.maintenance;
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("cp-platform-janitor".into())
                    .spawn(move || janitor_loop(&inner, maintenance, checkpoint_interval))
                    .expect("spawning the platform janitor"),
            );
        }
        Platform {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Registers a city with machine-only resolution (deterministic, the
    /// right default for throughput serving). Returns its [`CityId`].
    pub fn register_city(&self, world: Arc<World>, cfg: ServiceConfig) -> CityId {
        let graph = world.graph_arc();
        let core = cfg.core.clone();
        self.register_city_with(world, cfg, move |_worker| {
            MachineResolver::new(Arc::clone(&graph), core.clone())
        })
    }

    /// Registers a city with a custom per-worker resolver factory.
    /// Workers build one resolver per city lazily and keep it across
    /// requests.
    pub fn register_city_with<R, F>(
        &self,
        world: Arc<World>,
        cfg: ServiceConfig,
        factory: F,
    ) -> CityId
    where
        R: Resolver + Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        self.register_city_inner(
            world,
            cfg,
            Box::new(move |w| Box::new(factory(w)) as Box<dyn Resolver + Send>),
            None,
            None,
        )
    }

    /// The single registration path: builds the city state, wires the
    /// durability sinks (truth commits, and — when the city carries a
    /// [`CrowdState`] handle — crowd answers), wraps the resolver
    /// factory for fault injection when chaos is active, and assigns
    /// the id.
    fn register_city_inner(
        &self,
        world: Arc<World>,
        cfg: ServiceConfig,
        factory: ResolverFactory,
        crowd_state: Option<Arc<dyn CrowdState>>,
        breaker: Option<Arc<CrowdBreaker>>,
    ) -> CityId {
        let factory: ResolverFactory = match self.inner.chaos.clone() {
            // Every city's resolvers — machine and crowd alike — draw
            // from the same injected-panic stream.
            Some(chaos) => Box::new(move |w| {
                Box::new(ChaosResolver::new(factory(w), Arc::clone(&chaos)))
                    as Box<dyn Resolver + Send>
            }),
            None => factory,
        };
        let state = Arc::new(CityState {
            service: Arc::new(RouteService::new(world, cfg)),
            factory,
            crowd_state,
            breaker,
            offboarded: AtomicBool::new(false),
            ingress: CityQueue::new(&self.inner.cfg),
        });
        if state.service.tracer().enabled() {
            // The city's own ingress mutex is attributed to the city;
            // one traced city is enough to make the shared dispatch
            // (scheduler) lock worth timing too.
            state.ingress.locks.set_enabled(true);
            self.inner.sched_locks.set_enabled(true);
        }
        let mut cities = self.inner.cities.write().expect("city registry poisoned");
        let id = cities.len() as u32;
        if let Some(durable) = &self.inner.durable {
            state.service.set_durable_sink(durable.sink(id));
            if let Some(crowd) = &state.crowd_state {
                let sink = durable.sink(id);
                crowd.set_answer_observer(Box::new(move |record| sink.log_answer(record)));
            }
        }
        cities.push(state);
        CityId(id)
    }

    /// Registers a **crowd-backed** city: every platform worker builds
    /// one owned [`CrowdPlanner`] for it (lazily, kept across requests),
    /// all sharing the city's [`CrowdDesk`] — so concurrent resolvers
    /// can never assign any worker more than the desk's
    /// `max_outstanding` simultaneous tasks. Crowd cost and contention
    /// land in the city's statistics (`crowd_questions`,
    /// `crowd_quota_rejections`, `crowd_starved`).
    ///
    /// Fails fast (before registration) on invalid thresholds or a
    /// significance/landmark length mismatch, so per-worker planner
    /// construction cannot fail later.
    ///
    /// Per-worker planners keep a small private truth store (the shared
    /// sharded store already served reuse before the resolver runs); it
    /// is bounded so resident planners cannot grow without bound —
    /// `truth_cap_per_shard × shards` when the city's store is bounded,
    /// else a fixed 4096-entry cap.
    pub fn register_city_crowd(
        &self,
        world: Arc<World>,
        cfg: ServiceConfig,
        crowd: CrowdServing,
    ) -> Result<CityId, CoreError> {
        cfg.core.validate()?;
        if crowd.significance.len() != crowd.landmarks.len() {
            return Err(CoreError::SignificanceLengthMismatch {
                expected: crowd.landmarks.len(),
                actual: crowd.significance.len(),
            });
        }
        let core = cfg.core.clone();
        let truth_cap = if cfg.truth_cap_per_shard == 0 {
            4096
        } else {
            cfg.truth_cap_per_shard.saturating_mul(cfg.shards)
        };
        let persist = crowd.persist.clone();
        // With chaos active, the desk every per-worker planner assigns
        // through injects no-shows (refused reserves) and slow answers.
        let crowd = match self.inner.chaos.clone() {
            Some(chaos) => CrowdServing {
                desk: Arc::new(ChaosDesk::new(Arc::clone(&crowd.desk), chaos)),
                ..crowd
            },
            None => crowd,
        };
        let breaker = crowd.breaker.map(|b| Arc::new(CrowdBreaker::new(b)));
        let breaker_for_factory = breaker.clone();
        let machine_graph = world.graph_arc();
        let machine_core = cfg.core.clone();
        let planner_world = Arc::clone(&world);
        let factory = move |_worker: usize| {
            let mut planner = CrowdPlanner::with_mining_state(
                planner_world.graph_arc(),
                Arc::clone(&crowd.landmarks),
                Arc::clone(&crowd.significance),
                planner_world.trips_arc(),
                planner_world.transfer_arc(),
                planner_world.mpr,
                planner_world.mfp,
                planner_world.ldr,
                Arc::clone(&crowd.desk),
                core.clone(),
            )
            .expect("crowd serving inputs validated at registration");
            planner.set_truth_cap(truth_cap);
            let resolver = CrowdResolver::new(planner, Arc::clone(&crowd.oracle))
                .fail_when_starved(crowd.fail_when_starved);
            match &breaker_for_factory {
                Some(b) => Box::new(crate::chaos::BreakerResolver::new(
                    Box::new(resolver),
                    MachineResolver::new(Arc::clone(&machine_graph), machine_core.clone()),
                    Arc::clone(b),
                )) as Box<dyn Resolver + Send>,
                None => Box::new(resolver) as Box<dyn Resolver + Send>,
            }
        };
        Ok(self.register_city_inner(world, cfg, Box::new(factory), persist, breaker))
    }

    /// Number of registered cities.
    pub fn city_count(&self) -> usize {
        self.inner
            .cities
            .read()
            .expect("city registry poisoned")
            .len()
    }

    /// The per-city service instance (its truth store, stats, config).
    /// `None` for an unregistered id — and for a deregistered city, so
    /// routing layers (the gateway) treat an offboarded city exactly
    /// like one that never existed (404).
    pub fn city_service(&self, city: CityId) -> Option<Arc<RouteService>> {
        self.inner
            .cities
            .read()
            .expect("city registry poisoned")
            .get(city.index())
            .filter(|c| !c.offboarded.load(Ordering::Relaxed))
            .map(|c| Arc::clone(&c.service))
    }

    /// A city's statistics snapshot, or `None` for an unregistered id.
    /// The snapshot's ingress lock-wait entry is this city's own queue
    /// mutex — contention is attributed per city under the sharded
    /// ingress.
    pub fn city_stats(&self, city: CityId) -> Option<StatsSnapshot> {
        let cities = self.inner.cities.read().expect("city registry poisoned");
        cities.get(city.index()).map(|c| {
            let mut snap = c.service.stats();
            snap.locks[LockSite::Ingress.index()] = c.ingress.locks.summary();
            snap
        })
    }

    /// Sets a city's deficit-round-robin weight (clamped to ≥ 1; takes
    /// effect on the city's next quantum). Returns `false` for an
    /// unregistered id.
    pub fn set_city_weight(&self, city: CityId, weight: u32) -> bool {
        let cities = self.inner.cities.read().expect("city registry poisoned");
        match cities.get(city.index()) {
            Some(c) => {
                c.ingress.weight.store(weight.max(1), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// A city's current deficit-round-robin weight, or `None` for an
    /// unregistered id.
    pub fn city_weight(&self, city: CityId) -> Option<u32> {
        let cities = self.inner.cities.read().expect("city registry poisoned");
        cities
            .get(city.index())
            .map(|c| c.ingress.weight.load(Ordering::Relaxed))
    }

    /// Deregisters a city at runtime. Under the city's own queue lock:
    /// later submissions are rejected with
    /// [`ServiceError::CityOffboarded`], every *queued* job is drained
    /// and shed with that terminal error (jobs already dispatched —
    /// in-flight on a worker — resolve normally, exactly once), and the
    /// emptied-forever queue drops out of the DRR rotation on its own
    /// (the scheduler only visits non-empty queues). Cache state —
    /// candidate LRU, mining artifacts, truths — is reclaimed, and
    /// [`Platform::city_service`] answers `None` so a gateway maps the
    /// city to 404. Other cities' queues, weights and fairness are
    /// untouched.
    ///
    /// Returns the number of queued tickets shed (`Some(0)` when the
    /// city was already offboarded — idempotent), or `None` for an id
    /// that was never registered. City ids are dense indices, so the
    /// slot itself is retained as a tombstone: no other city's id
    /// shifts.
    pub fn deregister_city(&self, city: CityId) -> Option<u64> {
        let state = {
            let cities = self.inner.cities.read().expect("city registry poisoned");
            cities.get(city.index()).map(Arc::clone)
        }?;
        let ing = &state.ingress;
        let mut q = ing.locks.lock(&ing.queue);
        if q.offboarded {
            return Some(0);
        }
        q.offboarded = true;
        state.offboarded.store(true, Ordering::SeqCst);
        let dropped: Vec<Job> = q.jobs.drain(..).collect();
        let n = dropped.len();
        q.shed += n as u64;
        if n > 0 {
            if ing.depth.fetch_sub(n, Ordering::SeqCst) == n {
                self.inner.backlogged.fetch_sub(1, Ordering::SeqCst);
            }
            self.inner.queued.fetch_sub(n as u64, Ordering::SeqCst);
        }
        // Wake everything parked on this queue: blocking submitters
        // re-check and get `CityOffboarded`; collectors holding a delay
        // window open re-check and close it.
        ing.arrivals.notify_all();
        ing.not_full.notify_all();
        drop(q);
        // Fulfil outside the queue lock: ticket waiters take their own
        // slot locks.
        for job in dropped {
            job.slot.fulfill(Err(ServiceError::CityOffboarded(city)));
        }
        state.service.reclaim();
        Some(n as u64)
    }

    /// Whether a city has been deregistered (`None` for an id that was
    /// never registered).
    pub fn city_offboarded(&self, city: CityId) -> Option<bool> {
        let cities = self.inner.cities.read().expect("city registry poisoned");
        cities
            .get(city.index())
            .map(|c| c.offboarded.load(Ordering::Relaxed))
    }

    /// Retunes the active chaos engine's fault plan (live; the next
    /// draw at each seam sees the new rates). Returns `false` when the
    /// platform was started without [`PlatformConfig::chaos`] — the
    /// engine cannot be attached after the fact.
    pub fn set_chaos_plan(&self, plan: FaultPlan) -> bool {
        match &self.inner.chaos {
            Some(chaos) => {
                chaos.set_plan(plan);
                true
            }
            None => false,
        }
    }

    /// Point-in-time injected-fault counts, or `None` with chaos off.
    pub fn chaos_stats(&self) -> Option<ChaosSnapshot> {
        self.inner.chaos.as_ref().map(|c| c.snapshot())
    }

    /// A city's crowd-circuit-breaker observables, or `None` for an
    /// unregistered id or a city without a breaker.
    pub fn city_breaker(&self, city: CityId) -> Option<BreakerSnapshot> {
        let cities = self.inner.cities.read().expect("city registry poisoned");
        cities
            .get(city.index())
            .and_then(|c| c.breaker.as_ref())
            .map(|b| b.snapshot())
    }

    /// Non-blocking submission: enqueues the request and returns a
    /// joinable [`Ticket`], or rejects immediately with
    /// [`ServiceError::Busy`] (queue full — back off and resubmit),
    /// [`ServiceError::UnknownCity`] or [`ServiceError::ShuttingDown`].
    pub fn submit(&self, req: Request) -> Result<Ticket, ServiceError> {
        self.submit_inner(req, false)
    }

    /// Like [`Platform::submit`] but waits for queue space instead of
    /// rejecting with `Busy` (it still rejects unknown cities and a
    /// shutting-down platform).
    pub fn submit_blocking(&self, req: Request) -> Result<Ticket, ServiceError> {
        self.submit_inner(req, true)
    }

    fn submit_inner(&self, req: Request, block_on_full: bool) -> Result<Ticket, ServiceError> {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let city = {
            let cities = self.inner.cities.read().expect("city registry poisoned");
            match cities.get(req.city.index()) {
                Some(c) => Arc::clone(c),
                None => {
                    self.inner
                        .rejected_unknown_city
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::UnknownCity(req.city));
                }
            }
        };
        let ing = &city.ingress;
        let mut q = ing.locks.lock(&ing.queue);
        loop {
            // Offboarded wins over draining: a deregistered city's
            // callers get the terminal "gone" answer, not a transient
            // shutdown, whatever order the flags were raised in.
            if q.offboarded {
                self.inner
                    .rejected_offboarded
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::CityOffboarded(req.city));
            }
            if q.draining {
                self.inner.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::ShuttingDown);
            }
            if q.jobs.len() < self.inner.cfg.queue_capacity {
                break;
            }
            if !block_on_full {
                // Shed per city: one city's firehose fills only its own
                // queue.
                q.rejected_busy += 1;
                return Err(ServiceError::Busy);
            }
            q = ing.not_full.wait(q).expect("ingress queue poisoned");
        }
        let slot = Arc::new(TicketSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
            submitted_at: Instant::now(),
            sojourn_ns: AtomicU64::new(0),
        });
        q.jobs.push_back(Job {
            req,
            slot: Arc::clone(&slot),
        });
        q.admitted += 1;
        if ing.depth.fetch_add(1, Ordering::SeqCst) == 0 {
            self.inner.backlogged.fetch_add(1, Ordering::SeqCst);
        }
        self.inner.queued.fetch_add(1, Ordering::SeqCst);
        // A collector holding this city's delay window open must see the
        // arrival now, not when its window expires.
        ing.arrivals.notify_all();
        drop(q);
        // Wake a parked worker — but only touch the shared scheduler
        // lock when someone is actually parked. Under load `sleepers` is
        // zero and submission never serialises on anything global: this
        // is the contention the sharded ingress exists to remove. The
        // SeqCst `queued` store above pairs with the parking worker's
        // SeqCst `sleepers` increment + `queued` re-check, so one of the
        // two sides always observes the other.
        if self.inner.sleepers.load(Ordering::SeqCst) > 0 {
            let _s = self.inner.sched_locks.lock(&self.inner.sched);
            self.inner.work.notify_one();
        }
        Ok(Ticket {
            city: req.city,
            slot,
        })
    }

    /// Closed-batch convenience wrapper over submit/join: submits every
    /// request (waiting for queue space, so batches larger than the
    /// queue are fine) and returns results in request order. This is the
    /// mechanical port target for the old borrowed
    /// `RouteService::serve(&requests, …)` call sites.
    pub fn serve_batch(&self, requests: &[Request]) -> Vec<Result<ServedRoute, ServiceError>> {
        let tickets: Vec<Result<Ticket, ServiceError>> = requests
            .iter()
            .map(|&req| self.submit_blocking(req))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(Ticket::wait))
            .collect()
    }

    /// Point-in-time platform statistics (admission counters + the exact
    /// per-city aggregate).
    pub fn stats(&self) -> PlatformSnapshot {
        snapshot_of(&self.inner)
    }

    /// A point-in-time trace export: dispatch-lock contention plus every
    /// city's per-stage attribution, lock-wait summaries — each city's
    /// own ingress-mutex contention included, now that the ingress is
    /// sharded per city — and sampled complete request traces (non-empty
    /// only for cities configured with
    /// [`TraceConfig::Sampled`](crate::TraceConfig::Sampled)).
    /// Serialise with [`TraceReport::to_json`].
    pub fn trace_report(&self) -> TraceReport {
        let cities = self.inner.cities.read().expect("city registry poisoned");
        TraceReport {
            ingress: self.inner.sched_locks.summary(),
            durability: self.durability_stats(),
            chaos: self.chaos_stats(),
            cities: cities
                .iter()
                .enumerate()
                .map(|(i, city)| {
                    let snap = city.service.stats();
                    let mut locks = snap.locks;
                    locks[LockSite::Ingress.index()] = city.ingress.locks.summary();
                    CityTrace {
                        city: i as u32,
                        stages: snap.stages,
                        locks,
                        traces: city.service.tracer().samples(),
                    }
                })
                .collect(),
        }
    }

    /// The report exported by the most recent background maintenance
    /// sweep, or `None` when no janitor is configured (or it has not
    /// swept yet).
    pub fn maintenance_report(&self) -> Option<MaintenanceReport> {
        self.inner
            .last_maintenance
            .lock()
            .expect("maintenance report poisoned")
            .clone()
    }

    /// Runs one maintenance sweep right now (independent of the
    /// janitor's cadence): evicts truths at least `max_age` old from
    /// every city and exports a report. Returns how many truths were
    /// evicted.
    pub fn sweep_now(&self, max_age: Duration) -> usize {
        maintenance_sweep(&self.inner, max_age)
    }

    /// Point-in-time durability counters, or `None` with durability off.
    pub fn durability_stats(&self) -> Option<DurabilitySnapshot> {
        self.inner.durable.as_ref().map(|d| d.counters.snapshot())
    }

    /// Blocks until every resolution committed before this call has
    /// been appended to the WAL, flushed and fsynced. No-op with
    /// durability off.
    pub fn sync_durable(&self) {
        if let Some(durable) = &self.inner.durable {
            durable.sync();
        }
    }

    /// Streams a snapshot of every city — truth-store contents, and the
    /// crowd state (answer history, rewards, RNG) of cities registered
    /// with a [`CrowdServing::with_persist`] handle — into `dir`.
    ///
    /// The snapshot is written to a temporary file and renamed into
    /// place, so a crash mid-snapshot leaves any previous checkpoint in
    /// `dir` loadable. With durability on, the WAL is rotated first and
    /// the snapshot records the rotation watermark; WAL segments are
    /// **not** deleted (use [`Platform::checkpoint`] for
    /// snapshot-plus-truncation). Shards are exported under brief
    /// per-shard read locks — serving continues throughout. Returns the
    /// watermark (0 with durability off).
    pub fn snapshot_to(&self, dir: &std::path::Path) -> Result<u64, DurableError> {
        snapshot_platform(&self.inner, dir, false)
    }

    /// A full checkpoint into the configured durability directory:
    /// rotates the WAL, snapshots, then deletes the sealed segments
    /// below the rotation cut — their records are folded into the
    /// snapshot. Errors with durability off.
    pub fn checkpoint(&self) -> Result<u64, DurableError> {
        checkpoint_platform(&self.inner)
    }

    /// Rebuilds state from `dir`: loads the snapshot (if one exists),
    /// then replays every WAL record it does not already cover
    /// (deduplicated by truth sequence / crowd generation, so the
    /// rotation overlap is harmless). Cities must already be registered,
    /// in the same order and over the same geometry as when the state
    /// was produced. Truth sequence counters and crowd generations are
    /// re-seeded, so serving resumes with monotone sequences — a warm
    /// restart: truths and answer history intact, caches (candidate LRU,
    /// flight table) deliberately cold.
    pub fn recover_from(&self, dir: &std::path::Path) -> Result<RecoveryReport, DurableError> {
        self.apply_durable(dir, None)
    }

    /// The replay oracle: re-applies the full WAL — ignoring any
    /// snapshot — onto this freshly registered platform. The result is
    /// entry-wise identical to the live store the log was written by,
    /// provided no checkpoint has truncated the log (after truncation,
    /// the snapshot is part of the authoritative state — use
    /// [`Platform::recover_from`]).
    pub fn replay_log(&self, dir: &std::path::Path) -> Result<RecoveryReport, DurableError> {
        self.apply_durable(dir, Some(u64::MAX))
    }

    /// Like [`Platform::replay_log`] but stops after the record with WAL
    /// sequence `upto` (inclusive) — a point-in-time audit prefix.
    pub fn replay_until(
        &self,
        dir: &std::path::Path,
        upto: u64,
    ) -> Result<RecoveryReport, DurableError> {
        self.apply_durable(dir, Some(upto))
    }

    /// Shared engine behind [`Platform::recover_from`] (snapshot + log)
    /// and [`Platform::replay_until`] (`log_only_upto = Some(_)`: log
    /// only, bounded).
    fn apply_durable(
        &self,
        dir: &std::path::Path,
        log_only_upto: Option<u64>,
    ) -> Result<RecoveryReport, DurableError> {
        let cities: Vec<Arc<CityState>> = self
            .inner
            .cities
            .read()
            .expect("city registry poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        let mut report = RecoveryReport::default();
        let mut seen: Vec<HashSet<u64>> = (0..cities.len()).map(|_| HashSet::new()).collect();
        let mut crowd_gen: Vec<u64> = vec![0; cities.len()];
        if log_only_upto.is_none() {
            if let Some(snap) = read_snapshot(dir)? {
                report.wal_watermark = snap.wal_watermark;
                for city_snap in &snap.cities {
                    let idx = city_snap.city as usize;
                    let Some(city) = cities.get(idx) else {
                        return Err(DurableError::Mismatch(format!(
                            "snapshot names city {idx} but only {} cities are registered",
                            cities.len()
                        )));
                    };
                    let graph = city.service.world().graph();
                    for rec in &city_snap.truths {
                        let entry = entry_from_parts(
                            graph,
                            rec.from,
                            rec.to,
                            rec.departure,
                            rec.confidence,
                            &rec.edges,
                        )?;
                        city.service.truths().insert_with_seq(graph, entry, rec.seq);
                        seen[idx].insert(rec.seq);
                        report.truths_restored += 1;
                    }
                    // Re-seed the global sequence even when the city had
                    // inserts past the last exported entry.
                    city.service.truths().seed_seq(city_snap.next_seq);
                    if let Some(crowd_snap) = &city_snap.crowd {
                        let Some(state) = &city.crowd_state else {
                            return Err(DurableError::Mismatch(format!(
                                "snapshot carries crowd state for city {idx}, \
                                 which was registered without a persist handle"
                            )));
                        };
                        state
                            .import_state(&PlatformState {
                                generation: crowd_snap.generation,
                                rng: crowd_snap.rng,
                                points: crowd_snap.points.clone(),
                                response_times: crowd_snap.response_times.clone(),
                                history: crowd_snap.history.clone(),
                            })
                            .map_err(|e| DurableError::Mismatch(e.to_string()))?;
                        crowd_gen[idx] = crowd_snap.generation;
                        report.answers_restored += crowd_snap.generation;
                    }
                }
            }
        }
        let upto = log_only_upto.unwrap_or(u64::MAX);
        for (wal_seq, event) in read_log(dir)? {
            if wal_seq > upto {
                break;
            }
            report.last_wal_seq = Some(wal_seq);
            let idx = event.city() as usize;
            let Some(city) = cities.get(idx) else {
                return Err(DurableError::Mismatch(format!(
                    "the log names city {idx} but only {} cities are registered",
                    cities.len()
                )));
            };
            match event {
                Event::Truth {
                    seq,
                    from,
                    to,
                    departure,
                    confidence,
                    ref edges,
                    ..
                } => {
                    if !seen[idx].insert(seq) {
                        report.truths_skipped += 1;
                        continue;
                    }
                    let graph = city.service.world().graph();
                    let entry = entry_from_parts(graph, from, to, departure, confidence, edges)?;
                    city.service.truths().insert_with_seq(graph, entry, seq);
                    report.truths_replayed += 1;
                }
                Event::Answer {
                    generation,
                    worker,
                    landmark,
                    correct,
                    response_time,
                    ..
                } => {
                    let Some(state) = &city.crowd_state else {
                        return Err(DurableError::Mismatch(format!(
                            "the log carries crowd answers for city {idx}, \
                             which was registered without a persist handle"
                        )));
                    };
                    if generation <= crowd_gen[idx] {
                        report.answers_skipped += 1;
                        continue;
                    }
                    state.apply_answer(&AnswerRecord {
                        worker: WorkerId(worker),
                        landmark: LandmarkId(landmark),
                        correct,
                        response_time,
                        generation,
                    });
                    crowd_gen[idx] = generation;
                    report.answers_replayed += 1;
                }
            }
        }
        Ok(report)
    }

    /// Stops admissions, drains every queued job (each admitted ticket
    /// resolves exactly once) and joins the worker pool (janitor
    /// included). Idempotent; dropping the platform without calling this
    /// does the same.
    pub fn shutdown(self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&self) {
        // Order matters: set every city's drain flag *before* the
        // scheduler's. A submission that passed its city's draining
        // check has pushed its job (and bumped the depth counters)
        // before this loop could take that city's lock — and that
        // happens-before the scheduler flag below, so any worker that
        // observes `draining` also observes every admitted job and
        // drains it.
        {
            let cities = self.inner.cities.read().expect("city registry poisoned");
            for city in cities.iter() {
                let mut q = city.ingress.locks.lock(&city.ingress.queue);
                q.draining = true;
                city.ingress.arrivals.notify_all();
                city.ingress.not_full.notify_all();
                drop(q);
            }
        }
        {
            let mut s = self.inner.sched_locks.lock(&self.inner.sched);
            s.draining = true;
            self.inner.work.notify_all();
        }
        {
            let mut stop = self
                .inner
                .maintenance_stop
                .lock()
                .expect("maintenance stop poisoned");
            *stop = true;
            self.inner.maintenance_cv.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        // Workers are gone, so no new commit events: drain what's
        // queued, final fsync, and join the writer thread.
        if let Some(durable) = &self.inner.durable {
            durable.stop_and_join();
        }
    }
}

/// Assembles the full platform snapshot from shared state (used by both
/// the public [`Platform::stats`] and the janitor's export).
fn snapshot_of(inner: &Inner) -> PlatformSnapshot {
    let cities = inner.cities.read().expect("city registry poisoned");
    let agg = ServiceStats::new();
    let mut truth_evictions = 0u64;
    let mut locks = [LockSummary::default(); LockSite::COUNT];
    for city in cities.iter() {
        agg.absorb(city.service.raw_stats());
        truth_evictions += city.service.truths().evicted();
        for (acc, site) in locks.iter_mut().zip(city.service.lock_summaries()) {
            acc.waits += site.waits;
            acc.wait += site.wait;
            acc.poisoned += site.poisoned;
        }
    }
    let mut aggregate = agg.snapshot();
    aggregate.truth_evictions = truth_evictions;
    // Capture each city's slice — depth, admission, dispatch counters,
    // controller state — under that city's queue lock: dispatch mutates
    // them in the same critical sections that move jobs, so every
    // per-city ledger in [`PlatformSnapshot::is_consistent`] is exact
    // even mid-flight (and so are their sums: cities are captured at
    // different instants, but each city's terms balance internally).
    let mut per_city = Vec::with_capacity(cities.len());
    for (i, city) in cities.iter().enumerate() {
        let ing = &city.ingress;
        let ingress_summary = ing.locks.summary();
        let q = ing.locks.lock(&ing.queue);
        per_city.push(CityQueueSnapshot {
            city: CityId(i as u32),
            weight: ing.weight.load(Ordering::Relaxed),
            queue_depth: q.jobs.len(),
            admitted: q.admitted,
            rejected_busy: q.rejected_busy,
            batched_requests: q.batched_requests,
            unbatched_requests: q.unbatched_requests,
            batch_runs: q.batch_runs,
            batch_max: q.batch_max,
            batch_delay: Duration::from_nanos(q.delay_ns),
            batch_delay_raises: q.delay_raises,
            batch_delay_drops: q.delay_drops,
            max_batch: q.max_batch_cur,
            batch_cap_raises: q.cap_raises,
            batch_cap_drops: q.cap_drops,
            ingress: ingress_summary,
            offboarded: q.offboarded,
            shed: q.shed,
            breaker: city.breaker.as_ref().map(|b| b.snapshot()),
        });
    }
    // The aggregate ingress entry folds every city's own queue mutex
    // plus the shared dispatch (scheduler) lock.
    let mut ingress_total = inner.sched_locks.summary();
    for c in &per_city {
        ingress_total.waits += c.ingress.waits;
        ingress_total.wait += c.ingress.wait;
        ingress_total.poisoned += c.ingress.poisoned;
    }
    locks[LockSite::Ingress.index()] = ingress_total;
    aggregate.locks = locks;
    PlatformSnapshot {
        submitted: inner.submitted.load(Ordering::Relaxed),
        admitted: per_city.iter().map(|c| c.admitted).sum(),
        rejected_busy: per_city.iter().map(|c| c.rejected_busy).sum(),
        rejected_unknown_city: inner.rejected_unknown_city.load(Ordering::Relaxed),
        rejected_shutdown: inner.rejected_shutdown.load(Ordering::Relaxed),
        rejected_offboarded: inner.rejected_offboarded.load(Ordering::Relaxed),
        shed: per_city.iter().map(|c| c.shed).sum(),
        completed: inner.completed.load(Ordering::Relaxed),
        cities: cities.len(),
        queue_depth: per_city.iter().map(|c| c.queue_depth).sum(),
        batched_requests: per_city.iter().map(|c| c.batched_requests).sum(),
        unbatched_requests: per_city.iter().map(|c| c.unbatched_requests).sum(),
        batch_runs: per_city.iter().map(|c| c.batch_runs).sum(),
        batch_max: per_city.iter().map(|c| c.batch_max).max().unwrap_or(0),
        batch_adaptive: inner.cfg.batch.is_some_and(|b| b.is_adaptive()),
        batch_delay: per_city
            .iter()
            .map(|c| c.batch_delay)
            .max()
            .unwrap_or(Duration::ZERO),
        batch_delay_ceiling: inner
            .cfg
            .batch
            .map(|b| b.delay_ceiling())
            .unwrap_or(Duration::ZERO),
        batch_delay_raises: per_city.iter().map(|c| c.batch_delay_raises).sum(),
        batch_delay_drops: per_city.iter().map(|c| c.batch_delay_drops).sum(),
        per_city,
        maintenance_sweeps: inner.maintenance_sweeps.load(Ordering::Relaxed),
        durability: inner.durable.as_ref().map(|d| d.counters.snapshot()),
        chaos: inner.chaos.as_ref().map(|c| c.snapshot()),
        aggregate,
    }
}

/// Builds a [`TruthEntry`] back from its logged parts, re-chaining the
/// edge ids into a [`RoutePath`] on the city's graph.
fn entry_from_parts(
    graph: &cp_roadnet::RoadGraph,
    from: u32,
    to: u32,
    departure: f64,
    confidence: f64,
    edges: &[u32],
) -> Result<TruthEntry, DurableError> {
    let edge_ids: Vec<EdgeId> = edges.iter().map(|&e| EdgeId(e)).collect();
    let path = RoutePath::from_edges(graph, edge_ids).ok_or_else(|| {
        DurableError::Mismatch(
            "a logged path's edges do not chain on this city's graph \
             (recovering against different city geometry?)"
                .into(),
        )
    })?;
    Ok(TruthEntry {
        from: NodeId(from),
        to: NodeId(to),
        departure: TimeOfDay(departure),
        path,
        confidence,
    })
}

/// Streams one snapshot of every registered city into `dir`; with
/// `truncate` (the checkpoint path) the sealed WAL segments below the
/// rotation cut are deleted afterwards.
///
/// Ordering argument: the WAL is rotated **first**. Every record in a
/// sealed segment was appended before the rotation ack, and its store
/// insert completed before the commit site sent it — so the shard
/// exports taken below observe it. Records landing in the fresh segment
/// may or may not make the snapshot; recovery deduplicates them by
/// truth sequence / crowd generation, so the overlap is harmless and
/// nothing is lost.
fn snapshot_platform(
    inner: &Inner,
    dir: &std::path::Path,
    truncate: bool,
) -> Result<u64, DurableError> {
    let cut = inner.durable.as_ref().and_then(|d| d.rotate());
    let watermark = cut.map(|(first_seq, _)| first_seq).unwrap_or(0);
    let cities: Vec<Arc<CityState>> = inner
        .cities
        .read()
        .expect("city registry poisoned")
        .iter()
        .map(Arc::clone)
        .collect();
    let mut writer = SnapshotWriter::create(dir)?;
    for (idx, city) in cities.iter().enumerate() {
        let store = city.service.truths();
        writer.begin_city(idx as u32, store.next_seq())?;
        for shard in 0..store.shard_count() {
            // One shard at a time: brief read locks, serving continues.
            for (seq, entry) in store.export_shard(shard) {
                writer.truth(&TruthRec {
                    seq,
                    from: entry.from.0,
                    to: entry.to.0,
                    departure: entry.departure.0,
                    confidence: entry.confidence,
                    edges: entry.path.edges().iter().map(|e| e.0).collect(),
                })?;
            }
        }
        if let Some(state) = &city.crowd_state {
            let crowd = state.export_state();
            writer.crowd(&CrowdSnapshot {
                generation: crowd.generation,
                rng: crowd.rng,
                points: crowd.points,
                response_times: crowd.response_times,
                history: crowd.history,
            })?;
        }
    }
    writer.finish(watermark)?;
    if truncate {
        if let (Some(durable), Some((_, cut_index))) = (&inner.durable, cut) {
            purge_segments_below(dir, cut_index)?;
            durable.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
            durable
                .counters
                .last_checkpoint_seq
                .store(watermark, Ordering::Relaxed);
            *durable
                .counters
                .last_checkpoint_at
                .lock()
                .expect("checkpoint clock poisoned") = Some(Instant::now());
        }
    }
    Ok(watermark)
}

/// A full checkpoint into the configured durability directory (rotate,
/// snapshot, truncate). Errors with durability off.
fn checkpoint_platform(inner: &Inner) -> Result<u64, DurableError> {
    let Some(durable) = &inner.durable else {
        return Err(DurableError::Mismatch(
            "durability is not configured on this platform".into(),
        ));
    };
    let dir = durable.cfg.dir.clone();
    snapshot_platform(inner, &dir, true)
}

/// One maintenance sweep: age-evict every city's truths, bump the sweep
/// counters and export a fresh report.
fn maintenance_sweep(inner: &Inner, max_age: Duration) -> usize {
    let cities: Vec<Arc<CityState>> = inner
        .cities
        .read()
        .expect("city registry poisoned")
        .iter()
        .map(Arc::clone)
        .collect();
    let mut evicted = 0usize;
    for city in &cities {
        evicted += city.service.evict_truths_older_than(max_age);
    }
    let sweeps = inner.maintenance_sweeps.fetch_add(1, Ordering::Relaxed) + 1;
    let evicted_total = inner
        .maintenance_evicted
        .fetch_add(evicted as u64, Ordering::Relaxed)
        + evicted as u64;
    let report = MaintenanceReport {
        sweeps,
        evicted,
        evicted_total,
        snapshot: snapshot_of(inner),
    };
    *inner
        .last_maintenance
        .lock()
        .expect("maintenance report poisoned") = Some(report);
    evicted
}

/// The resident janitor: park until the next due task — maintenance
/// sweeps and/or durability checkpoints, each on its own deadline-based
/// cadence — run what is due, repeat, until shutdown wakes it. Both
/// tasks are caller-invisible: sweeping touches only truths past
/// `max_age`, checkpointing exports shards under brief read locks.
fn janitor_loop(
    inner: &Inner,
    maintenance: Option<MaintenanceConfig>,
    checkpoint: Option<Duration>,
) {
    let started = Instant::now();
    let mut next_sweep = maintenance.map(|m| started + m.interval);
    let mut next_checkpoint = checkpoint.map(|c| started + c);
    loop {
        let wait = [next_sweep, next_checkpoint]
            .into_iter()
            .flatten()
            .min()
            .map(|due| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));
        let stop = inner
            .maintenance_stop
            .lock()
            .expect("maintenance stop poisoned");
        // Check before parking: a shutdown notification fired while the
        // janitor was mid-task would otherwise be lost (condvar
        // notifications are not sticky) and shutdown would block for a
        // full interval.
        if *stop {
            break;
        }
        let (stop, _timeout) = inner
            .maintenance_cv
            .wait_timeout(stop, wait)
            .expect("maintenance stop poisoned");
        if *stop {
            break;
        }
        drop(stop);
        let now = Instant::now();
        if let (Some(cfg), Some(due)) = (maintenance, next_sweep) {
            if now >= due {
                maintenance_sweep(inner, cfg.max_age);
                next_sweep = Some(now + cfg.interval);
            }
        }
        if let (Some(interval), Some(due)) = (checkpoint, next_checkpoint) {
            if now >= due {
                // A failed periodic checkpoint must not kill the
                // janitor; it is counted and retried next interval.
                if checkpoint_platform(inner).is_err() {
                    if let Some(durable) = &inner.durable {
                        durable.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                next_checkpoint = Some(now + interval);
            }
        }
    }
}

impl Drop for Platform {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("cities", &self.city_count())
            .field("workers", &self.inner.cfg.workers)
            .field("queue_capacity", &self.inner.cfg.queue_capacity)
            .finish()
    }
}

/// Extends a freshly dequeued job into a coalesced run: extracts (in
/// queue order) every job queued in the seed's *city* sharing its
/// origin cell — time buckets mix freely, the fused mining path shares
/// the all-day origin artifacts across them and splits only the MFP
/// period aggregation — and, when the collection window allows, holds
/// the under-full run open for more same-key arrivals on the city's
/// `arrivals` condvar. The whole collection runs under the city's own
/// queue lock: other cities' queues, and the scheduler, are untouched.
///
/// In [`BatchConfig::Adaptive`] mode the window is the *city's*
/// controller's current choice, and the controller is stepped at the
/// end of every collection (under the same city lock that moves jobs):
/// a deep queue or a filled run snaps the delay to zero — at saturation
/// the backlog itself supplies coalescable work and waiting only adds
/// latency. Off a shallow queue the controller climbs optimistically
/// (small windows cannot prove their value, so a lone zero-window
/// dispatch opens a ceiling/16 probe and lone *paid* windows keep
/// doubling toward the ceiling), runs that earn 2..cap reset the
/// give-up streak, and [`ADAPTIVE_GIVE_UP`] consecutive paid windows
/// that each bought nothing snap the window to zero with an
/// [`ADAPTIVE_PROBE_COOLDOWN`]-dispatch cooldown — so sustained
/// unique-origin traffic pays a bounded, amortised probe tax instead
/// of a permanent ceiling-sized window.
///
/// Adaptive mode also steps the **run-size cap** on observed occupancy:
/// a filled run doubles the cap toward the configured `max_batch`
/// (demand outgrew it), while [`ADAPTIVE_CAP_SPARSE_RUNS`] consecutive
/// runs filling ≤ 1/4 of it halve the cap toward
/// [`ADAPTIVE_CAP_FLOOR`] (the cap was all scan cost, no coalescing).
///
/// The dispatch counters are reclassified in the same critical sections
/// that move jobs, so the per-city snapshot ledger `admitted == batched
/// + unbatched + queue_depth` never wavers. The drain flag is
/// re-checked immediately after **every** condvar wake, so a shutdown
/// racing a delay window ends the collection at notification latency —
/// never a full `max_delay` later.
fn collect_run(inner: &Inner, city: &CityState, run: &mut Vec<Job>, batch: BatchConfig) {
    let service = &city.service;
    let cell = service.origin_cell_of(run[0].req.from);
    let same_key = |j: &Job| service.origin_cell_of(j.req.from) == cell;
    let ceiling = batch.delay_ceiling();
    let mut reclassified = false;
    let ing = &city.ingress;
    let mut q = ing.locks.lock(&ing.queue);
    // This collection's run-size cap: the city's adaptive choice (== the
    // configured max_batch in fixed mode).
    let max_batch = q.max_batch_cur.max(1);
    // The depth the seed popped off (our own pop excluded): the
    // controller's saturation signal.
    let seed_depth = q.jobs.len();
    let delay = Duration::from_nanos(q.delay_ns);
    let deadline = Instant::now() + delay;
    loop {
        let mut i = 0;
        let mut took = 0u64;
        while i < q.jobs.len() && run.len() < max_batch {
            if same_key(&q.jobs[i]) {
                run.push(q.jobs.remove(i).expect("index in bounds"));
                took += 1;
            } else {
                i += 1;
            }
        }
        if took > 0 {
            if !reclassified {
                // The seed was booked as unbatched when popped; it now
                // leads a run of ≥ 2.
                q.unbatched_requests -= 1;
                q.batched_requests += 1;
                q.batch_runs += 1;
                reclassified = true;
            }
            q.batched_requests += took;
            q.batch_max = q.batch_max.max(run.len() as u64);
            if ing.depth.fetch_sub(took as usize, Ordering::SeqCst) == took as usize {
                inner.backlogged.fetch_sub(1, Ordering::SeqCst);
            }
            inner.queued.fetch_sub(took, Ordering::SeqCst);
            ing.not_full.notify_all();
        }
        if run.len() >= max_batch || q.draining || q.offboarded {
            break;
        }
        let now = Instant::now();
        let Some(remaining) = deadline
            .checked_duration_since(now)
            .filter(|d| !d.is_zero())
        else {
            break;
        };
        let (guard, _) = ing
            .arrivals
            .wait_timeout(q, remaining)
            .expect("ingress queue poisoned");
        q = guard;
        // Re-check the drain/offboard flags on every wake, before
        // rescanning: a drain — or a deregistration — racing this delay
        // window must not hold the worker until the deadline. (The loop
        // top still harvests already-queued cell-mates into the run on
        // the drain pass — they drain faster fused than one by one.)
        if q.draining || q.offboarded {
            continue;
        }
    }
    if batch.is_adaptive() {
        let ceiling_ns = ceiling.as_nanos().min(u64::MAX as u128) as u64;
        let step = (ceiling_ns / 16).max(1);
        if seed_depth + 1 >= max_batch || run.len() >= max_batch {
            // Saturation: backlog (or a filled run) means coalescing
            // needs no help — zero the window. Real load also resets
            // the give-up bookkeeping: probing is worth retrying once
            // the backlog drains.
            if q.delay_ns > 0 {
                q.delay_ns = 0;
                q.delay_drops += 1;
            }
            q.unproductive = 0;
            q.probe_cooldown = 0;
        } else if run.len() == 1 {
            if delay.is_zero() {
                // A lone opportunistic dispatch. Small windows cannot
                // prove their value (a mate rarely lands inside one),
                // so climbing must be optimistic — but only when the
                // last give-up has cooled off, so sustained
                // unique-origin traffic pays a bounded, amortised tax
                // instead of a window on every request.
                if q.probe_cooldown > 0 {
                    q.probe_cooldown -= 1;
                } else if q.delay_ns < step {
                    q.delay_ns = step.min(ceiling_ns);
                    q.delay_raises += 1;
                }
            } else {
                // We paid a window and it bought nothing.
                q.unproductive += 1;
                if q.unproductive >= ADAPTIVE_GIVE_UP {
                    // Enough consecutive unproductive windows: give up,
                    // snap to zero and let the cooldown meter out the
                    // next probe. Total waste per cycle is bounded by
                    // GIVE_UP × ceiling across GIVE_UP + COOLDOWN
                    // dispatches.
                    q.delay_ns = 0;
                    q.delay_drops += 1;
                    q.unproductive = 0;
                    q.probe_cooldown = ADAPTIVE_PROBE_COOLDOWN;
                } else if q.delay_ns < ceiling_ns {
                    // Keep ramping: the window may simply still be too
                    // short to catch the trickle.
                    q.delay_ns = q.delay_ns.saturating_mul(2).min(ceiling_ns);
                    q.delay_raises += 1;
                }
            }
        } else {
            // A run of 2..cap off a shallow queue: coalescing is being
            // earned at this window.
            q.unproductive = 0;
            if !delay.is_zero() && q.delay_ns > 0 && q.delay_ns < ceiling_ns {
                q.delay_ns = q.delay_ns.saturating_mul(2).min(ceiling_ns);
                q.delay_raises += 1;
            }
        }
        // Step the run-size cap on observed occupancy.
        let configured = batch.max_batch();
        let floor = ADAPTIVE_CAP_FLOOR.min(configured);
        if run.len() >= max_batch && max_batch < configured {
            // The cap was binding: demand outgrew it.
            q.max_batch_cur = max_batch.saturating_mul(2).min(configured);
            q.cap_raises += 1;
            q.sparse_runs = 0;
        } else if run.len() >= 2 && run.len().saturating_mul(4) <= max_batch {
            q.sparse_runs += 1;
            if q.sparse_runs >= ADAPTIVE_CAP_SPARSE_RUNS && max_batch > floor {
                q.max_batch_cur = (max_batch / 2).max(floor);
                q.cap_drops += 1;
                q.sparse_runs = 0;
            }
        } else if run.len() >= 2 {
            q.sparse_runs = 0;
        }
    }
}

/// Nanoseconds since `t0`, saturating at `u64::MAX`.
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Attributes a job's submit→now sojourn to [`Stage::QueueWait`] in its
/// city's histograms (tracing-gated by the caller).
fn record_queue_wait(service: &RouteService, job: &Job) {
    service
        .raw_stats()
        .record_stage(Stage::QueueWait, elapsed_ns(job.slot.submitted_at));
}

/// One deficit-round-robin scheduling decision, under the scheduler
/// lock. Classic DRR adapted to unit-cost seed dispatches: when the
/// rotation's cursor rests on a backlogged city with an exhausted
/// deficit, the city is granted its quantum (= its weight); each pick
/// spends one unit; a spent quantum advances the cursor; an **empty**
/// queue forfeits its unused deficit, so idle cities cannot bank
/// capacity and burst-starve others — which is also why a hot city may
/// freely absorb capacity the cold cities are not using. Returns the
/// picked city's index, or `None` after a full rotation found every
/// queue empty.
fn drr_pick(s: &mut Scheduler, cities: &[Arc<CityState>]) -> Option<usize> {
    let n = cities.len();
    if n == 0 {
        return None;
    }
    if s.cursor >= n {
        s.cursor = 0;
    }
    let mut hops = 0;
    loop {
        let i = s.cursor;
        if cities[i].ingress.depth.load(Ordering::SeqCst) > 0 {
            if s.deficits[i] == 0 {
                // The rotation arrived at a backlogged city: grant its
                // quantum.
                s.deficits[i] = u64::from(cities[i].ingress.weight.load(Ordering::Relaxed).max(1));
            }
            s.deficits[i] -= 1;
            if s.deficits[i] == 0 {
                // Quantum spent: the next city's turn.
                s.cursor = (i + 1) % n;
            }
            return Some(i);
        }
        s.deficits[i] = 0;
        s.cursor = (i + 1) % n;
        hops += 1;
        if hops >= n {
            return None;
        }
    }
}

/// The worker-side dispatch: pick a city — straight off the single
/// backlogged queue when at most one city has work (no scheduler lock
/// touched), via weighted DRR when two or more compete — pop its front
/// job (booking it unbatched under the city's lock; `collect_run`
/// reclassifies if a run forms), or park on the shared `work` condvar
/// until a submission or drain wakes us. Returns `None` — the worker's
/// exit signal — only when draining is set and every queue is empty.
fn next_job(inner: &Inner) -> Option<(usize, Arc<CityState>, Job)> {
    loop {
        {
            // Registry read lock, then scheduler lock — the same order
            // everywhere, and neither is held across a condvar wait on
            // the other's path.
            let cities = inner.cities.read().expect("city registry poisoned");
            let picked = if inner.backlogged.load(Ordering::SeqCst) <= 1 {
                // At most one city has backlog: there is no fairness
                // decision to make, so skip the scheduler lock and
                // serve that city directly. This keeps the dispatch
                // hot path free of global locks under the common
                // single-hot-city regime; DRR state is consulted only
                // when two queues actually compete. Deficits left over
                // from the last contested phase are bounded by a
                // weight, so fairness resumes within one quantum when
                // a second city fills up.
                cities
                    .iter()
                    .position(|c| c.ingress.depth.load(Ordering::SeqCst) > 0)
            } else {
                let mut s = inner.sched_locks.lock(&inner.sched);
                if s.deficits.len() < cities.len() {
                    s.deficits.resize(cities.len(), 0);
                }
                drr_pick(&mut s, &cities)
            };
            if let Some(i) = picked {
                let city = Arc::clone(&cities[i]);
                drop(cities);
                let ing = &city.ingress;
                let mut q = ing.locks.lock(&ing.queue);
                if let Some(job) = q.jobs.pop_front() {
                    q.unbatched_requests += 1;
                    if ing.depth.fetch_sub(1, Ordering::SeqCst) == 1 {
                        inner.backlogged.fetch_sub(1, Ordering::SeqCst);
                    }
                    inner.queued.fetch_sub(1, Ordering::SeqCst);
                    ing.not_full.notify_one();
                    drop(q);
                    return Some((i, city, job));
                }
                // Another worker (or a collector's run) emptied the
                // queue between the peek and the pop; rescan.
                continue;
            }
        }
        // Every queue looked empty. Decide between the drain exit and
        // parking, both under the scheduler lock. The SeqCst `sleepers`
        // increment *before* the `queued` re-check pairs with the
        // submitter's SeqCst `queued` increment *before* its `sleepers`
        // check: whichever side runs second observes the other, so
        // either we see the job and rescan, or the submitter sees us
        // and takes the scheduler lock to notify — and that notify
        // serialises with our wait below.
        let mut s = inner.sched_locks.lock(&inner.sched);
        if s.draining {
            if inner.queued.load(Ordering::SeqCst) == 0 {
                return None;
            }
            // A job landed after the scan passed its city; rescan
            // rather than park (no more wakeups are coming).
            continue;
        }
        inner.sleepers.fetch_add(1, Ordering::SeqCst);
        if inner.queued.load(Ordering::SeqCst) == 0 && !s.draining {
            // The timeout is a belt-and-braces safety net, not a
            // polling loop: every enqueue-vs-park race is closed by the
            // sleepers/queued handshake above.
            let (guard, _) = inner
                .work
                .wait_timeout(s, Duration::from_millis(50))
                .expect("scheduler poisoned");
            s = guard;
        }
        drop(s);
        inner.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The resident worker: pick a `(city, job)` via weighted DRR
/// (extending the job into a coalesced run when
/// [`PlatformConfig::batch`] is set), route it to the city's service
/// with this worker's cached per-city resolver, fulfil the ticket(s).
/// Exits once draining is set and every city's queue is empty — never
/// before, so every admitted ticket is resolved exactly once. A
/// panicking resolver is contained: the affected tickets resolve with
/// [`ServiceError::ResolverPanicked`], the panicked resolver is
/// discarded (rebuilt from the factory on the city's next request) and
/// the worker keeps serving — a panic can never strand tickets or
/// shrink the pool.
fn worker_loop(inner: &Inner, worker_idx: usize) {
    let mut resolvers: Vec<Option<Box<dyn Resolver + Send>>> = Vec::new();
    loop {
        let Some((city_idx, city, job)) = next_job(inner) else {
            break;
        };
        if let Some(chaos) = &inner.chaos {
            // Worker-side injection, after the dispatch decision and
            // before service: churn (cache-invalidating generation
            // bumps under load), stalls and slowdowns all hit a request
            // that is already owned, so "every admitted ticket resolves
            // exactly once" is what these faults put under test.
            if chaos.roll(FaultSite::GenerationChurn) {
                city.service.world().bump_generation();
            }
            if chaos.roll(FaultSite::StallWorker) {
                std::thread::sleep(chaos.stall_worker_delay());
            } else if chaos.roll(FaultSite::SlowWorker) {
                std::thread::sleep(chaos.slow_worker_delay());
            }
        }
        let traced = city.service.tracer().enabled();
        if traced {
            // The seed's queue wait ends at its pop; run members booked
            // below additionally wait through the collection window.
            record_queue_wait(&city.service, &job);
        }
        let mut run = vec![job];
        if let Some(batch) = inner.cfg.batch {
            if batch.max_batch() > 1 {
                let collect_t0 = traced.then(Instant::now);
                collect_run(inner, &city, &mut run, batch);
                if let Some(t0) = collect_t0 {
                    city.service
                        .raw_stats()
                        .record_stage(Stage::BatchCollect, elapsed_ns(t0));
                }
                if traced {
                    for member in &run[1..] {
                        record_queue_wait(&city.service, member);
                    }
                }
            }
        }
        if resolvers.len() <= city_idx {
            resolvers.resize_with(city_idx + 1, || None);
        }
        let resolver = resolvers[city_idx].get_or_insert_with(|| (city.factory)(worker_idx));
        if run.len() == 1 {
            let job = run.pop().expect("run holds the seed");
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                city.service.handle(job.req, resolver)
            }))
            .unwrap_or_else(|_| {
                // The resolver may have been left mid-mutation; drop it
                // and rebuild lazily. The request was counted on entry
                // to `handle`, so book the missing outcome as an error.
                resolvers[city_idx] = None;
                city.service.note_panicked_request();
                Err(ServiceError::ResolverPanicked)
            });
            inner.completed.fetch_add(1, Ordering::Relaxed);
            job.slot.fulfill(result);
        } else {
            let reqs: Vec<Request> = run.iter().map(|j| j.req).collect();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                city.service.serve_coalesced(&reqs, resolver)
            }));
            match outcome {
                Ok(results) => {
                    // `serve_coalesced` contains resolver panics and
                    // surfaces them as results; a poisoned resolver must
                    // still be discarded here.
                    if results
                        .iter()
                        .any(|r| matches!(r, Err(ServiceError::ResolverPanicked)))
                    {
                        resolvers[city_idx] = None;
                    }
                    for (job, result) in run.into_iter().zip(results) {
                        inner.completed.fetch_add(1, Ordering::Relaxed);
                        job.slot.fulfill(result);
                    }
                }
                Err(_) => {
                    // Non-resolver panic inside the batch path (the
                    // resolver kind is contained): fail every ticket in
                    // the run, best-effort error accounting as in the
                    // single-request path.
                    resolvers[city_idx] = None;
                    city.service.note_panicked_requests(run.len());
                    for job in run {
                        inner.completed.fetch_add(1, Ordering::Relaxed);
                        job.slot.fulfill(Err(ServiceError::ResolverPanicked));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams, NodeId};
    use cp_traj::{generate_trips, TimeOfDay, TripGenParams};

    fn mini_world(seed: u64) -> Arc<World> {
        let city = generate_city(&CityParams::small(), seed).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), seed).unwrap();
        Arc::new(World::new(city.graph, trips.trips))
    }

    #[test]
    fn platform_is_send_sync_and_tickets_are_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Platform>();
        assert_send::<Ticket>();
    }

    #[test]
    fn submit_wait_round_trip_and_stats() {
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 2,
            queue_capacity: 64,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        assert_eq!(id, CityId(0));
        let ticket = platform
            .submit(Request::to_city(
                id,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap();
        assert_eq!(ticket.city(), id);
        let served = ticket.wait().unwrap();
        assert_eq!(served.path.source(), NodeId(0));
        assert_eq!(served.path.destination(), NodeId(59));
        let snap = platform.stats();
        assert!(snap.is_consistent());
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.admitted, 1);
        assert_eq!(snap.cities, 1);
        platform.shutdown();
    }

    #[test]
    fn try_wait_polls_and_latency_reports_after_completion() {
        let platform = Platform::start(PlatformConfig::default());
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let ticket = platform
            .submit(Request::to_city(
                id,
                NodeId(3),
                NodeId(55),
                TimeOfDay::from_hours(9.0),
            ))
            .unwrap();
        // Poll until done (the worker may or may not have finished yet —
        // both `None` and `Some` are legal while we spin).
        let result = loop {
            if let Some(result) = ticket.try_wait() {
                break result;
            }
            std::thread::yield_now();
        };
        assert!(result.is_ok());
        assert!(ticket.is_done());
        let lat = ticket.latency().expect("completed tickets report latency");
        assert!(lat > Duration::ZERO);
        // try_wait clones; wait still yields the result afterwards.
        assert!(ticket.wait().is_ok());
        platform.shutdown();
    }

    #[test]
    fn wait_timeout_expires_then_completes() {
        // A platform with zero appetite: one worker, wedged behind a
        // slow-city request, so a second ticket predictably outlives a
        // tiny deadline.
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 64,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let submit = |n: u32| {
            platform
                .submit(Request::to_city(
                    id,
                    NodeId(n),
                    NodeId(59 - n),
                    TimeOfDay::from_hours(8.0),
                ))
                .unwrap()
        };
        // Enough queued work that the last ticket cannot resolve within
        // a zero-length deadline.
        let tickets: Vec<Ticket> = (0..16).map(submit).collect();
        let last = tickets.into_iter().next_back().unwrap();
        let mut ticket = match last.wait_timeout(Duration::ZERO) {
            Err(ticket) => ticket,
            // Absurdly fast machine: the result is already in — the Ok
            // side is still a valid outcome of the API.
            Ok(result) => return assert!(result.is_ok()),
        };
        // The returned ticket keeps working: a generous re-wait joins
        // the same request.
        loop {
            match ticket.wait_timeout(Duration::from_secs(5)) {
                Ok(result) => {
                    assert!(result.is_ok());
                    break;
                }
                Err(t) => ticket = t,
            }
        }
        platform.shutdown();
    }

    #[test]
    fn unknown_city_is_rejected_without_enqueueing() {
        let platform = Platform::start(PlatformConfig::default());
        let err = platform
            .submit(Request::to_city(
                CityId(5),
                NodeId(0),
                NodeId(1),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownCity(CityId(5)));
        let snap = platform.stats();
        assert_eq!(snap.rejected_unknown_city, 1);
        assert_eq!(snap.admitted, 0);
        assert!(snap.is_consistent());
        platform.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One worker behind a 1-slot queue, hammered with non-blocking
        // submits: resolution takes far longer than enqueueing, so some
        // submits must find the queue full and shed.
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 1,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let mut busy = 0u32;
        let mut tickets = Vec::new();
        for i in 0..200u32 {
            let req = Request::to_city(
                id,
                NodeId(i % 20),
                NodeId(59 - (i % 13)),
                TimeOfDay::from_hours(8.0),
            );
            match platform.submit(req) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::Busy) => busy += 1,
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        assert!(busy > 0, "a 1-slot queue under burst load must shed");
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = platform.stats();
        assert_eq!(snap.rejected_busy, busy as u64);
        assert!(snap.is_consistent());
        platform.shutdown();
    }

    #[test]
    fn shutdown_drains_and_rejects_new_work() {
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 2,
            queue_capacity: 128,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let tickets: Vec<Ticket> = (0..50u32)
            .map(|i| {
                platform
                    .submit_blocking(Request::to_city(
                        id,
                        NodeId(i % 20),
                        NodeId(59 - (i % 13)),
                        TimeOfDay::from_hours(8.0),
                    ))
                    .unwrap()
            })
            .collect();
        let snap_before = platform.stats();
        assert_eq!(snap_before.admitted, 50);
        platform.shutdown();
        // Every admitted ticket resolved exactly once.
        for t in &tickets {
            assert!(t.is_done(), "shutdown must drain all admitted tickets");
            assert!(t.try_wait().unwrap().is_ok());
        }
    }

    #[test]
    fn panicking_resolver_fails_its_ticket_but_not_the_platform() {
        use crate::resolver::Resolved;
        use cp_mining::CandidateRoute;

        /// Panics on one poisoned origin, resolves normally otherwise.
        struct Panicky(MachineResolver);
        impl Resolver for Panicky {
            fn resolve(
                &mut self,
                from: NodeId,
                to: NodeId,
                departure: TimeOfDay,
                candidates: &[CandidateRoute],
            ) -> Result<Resolved, ServiceError> {
                assert!(from != NodeId(13), "poisoned request");
                self.0.resolve(from, to, departure, candidates)
            }
        }

        let world = mini_world(7);
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 16,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let cfg = ServiceConfig::strict_deterministic();
        let core = cfg.core.clone();
        let graph = world.graph_arc();
        let id = platform.register_city_with(Arc::clone(&world), cfg, move |_| {
            Panicky(MachineResolver::new(Arc::clone(&graph), core.clone()))
        });

        let poisoned = platform
            .submit(Request::to_city(
                id,
                NodeId(13),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap();
        assert!(matches!(
            poisoned.wait(),
            Err(ServiceError::ResolverPanicked)
        ));

        // The single worker survived: later requests still serve, so a
        // panic can neither strand tickets nor shrink the pool.
        let healthy = platform
            .submit(Request::to_city(
                id,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap();
        assert!(healthy.wait().is_ok());

        let snap = platform.city_stats(id).unwrap();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.errors, 1);
        assert!(snap.is_consistent(), "{snap:?}");
        platform.shutdown();
    }

    #[test]
    fn janitor_sweeps_and_exports_reports() {
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 2,
            queue_capacity: 64,
            maintenance: Some(MaintenanceConfig {
                interval: Duration::from_millis(2),
                max_age: Duration::ZERO,
            }),
            batch: None,
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        for i in 0..6u32 {
            platform
                .submit_blocking(Request::to_city(
                    id,
                    NodeId(i),
                    NodeId(59 - i),
                    TimeOfDay::from_hours(8.0),
                ))
                .unwrap()
                .wait()
                .unwrap();
        }
        // Every resolution deposited a truth with max_age ZERO: the
        // janitor must observe and evict them. Wait (bounded) for at
        // least one sweep that evicted something.
        let deadline = Instant::now() + Duration::from_secs(5);
        let report = loop {
            if let Some(r) = platform.maintenance_report() {
                if r.evicted_total > 0 {
                    break r;
                }
            }
            assert!(Instant::now() < deadline, "janitor never swept an eviction");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(report.sweeps > 0);
        assert!(report.snapshot.is_consistent());
        assert!(report.snapshot.maintenance_sweeps >= report.sweeps);
        assert!(report.snapshot.aggregate.truth_evictions > 0);
        // The sweep counter also surfaces through the ordinary stats.
        assert!(platform.stats().maintenance_sweeps > 0);
        platform.shutdown();
    }

    #[test]
    fn sweep_now_runs_without_a_janitor() {
        let platform = Platform::start(PlatformConfig::default());
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        platform
            .submit_blocking(Request::to_city(
                id,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(platform.maintenance_report().map(|r| r.sweeps), None);
        let evicted = platform.sweep_now(Duration::ZERO);
        assert_eq!(evicted, 1);
        let report = platform.maintenance_report().expect("sweep exports");
        assert_eq!(report.sweeps, 1);
        assert_eq!(report.evicted, 1);
        platform.shutdown();
    }

    #[test]
    fn crowd_city_serves_on_the_resident_pool() {
        use crate::resolver::OracleFactory;
        use cp_crowd::{AnswerModel, PopulationParams, SharedCrowd, WorkerPopulation};
        use cp_roadnet::{generate_landmarks, LandmarkGenParams, LandmarkId};
        use cp_traj::{
            generate_checkins, generate_trips, infer_significance, CalibrationParams,
            CheckInGenParams, SignificanceParams, TripGenParams,
        };

        let city = generate_city(&CityParams::small(), 7).unwrap();
        let landmarks = generate_landmarks(&city.graph, &LandmarkGenParams::default(), 7);
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let checkins = generate_checkins(&city.graph, &landmarks, &CheckInGenParams::default(), 7);
        let significance = infer_significance(
            &city.graph,
            &landmarks,
            &checkins,
            &trips,
            &CalibrationParams::default(),
            &SignificanceParams::default(),
        );
        let world = Arc::new(World::new(city.graph.clone(), trips.trips));
        let pop = WorkerPopulation::generate(&city.graph, &PopulationParams::default(), 7);
        let mut crowd_platform = cp_crowd::Platform::new(pop, AnswerModel::default(), 7);
        crowd_platform.warm_up(&landmarks, 10);
        let desk = Arc::new(SharedCrowd::new(crowd_platform, 3));
        let oracle: Arc<dyn OracleFactory> =
            Arc::new(|_f: NodeId, _t: NodeId| |l: LandmarkId| l.0.is_multiple_of(2));

        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 2,
            queue_capacity: 64,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let bad = platform.register_city_crowd(
            Arc::clone(&world),
            ServiceConfig::default(),
            CrowdServing::new(
                Arc::new(landmarks.clone()),
                Arc::new(vec![0.5; 3]),
                Arc::clone(&desk) as Arc<dyn cp_crowd::CrowdDesk>,
                Arc::clone(&oracle),
            ),
        );
        assert!(bad.is_err(), "length mismatch must fail at registration");

        let id = platform
            .register_city_crowd(
                Arc::clone(&world),
                ServiceConfig::default(),
                CrowdServing::new(
                    Arc::new(landmarks),
                    Arc::new(significance),
                    Arc::clone(&desk) as Arc<dyn cp_crowd::CrowdDesk>,
                    oracle,
                ),
            )
            .unwrap();
        for (a, b) in [(0u32, 59u32), (5, 54), (12, 47)] {
            let served = platform
                .submit_blocking(Request::to_city(
                    id,
                    NodeId(a),
                    NodeId(b),
                    TimeOfDay::from_hours(8.0),
                ))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(served.path.source(), NodeId(a));
            assert_eq!(served.path.destination(), NodeId(b));
        }
        let snap = platform.city_stats(id).unwrap();
        assert_eq!(snap.requests, 3);
        assert!(snap.is_consistent());
        platform.shutdown();
        // Drained: no reservation leaked, no quota held.
        assert!(desk.desk_stats().is_drained());
    }

    #[test]
    fn batching_dispatcher_coalesces_hot_origin_runs() {
        let world = mini_world(7);
        // Sequential baseline for byte-identity.
        let cfg = ServiceConfig::strict_deterministic();
        let requests: Vec<Request> = (0..24u32)
            .map(|i| {
                Request::new(
                    NodeId(i % 2),
                    NodeId(59 - (i % 12)),
                    TimeOfDay::from_hours(8.0),
                )
            })
            .filter(|r| r.from != r.to)
            .collect();
        let baseline_service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut baseline_resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let expected: Vec<cp_roadnet::Path> = requests
            .iter()
            .map(|&r| {
                baseline_service
                    .handle(r, &mut baseline_resolver)
                    .unwrap()
                    .path
            })
            .collect();

        // One worker + a generous collection window: the burst below is
        // fully queued long before the window closes, so coalesced runs
        // of ≥ 2 must form.
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 64,
            maintenance: None,
            batch: Some(BatchConfig::fixed(8, Duration::from_millis(200))),
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(Arc::clone(&world), cfg);
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|&r| {
                let mut req = r;
                req.city = id;
                platform.submit_blocking(req).expect("admitted")
            })
            .collect();
        let mut paths = Vec::new();
        for t in tickets {
            paths.push(t.wait().expect("served"));
        }
        for (i, served) in paths.iter().enumerate() {
            assert_eq!(served.path, expected[i], "request {i}");
        }

        let snap = platform.stats();
        assert!(snap.is_consistent(), "{snap:?}");
        assert_eq!(snap.admitted, requests.len() as u64);
        assert_eq!(
            snap.batched_requests + snap.unbatched_requests,
            snap.admitted,
            "drained: every admitted job was dispatched"
        );
        assert!(snap.batch_runs >= 1, "a queued burst must coalesce");
        assert!(snap.batch_max >= 2);
        let city = platform.city_stats(id).unwrap();
        assert!(city.is_consistent(), "{city:?}");
        assert_eq!(city.requests, requests.len() as u64);
        assert_eq!(city.batched_requests, snap.batched_requests);
        assert_eq!(city.batch_max, snap.batch_max);
        platform.shutdown();
    }

    #[test]
    fn adaptive_controller_climbs_then_gives_up_on_unproductive_windows() {
        let ceiling = Duration::from_millis(4);
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 256,
            maintenance: None,
            batch: Some(BatchConfig::adaptive(4, ceiling)),
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let single = |i: u32| {
            platform
                .submit_blocking(Request::to_city(
                    id,
                    NodeId(i % 20),
                    NodeId(59 - (i % 13)),
                    TimeOfDay::from_hours(8.0),
                ))
                .unwrap()
                .wait()
                .unwrap();
        };

        // Phase 1 — a few isolated singles (each joined before the next
        // submit): the first lone dispatch (no window paid) opens the
        // probe; later lone *paid* windows keep ramping optimistically.
        for i in 0..4u32 {
            single(i);
        }
        let snap = platform.stats();
        assert!(snap.batch_adaptive);
        assert_eq!(snap.batch_delay_ceiling, ceiling);
        assert!(snap.batch_delay > Duration::ZERO, "the climb must start");
        assert!(snap.batch_delay <= ceiling);
        assert!(snap.batch_delay_raises >= 2);
        assert!(snap.is_consistent(), "{snap:?}");

        // Phase 2 — keep the unique-origin trickle coming: after
        // ADAPTIVE_GIVE_UP consecutive unproductive paid windows the
        // controller must give up (snap to zero) and hold the probe
        // closed through its cooldown, so sparse traffic is not taxed
        // on every request.
        for i in 4..4 + ADAPTIVE_GIVE_UP + 4 {
            single(i);
        }
        let snap = platform.stats();
        assert_eq!(
            snap.batch_delay,
            Duration::ZERO,
            "sustained unproductive windows must converge to zero: {snap:?}"
        );
        assert!(snap.batch_delay_drops >= 1, "the give-up counts as a drop");
        assert!(snap.is_consistent(), "{snap:?}");

        // Phase 3 — a same-origin burst: saturation keeps the window at
        // zero (drops need not move — it already is zero) and resets
        // the give-up bookkeeping; runs must coalesce.
        let tickets: Vec<Ticket> = (0..64u32)
            .map(|i| {
                platform
                    .submit_blocking(Request::to_city(
                        id,
                        NodeId(0),
                        NodeId(1 + (i % 58)),
                        TimeOfDay::from_hours(8.0),
                    ))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = platform.stats();
        assert!(snap.batch_delay <= ceiling);
        assert!(snap.batch_runs >= 1, "the burst must coalesce");
        assert!(snap.is_consistent(), "{snap:?}");
        platform.shutdown();
    }

    #[test]
    fn fixed_mode_reports_its_window_and_never_transitions() {
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 64,
            maintenance: None,
            batch: Some(BatchConfig::fixed(4, Duration::from_millis(1))),
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        for i in 0..6u32 {
            platform
                .submit_blocking(Request::to_city(
                    id,
                    NodeId(i),
                    NodeId(59 - i),
                    TimeOfDay::from_hours(8.0),
                ))
                .unwrap()
                .wait()
                .unwrap();
        }
        let snap = platform.stats();
        assert!(!snap.batch_adaptive);
        assert_eq!(snap.batch_delay, Duration::from_millis(1));
        assert_eq!(snap.batch_delay_ceiling, Duration::from_millis(1));
        assert_eq!(snap.batch_delay_raises, 0);
        assert_eq!(snap.batch_delay_drops, 0);
        assert!(snap.is_consistent(), "{snap:?}");
        platform.shutdown();
    }

    #[test]
    fn cell_keyed_runs_coalesce_across_time_buckets() {
        let world = mini_world(7);
        let cfg = ServiceConfig::strict_deterministic();
        // Same origin, destinations spread over *different* departure
        // buckets: the cell-keyed collector must still fold them into
        // one run, and the fused path must stay byte-identical.
        let requests: Vec<Request> = (0..12u32)
            .map(|i| {
                Request::new(
                    NodeId(0),
                    NodeId(40 + i),
                    TimeOfDay::from_hours(7.0 + (i % 3) as f64),
                )
            })
            .collect();
        let baseline_service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut baseline_resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let expected: Vec<cp_roadnet::Path> = requests
            .iter()
            .map(|&r| {
                baseline_service
                    .handle(r, &mut baseline_resolver)
                    .unwrap()
                    .path
            })
            .collect();

        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 64,
            maintenance: None,
            batch: Some(BatchConfig::fixed(12, Duration::from_millis(200))),
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(Arc::clone(&world), cfg);
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|&r| {
                let mut req = r;
                req.city = id;
                platform.submit_blocking(req).expect("admitted")
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().expect("served").path, expected[i], "request {i}");
        }
        let snap = platform.stats();
        assert!(snap.is_consistent(), "{snap:?}");
        assert!(
            snap.batch_max >= 2,
            "cross-bucket requests must coalesce: {snap:?}"
        );
        // The fused path shared origin artifacts across the run's
        // buckets: exactly one expansion for the lone origin.
        let city = platform.city_stats(id).unwrap();
        assert!(city.artifact_misses >= 1);
        assert!(
            city.artifact_misses + city.artifact_hits >= 1,
            "mining went through the artifact path"
        );
        platform.shutdown();
    }

    #[test]
    fn batching_off_leaves_dispatch_unbatched() {
        let platform = Platform::start(PlatformConfig::default());
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        for i in 0..5u32 {
            platform
                .submit_blocking(Request::to_city(
                    id,
                    NodeId(i),
                    NodeId(59 - i),
                    TimeOfDay::from_hours(8.0),
                ))
                .unwrap()
                .wait()
                .unwrap();
        }
        let snap = platform.stats();
        assert!(snap.is_consistent(), "{snap:?}");
        assert_eq!(snap.unbatched_requests, 5);
        assert_eq!(snap.batched_requests, 0);
        assert_eq!(snap.batch_runs, 0);
        assert_eq!(snap.batch_max, 0);
        platform.shutdown();
    }

    #[test]
    fn second_city_routes_independently() {
        let platform = Platform::start(PlatformConfig::default());
        let a = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let b = platform.register_city(mini_world(11), ServiceConfig::strict_deterministic());
        assert_ne!(a, b);
        assert_eq!(platform.city_count(), 2);
        let ta = platform
            .submit(Request::to_city(
                a,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap();
        let tb = platform
            .submit(Request::to_city(
                b,
                NodeId(0),
                NodeId(59),
                TimeOfDay::from_hours(8.0),
            ))
            .unwrap();
        ta.wait().unwrap();
        tb.wait().unwrap();
        let sa = platform.city_stats(a).unwrap();
        let sb = platform.city_stats(b).unwrap();
        assert_eq!(sa.requests, 1);
        assert_eq!(sb.requests, 1);
        assert!(sa.is_consistent() && sb.is_consistent());
        let agg = platform.stats().aggregate;
        assert_eq!(agg.requests, 2);
        platform.shutdown();
    }

    /// A bare `Inner` with no worker threads: lets tests drive
    /// `collect_run`/`drr_pick` deterministically (the public
    /// `Platform::start` clamps `workers` to ≥ 1).
    fn bare_inner(cfg: PlatformConfig) -> Inner {
        Inner {
            cfg: PlatformConfig {
                workers: cfg.workers.max(1),
                queue_capacity: cfg.queue_capacity.max(1),
                city_weight: cfg.city_weight.max(1),
                maintenance: cfg.maintenance,
                batch: cfg.batch.map(BatchConfig::normalized),
                durability: None,
                chaos: None,
            },
            cities: RwLock::new(Vec::new()),
            sched: Mutex::new(Scheduler {
                draining: false,
                cursor: 0,
                deficits: Vec::new(),
            }),
            work: Condvar::new(),
            sched_locks: LockStats::new(),
            sleepers: AtomicUsize::new(0),
            queued: AtomicU64::new(0),
            backlogged: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            rejected_unknown_city: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            rejected_offboarded: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            maintenance_stop: Mutex::new(false),
            maintenance_cv: Condvar::new(),
            maintenance_sweeps: AtomicU64::new(0),
            maintenance_evicted: AtomicU64::new(0),
            last_maintenance: Mutex::new(None),
            durable: None,
            chaos: None,
        }
    }

    /// A standalone `CityState` (own ingress queue, machine resolution)
    /// for scheduler-level tests.
    fn bare_city(cfg: &PlatformConfig) -> Arc<CityState> {
        let world = mini_world(7);
        let graph = world.graph_arc();
        let svc_cfg = ServiceConfig::strict_deterministic();
        let core = svc_cfg.core.clone();
        Arc::new(CityState {
            service: Arc::new(RouteService::new(world, svc_cfg)),
            factory: Box::new(move |_| {
                Box::new(MachineResolver::new(Arc::clone(&graph), core.clone()))
                    as Box<dyn Resolver + Send>
            }),
            crowd_state: None,
            breaker: None,
            offboarded: AtomicBool::new(false),
            ingress: CityQueue::new(cfg),
        })
    }

    /// Enqueues `n` jobs with origin `origin` into `city`'s queue with
    /// full depth bookkeeping (what `submit_inner` does, minus tickets
    /// anyone waits on).
    fn push_jobs(inner: &Inner, city: &CityState, origin: u32, n: usize) {
        let ing = &city.ingress;
        let mut q = ing.queue.lock().unwrap();
        for _ in 0..n {
            q.jobs.push_back(Job {
                req: Request::to_city(
                    CityId(0),
                    NodeId(origin),
                    NodeId(59),
                    TimeOfDay::from_hours(8.0),
                ),
                slot: Arc::new(TicketSlot {
                    state: Mutex::new(None),
                    done: Condvar::new(),
                    submitted_at: Instant::now(),
                    sojourn_ns: AtomicU64::new(0),
                }),
            });
            q.admitted += 1;
            if ing.depth.fetch_add(1, Ordering::SeqCst) == 0 {
                inner.backlogged.fetch_add(1, Ordering::SeqCst);
            }
            inner.queued.fetch_add(1, Ordering::SeqCst);
        }
        ing.arrivals.notify_all();
    }

    /// One worker dispatch against `city`: pop the seed (booked
    /// unbatched, as `next_job` does) and extend it via `collect_run`.
    /// Returns the run length.
    fn dispatch_once(inner: &Inner, city: &CityState, batch: BatchConfig) -> usize {
        let ing = &city.ingress;
        let job = {
            let mut q = ing.queue.lock().unwrap();
            let job = q.jobs.pop_front().expect("a seed job is queued");
            q.unbatched_requests += 1;
            if ing.depth.fetch_sub(1, Ordering::SeqCst) == 1 {
                inner.backlogged.fetch_sub(1, Ordering::SeqCst);
            }
            inner.queued.fetch_sub(1, Ordering::SeqCst);
            job
        };
        let mut run = vec![job];
        collect_run(inner, city, &mut run, batch);
        run.len()
    }

    #[test]
    fn drr_spends_quanta_proportional_to_weight() {
        let heavy = PlatformConfig {
            city_weight: 3,
            ..PlatformConfig::default()
        };
        let light = PlatformConfig::default();
        let cities = vec![bare_city(&heavy), bare_city(&light)];
        cities[0].ingress.depth.store(100, Ordering::SeqCst);
        cities[1].ingress.depth.store(100, Ordering::SeqCst);
        let mut s = Scheduler {
            draining: false,
            cursor: 0,
            deficits: vec![0, 0],
        };
        // Both backlogged: a full rotation grants 3 picks to the heavy
        // city for every 1 to the light one.
        let mut picks = [0u32; 2];
        for _ in 0..40 {
            picks[drr_pick(&mut s, &cities).expect("both cities backlogged")] += 1;
        }
        assert_eq!(picks, [30, 10]);
        // The heavy city going idle forfeits its deficit: the light city
        // absorbs the full capacity (no starvation, no banking).
        cities[0].ingress.depth.store(0, Ordering::SeqCst);
        for _ in 0..8 {
            assert_eq!(drr_pick(&mut s, &cities), Some(1));
        }
        // The heavy city returning gets its quantum again, not a stored
        // backlog of missed turns.
        cities[0].ingress.depth.store(100, Ordering::SeqCst);
        let mut picks = [0u32; 2];
        for _ in 0..40 {
            picks[drr_pick(&mut s, &cities).expect("both cities backlogged")] += 1;
        }
        assert_eq!(picks, [30, 10]);
        // Every queue empty: a full rotation yields nothing.
        cities[0].ingress.depth.store(0, Ordering::SeqCst);
        cities[1].ingress.depth.store(0, Ordering::SeqCst);
        assert_eq!(drr_pick(&mut s, &cities), None);
    }

    #[test]
    fn city_weights_are_configurable_and_clamped() {
        let platform = Platform::start(PlatformConfig {
            city_weight: 4,
            workers: 1,
            queue_capacity: 16,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        assert_eq!(platform.city_weight(id), Some(4));
        // Weight 0 would freeze the DRR rotation; it clamps to 1.
        assert!(platform.set_city_weight(id, 0));
        assert_eq!(platform.city_weight(id), Some(1));
        assert!(platform.set_city_weight(id, 7));
        assert_eq!(platform.city_weight(id), Some(7));
        // Unknown cities are reported, not created.
        assert!(!platform.set_city_weight(CityId(9), 2));
        assert_eq!(platform.city_weight(CityId(9)), None);
        let snap = platform.stats();
        assert_eq!(snap.per_city.len(), 1);
        assert_eq!(snap.per_city[0].weight, 7);
        assert!(snap.is_consistent(), "{snap:?}");
        platform.shutdown();
    }

    #[test]
    fn adaptive_cap_steps_on_run_occupancy() {
        let batch = BatchConfig::adaptive(16, Duration::from_millis(1));
        let inner = bare_inner(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 256,
            maintenance: None,
            batch: Some(batch),
            durability: None,
            chaos: None,
        });
        let city = bare_city(&inner.cfg);
        let cap = |c: &CityState| c.ingress.queue.lock().unwrap().max_batch_cur;
        assert_eq!(cap(&city), 16, "the cap starts at the configured max");

        // Sustained sparse runs (2 of a 16-cap, ≤ 1/4 occupancy) walk
        // the cap down: 16 → 8 after ADAPTIVE_CAP_SPARSE_RUNS, then
        // 8 → 4 (runs of 2 still ≤ 1/4 of 8).
        for _ in 0..ADAPTIVE_CAP_SPARSE_RUNS {
            push_jobs(&inner, &city, 0, 2);
            assert_eq!(dispatch_once(&inner, &city, batch), 2);
        }
        assert_eq!(cap(&city), 8);
        for _ in 0..ADAPTIVE_CAP_SPARSE_RUNS {
            push_jobs(&inner, &city, 0, 2);
            assert_eq!(dispatch_once(&inner, &city, batch), 2);
        }
        assert_eq!(cap(&city), 4);
        // Runs of 2 fill half of a 4-cap — no longer sparse; the cap
        // holds.
        for _ in 0..2 * ADAPTIVE_CAP_SPARSE_RUNS {
            push_jobs(&inner, &city, 0, 2);
            assert_eq!(dispatch_once(&inner, &city, batch), 2);
        }
        assert_eq!(cap(&city), 4);

        // A filled run means the cap was binding: it doubles back
        // toward the configured max — and the cap truncates the run.
        push_jobs(&inner, &city, 0, 6);
        assert_eq!(dispatch_once(&inner, &city, batch), 4);
        assert_eq!(cap(&city), 8);
        // Drain the truncated leftovers (a run of 2: sparse counter
        // restarts but a lone pair cannot drop the cap).
        assert_eq!(dispatch_once(&inner, &city, batch), 2);
        push_jobs(&inner, &city, 0, 8);
        assert_eq!(dispatch_once(&inner, &city, batch), 8);
        assert_eq!(cap(&city), 16);
        // At the configured max a filled run raises nothing further.
        push_jobs(&inner, &city, 0, 16);
        assert_eq!(dispatch_once(&inner, &city, batch), 16);
        assert_eq!(cap(&city), 16);

        let q = city.ingress.queue.lock().unwrap();
        assert_eq!(q.cap_drops, 2);
        assert_eq!(q.cap_raises, 2);
        assert!(q.jobs.is_empty());
    }

    #[test]
    fn busy_sheds_are_isolated_per_city() {
        // One worker behind two 1-slot queues: the hot city's firehose
        // must shed against its own queue only — the cold city, whose
        // queue is empty at every one of its submits, is never refused.
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 1,
            queue_capacity: 1,
            maintenance: None,
            batch: None,
            durability: None,
            chaos: None,
        });
        let hot = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let cold = platform.register_city(mini_world(11), ServiceConfig::strict_deterministic());
        let mut shed = 0u64;
        let mut tickets = Vec::new();
        for i in 0..150u32 {
            let req = Request::to_city(
                hot,
                NodeId(i % 20),
                NodeId(59 - (i % 13)),
                TimeOfDay::from_hours(8.0),
            );
            match platform.submit(req) {
                Ok(t) => tickets.push(t),
                Err(ServiceError::Busy) => shed += 1,
                Err(e) => panic!("unexpected rejection: {e}"),
            }
            if i % 25 == 0 {
                // The cold city's slot is free (its previous request was
                // joined): admission is its own queue's business.
                let t = platform
                    .submit(Request::to_city(
                        cold,
                        NodeId(i % 20),
                        NodeId(40),
                        TimeOfDay::from_hours(9.0),
                    ))
                    .expect("a cold city with queue capacity must never shed");
                t.wait().unwrap();
            }
        }
        assert!(shed > 0, "a 1-slot queue under burst load must shed");
        for t in tickets {
            t.wait().unwrap();
        }
        let snap = platform.stats();
        assert!(snap.is_consistent(), "{snap:?}");
        assert_eq!(snap.rejected_busy, shed);
        assert_eq!(snap.per_city[hot.index()].rejected_busy, shed);
        assert_eq!(snap.per_city[cold.index()].rejected_busy, 0);
        platform.shutdown();
    }

    #[test]
    fn shutdown_interrupts_open_collection_windows() {
        // Workers holding a full fixed collection window open (lone
        // unique-origin seeds, mates never coming) must notice a drain
        // at the condvar wake, not at the window deadline.
        let max_delay = Duration::from_secs(5);
        let platform = Platform::start(PlatformConfig {
            city_weight: 1,
            workers: 2,
            queue_capacity: 64,
            maintenance: None,
            batch: Some(BatchConfig::fixed(8, max_delay)),
            durability: None,
            chaos: None,
        });
        let id = platform.register_city(mini_world(7), ServiceConfig::strict_deterministic());
        let tickets: Vec<Ticket> = (0..2u32)
            .map(|i| {
                platform
                    .submit(Request::to_city(
                        id,
                        NodeId(i * 7),
                        NodeId(59 - i),
                        TimeOfDay::from_hours(8.0),
                    ))
                    .unwrap()
            })
            .collect();
        // Let both workers pop their seeds and park in the window.
        std::thread::sleep(Duration::from_millis(30));
        let t0 = Instant::now();
        platform.shutdown();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < max_delay / 2,
            "shutdown must interrupt open collection windows, took {elapsed:?}"
        );
        for t in &tickets {
            assert!(t.is_done(), "drain resolves every admitted ticket");
            assert!(t.try_wait().unwrap().is_ok());
        }
    }
}
