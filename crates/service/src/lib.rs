//! # cp-service — the multi-city, concurrent recommendation-serving layer
//!
//! The paper's pipeline (`cp-core`) resolves one request at a time in
//! one city against private state. A deployed CrowdPlanner faces an
//! *open* stream of requests from many cities at once, heavily skewed
//! (commute corridors, rush hours). This crate is the serving stack
//! that exploits that skew, bottom to top:
//!
//! * [`World`] — one city's **owned** serving world (`Arc`-shared road
//!   graph, trips and pre-built mining state; no lifetimes), registered
//!   on a platform under a [`CityId`];
//! * [`ShardedTruthStore`] — the shared verified-truth database, split
//!   into per-shard `RwLock`-protected grid indexes keyed by origin /
//!   destination cells and time buckets; **bounded**: per-shard entry
//!   caps evict oldest-first and [`ShardedTruthStore::evict_older_than`]
//!   ages out stale truths;
//! * [`RouteService`] — the per-city executor: every request walks the
//!   serving ladder *truth hit → single-flight dedup → candidate cache →
//!   resolution*; [`RouteService::serve`] fans a closed batch across
//!   scoped threads, and [`RouteService::serve_coalesced`] serves a
//!   group of requests sharing an origin cell through **one** truth
//!   pre-pass, one flight leader per distinct OD and one fused mining
//!   call;
//! * [`Platform`] — the front door: a resident worker pool over all
//!   registered cities, **per-city bounded ingress queues** behind a
//!   weighted deficit-round-robin dispatcher with admission
//!   control ([`Platform::submit`] is non-blocking and returns
//!   [`ServiceError::Busy`] when full), joinable/pollable [`Ticket`]s,
//!   opportunistic **origin-cell request coalescing**
//!   ([`PlatformConfig::batch`] / [`BatchConfig`]: workers dequeue runs
//!   of `(city, origin cell)`-mates — spanning time buckets — instead
//!   of single jobs, with a **fixed or adaptive** collection window:
//!   [`BatchConfig::Adaptive`] moves the delay between zero and a
//!   ceiling from observed queue depth and run occupancy), per-city
//!   plus exact aggregate statistics, and graceful draining
//!   [`Platform::shutdown`];
//! * [`MiningArtifactCache`] — the **cross-batch mining-reuse layer**:
//!   a bounded, generation-versioned per-city LRU of all-day per-origin
//!   expansions ([`cp_mining::OriginArtifacts`]) plus period transfer
//!   networks, letting a batch skip mining work a recent batch — in any
//!   time bucket — already did (`artifact_hits` in [`StatsSnapshot`]);
//! * [`FlightTable`] — single-flight deduplication of identical
//!   in-flight `(OD, time-bucket)` requests (one resolution, shared
//!   result — crucial when resolution spends crowd budget);
//! * [`Lru`] — the bounded cache behind per-`(OD-cell, time-bucket)`
//!   candidate-set memoisation (per-key OD aliasing bounded by
//!   [`ServiceConfig::cache_ods_per_key`]);
//! * [`Resolver`] — pluggable miss handling: deterministic machine-only
//!   ([`MachineResolver`], owned and `'static` — the platform default)
//!   or the full crowd pipeline ([`CrowdResolver`] — also owned and
//!   `'static`: one planner per platform worker, all sharing the city's
//!   quota-capped crowd desk; register with
//!   [`Platform::register_city_crowd`] and [`CrowdServing`]);
//! * [`ServiceStats`] — lock-free counters with truth/cache hit rates,
//!   dedup and eviction counts and a latency histogram that merges
//!   exactly across cities;
//! * [`SpanRecorder`] / [`TraceConfig`] — span-level request tracing:
//!   every request's sojourn attributed to pipeline [`Stage`]s (queue
//!   wait, batch collect, truth lookup, cache lookup, flight wait,
//!   artifact fetch, mining, machine/crowd resolve, commit) with
//!   per-stage histograms in [`StatsSnapshot`], lock-wait counters
//!   ([`LockStats`]) on the contended primitives, and a bounded ring of
//!   complete sampled traces exportable via [`Platform::trace_report`]
//!   — off by default with near-zero disabled cost, and byte-identical
//!   serving at every level;
//! * [`ChaosConfig`] / [`FaultPlan`] — the built-in **chaos engine**:
//!   seeded, reproducible fault injection at every serving seam (crowd
//!   no-shows and slow answers, slow/stalled workers, resolver panics,
//!   durability write errors, generation churn), counted per site in
//!   [`ChaosSnapshot`]; off by default and allocation-free when off.
//!   Degradation machinery rides along: a per-city **crowd circuit
//!   breaker** ([`BreakerConfig`] — trips to machine-only serving and
//!   heals through half-open probes), bounded retry-with-backoff on the
//!   durability writer, and runtime **city offboarding**
//!   ([`Platform::deregister_city`] — drains in-flight work exactly
//!   once, sheds the queue with a terminal error, reclaims cache
//!   memory).
//!
//! No external dependencies: everything is built on `std::thread`,
//! `std::sync::mpsc` channels, `RwLock`/`Mutex`/`Condvar` and atomics.
//!
//! ## Migration from the borrowed batch executor
//!
//! Before this redesign `RouteService<'w>` borrowed its world and only
//! exposed a closed-batch `serve(&[Request], make_resolver)`. Porting:
//!
//! * **world construction** — build an owned [`World`] once
//!   (`Arc::new(World::new(graph, trips))`) instead of borrowing a
//!   `CandidateGenerator`; `RouteService::new(world, cfg)` replaces
//!   `RouteService::new(&graph, &generator, cfg)`;
//! * **requests** — [`Request`] now carries a [`CityId`];
//!   `Request::new(from, to, departure)` keeps single-city call sites
//!   mechanical, `Request::to_city(..)` addresses a platform city;
//! * **open submission** — replace `service.serve(&requests, …)` with
//!   [`Platform::start`] + [`Platform::submit`] (non-blocking, admission
//!   controlled) and join the returned [`Ticket`]s — or call
//!   [`Platform::serve_batch`] for a drop-in closed-batch equivalent;
//! * **resolvers** — [`MachineResolver::new`] now takes
//!   `Arc<RoadGraph>` (see [`World::graph_arc`]) so resolvers can live
//!   on the resident pool.
//!
//! ## Example
//!
//! ```
//! use cp_roadnet::{generate_city, CityParams, NodeId};
//! use cp_service::{Platform, PlatformConfig, Request, ServiceConfig, World};
//! use cp_traj::{generate_trips, TimeOfDay, TripGenParams};
//! use std::sync::Arc;
//!
//! // Two owned city worlds on one platform.
//! let platform = Platform::start(PlatformConfig::default());
//! let mut ids = Vec::new();
//! for seed in [7, 11] {
//!     let city = generate_city(&CityParams::small(), seed).unwrap();
//!     let trips = generate_trips(&city.graph, &TripGenParams::default(), seed).unwrap();
//!     ids.push(platform.register_city(
//!         Arc::new(World::new(city.graph, trips.trips)),
//!         ServiceConfig::default(),
//!     ));
//! }
//!
//! // Open submission: non-blocking tickets, joined out of order.
//! let tickets: Vec<_> = ids
//!     .iter()
//!     .flat_map(|&id| {
//!         (1..10).map(move |i| {
//!             Request::to_city(id, NodeId(i), NodeId(59 - i % 7), TimeOfDay::from_hours(8.0))
//!         })
//!     })
//!     .map(|req| platform.submit(req).unwrap())
//!     .collect();
//! for ticket in tickets {
//!     assert!(ticket.wait().is_ok());
//! }
//!
//! let snap = platform.stats();
//! assert!(snap.is_consistent() && snap.aggregate.is_consistent());
//! assert_eq!(snap.aggregate.requests, 18);
//! platform.shutdown();
//! ```

#![warn(missing_docs)]

pub mod artifacts;
pub mod cache;
pub mod chaos;
pub mod durable;
pub mod error;
pub mod executor;
pub mod platform;
pub mod resolver;
pub mod singleflight;
pub mod stats;
pub mod store;
pub mod trace;
pub mod world;

pub use artifacts::MiningArtifactCache;
pub use cache::Lru;
pub use chaos::{
    BreakerConfig, BreakerSnapshot, BreakerState, ChaosConfig, ChaosSnapshot, FaultPlan, FaultSite,
};
pub use cp_durable::{DurableError, FsyncPolicy};
pub use durable::{DurabilityConfig, DurabilitySnapshot};
pub use error::ServiceError;
pub use executor::{Request, RequestKey, RouteService, Served, ServedRoute, ServiceConfig};
pub use platform::{
    BatchConfig, CityQueueSnapshot, CrowdServing, MaintenanceConfig, MaintenanceReport, Platform,
    PlatformConfig, PlatformSnapshot, RecoveryReport, Ticket,
};
pub use resolver::{CrowdCost, CrowdResolver, MachineResolver, OracleFactory, Resolved, Resolver};
pub use singleflight::{FlightTable, FlightWatch, Join, JoinNow, LeaderToken};
pub use stats::{LatencySummary, ServiceStats, StatsSnapshot};
pub use store::ShardedTruthStore;
pub use trace::{
    CallTrace, CityTrace, LockSite, LockStats, LockSummary, RequestTrace, SpanGuard, SpanRecorder,
    Stage, StageSummary, TraceConfig, TraceReport,
};
pub use world::{CityId, World};
