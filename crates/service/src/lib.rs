//! # cp-service — the concurrent recommendation-serving layer
//!
//! The paper's pipeline (`cp-core`) resolves one request at a time
//! against private state. A deployed CrowdPlanner faces thousands of
//! concurrent requests against **one shared world**, and the request
//! distribution is heavily skewed (commute corridors, rush hours). This
//! crate is the front-end that exploits that skew:
//!
//! * [`ShardedTruthStore`] — the shared verified-truth database, split
//!   into per-shard `RwLock`-protected grid indexes keyed by origin /
//!   destination cells and time buckets, so reads never contend with
//!   each other and writes only touch one shard;
//! * [`RouteService`] — the request executor: a `std::thread` +
//!   channel fan-out where every request walks the serving ladder
//!   *truth hit → single-flight dedup → candidate cache → resolution*;
//! * [`FlightTable`] — single-flight deduplication of identical
//!   in-flight `(OD, time-bucket)` requests (one resolution, shared
//!   result — crucial when resolution spends crowd budget);
//! * [`Lru`] — the bounded cache behind per-`(OD-cell, time-bucket)`
//!   candidate-set memoisation;
//! * [`Resolver`] — pluggable miss handling: deterministic machine-only
//!   ([`MachineResolver`]) or the full crowd pipeline
//!   ([`CrowdResolver`], one planner per worker);
//! * [`ServiceStats`] — lock-free counters with truth/cache hit rates,
//!   dedup counts and a latency summary.
//!
//! No external dependencies: the executor is built on `std::thread`,
//! `std::sync::mpsc` channels, `RwLock`/`Mutex`/`Condvar` and atomics.
//!
//! ## Example
//!
//! ```
//! use cp_mining::CandidateGenerator;
//! use cp_roadnet::{generate_city, CityParams, NodeId};
//! use cp_service::{MachineResolver, Request, RouteService, ServiceConfig};
//! use cp_traj::{generate_trips, TimeOfDay, TripGenParams};
//!
//! let city = generate_city(&CityParams::small(), 7).unwrap();
//! let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
//! let generator = CandidateGenerator::new(&city.graph, &trips.trips);
//! let service = RouteService::new(&city.graph, &generator, ServiceConfig::default());
//!
//! let requests: Vec<Request> = (1..20)
//!     .map(|i| Request {
//!         from: NodeId(i),
//!         to: NodeId(59 - i % 7),
//!         departure: TimeOfDay::from_hours(8.0),
//!     })
//!     .collect();
//! let core = service.config().core.clone();
//! let results = service.serve(&requests, |_worker| {
//!     MachineResolver::new(&city.graph, core.clone())
//! });
//! assert!(results.iter().all(|r| r.is_ok()));
//! let stats = service.stats();
//! assert!(stats.is_consistent());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod executor;
pub mod resolver;
pub mod singleflight;
pub mod stats;
pub mod store;

pub use cache::Lru;
pub use error::ServiceError;
pub use executor::{Request, RequestKey, RouteService, Served, ServedRoute, ServiceConfig};
pub use resolver::{CrowdResolver, MachineResolver, Resolved, Resolver};
pub use singleflight::{FlightTable, Join, LeaderToken};
pub use stats::{LatencySummary, ServiceStats, StatsSnapshot};
pub use store::ShardedTruthStore;
