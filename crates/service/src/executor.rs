//! The concurrent request executor.
//!
//! [`RouteService`] is the shared front-end: `&self` everywhere, safe to
//! drive from any number of worker threads. Per request it runs the
//! serving ladder:
//!
//! 1. **sharded truth lookup** — read-locks only the shards owning the
//!    origin neighbourhood; a hit answers immediately;
//! 2. **single-flight dedup** — identical in-flight `(from, to, time
//!    bucket)` requests collapse onto one leader; followers block and
//!    share its result;
//! 3. **candidate cache** — the leader fetches the mined candidate set
//!    from the per-`(OD cell, time bucket)` LRU, mining only on a miss;
//! 4. **resolution** — the worker's [`Resolver`] decides; the verified
//!    route is deposited into the sharded store so step 1 serves every
//!    later request in the reuse neighbourhood.
//!
//! [`RouteService::serve`] adds the fan-out: a job channel feeding N
//! `std::thread` workers (each building its own resolver), results
//! funnelled back over a second channel.
//!
//! ## Determinism
//!
//! With [`ServiceConfig::strict_deterministic`] geometry (exact-endpoint
//! reuse, window-aligned buckets, canonicalised departures) and a
//! deterministic resolver, the route served for every request is a pure
//! function of the request itself — identical across any thread count
//! and any interleaving. The paper-faithful default geometry trades this
//! for higher reuse rates (a request may be served a *nearby* OD's
//! verified truth, so results can depend on arrival order, exactly as in
//! the sequential paper pipeline).

use crate::cache::Lru;
use crate::error::ServiceError;
use crate::resolver::Resolver;
use crate::singleflight::{FlightTable, Join};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::store::ShardedTruthStore;
use cp_core::{Config, Resolution, TruthEntry, DEFAULT_CELL_M};
use cp_mining::{CandidateGenerator, CandidateRoute};
use cp_roadnet::{NodeId, Path, RoadGraph};
use cp_traj::TimeOfDay;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One route request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Departure time.
    pub departure: TimeOfDay,
}

/// Identity of a request for deduplication: exact endpoints plus the
/// departure's time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Departure time bucket.
    pub bucket: u32,
}

/// How a request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Straight from the sharded truth store.
    TruthHit,
    /// By joining an identical in-flight request.
    Deduplicated,
    /// Freshly resolved (with the pipeline's resolution kind).
    Resolved(Resolution),
}

/// A served recommendation.
#[derive(Debug, Clone)]
pub struct ServedRoute {
    /// The recommended route.
    pub path: Path,
    /// Which layer served it.
    pub served: Served,
    /// Confidence of the answer.
    pub confidence: f64,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads used by [`RouteService::serve`].
    pub workers: usize,
    /// Truth-store shards (rounded up to a power of two).
    pub shards: usize,
    /// Candidate-cache capacity (entries).
    pub cache_capacity: usize,
    /// Spatial cell edge (metres) for the truth grid, the candidate
    /// cache and request canonicalisation.
    pub cell_m: f64,
    /// Time-bucket width (seconds) for dedup keys and the candidate
    /// cache.
    pub time_bucket_s: f64,
    /// Resolve at the bucket's canonical (mid-bucket) departure time, so
    /// all requests in one bucket are identical work.
    pub canonicalize_departure: bool,
    /// Planner thresholds (reuse radius/window, agreement, etc.).
    pub core: Config,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            shards: 16,
            cache_capacity: 1024,
            cell_m: DEFAULT_CELL_M,
            time_bucket_s: 900.0,
            canonicalize_departure: true,
            core: Config::default(),
        }
    }
}

impl ServiceConfig {
    /// A configuration whose served routes are a pure function of each
    /// request, independent of thread count and interleaving: truth
    /// reuse only at exact endpoints within the same time bucket, and
    /// canonicalised departures. Use with a deterministic resolver
    /// (e.g. `MachineResolver`).
    pub fn strict_deterministic() -> Self {
        let mut cfg = ServiceConfig::default();
        cfg.core.reuse_radius = 0.0;
        cfg.core.reuse_time_window = 0.0;
        cfg.canonicalize_departure = true;
        cfg
    }

    /// Buckets per day under `time_bucket_s`.
    fn buckets_per_day(&self) -> u32 {
        (TimeOfDay::DAY / self.time_bucket_s).ceil().max(1.0) as u32
    }
}

/// Cached mined candidates for one cell-bucket key. Distinct OD pairs
/// can share a key (their endpoints fall in the same cells), but only
/// the exact pair may reuse a mined set — so a key holds a small list
/// of per-OD entries instead of one slot, preventing aliasing ODs from
/// thrash-evicting each other.
#[derive(Debug, Clone, Default)]
struct CachedCandidates {
    entries: Vec<(NodeId, NodeId, Arc<Vec<CandidateRoute>>)>,
}

/// Most distinct OD pairs kept per cell-bucket key (aliasing is rare:
/// it needs several nodes inside one cell pair).
const CACHE_ODS_PER_KEY: usize = 4;

/// Cache key: origin cell, destination cell, time bucket.
type CacheKey = (i32, i32, i32, i32, u32);

/// The concurrent serving front-end over one shared world.
pub struct RouteService<'w> {
    graph: &'w RoadGraph,
    generator: &'w CandidateGenerator<'w>,
    truths: ShardedTruthStore,
    cache: Mutex<Lru<CacheKey, CachedCandidates>>,
    flights: FlightTable<RequestKey, ServedRoute>,
    stats: ServiceStats,
    cfg: ServiceConfig,
}

impl<'w> RouteService<'w> {
    /// Builds the service over a world's graph and candidate generator.
    pub fn new(
        graph: &'w RoadGraph,
        generator: &'w CandidateGenerator<'w>,
        cfg: ServiceConfig,
    ) -> Self {
        // Truth-grid time buckets track the reuse window (clamped so the
        // bucket count stays sane); any geometry is correct, this one is
        // fast for the configured window.
        let truth_bucket_s = cfg.core.reuse_time_window.clamp(60.0, TimeOfDay::DAY);
        RouteService {
            graph,
            generator,
            truths: ShardedTruthStore::new(cfg.shards, cfg.cell_m, truth_bucket_s),
            cache: Mutex::new(Lru::new(cfg.cache_capacity)),
            flights: FlightTable::new(),
            stats: ServiceStats::new(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The shared truth store.
    pub fn truths(&self) -> &ShardedTruthStore {
        &self.truths
    }

    /// A point-in-time statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The departure's time bucket.
    pub fn bucket_of(&self, t: TimeOfDay) -> u32 {
        ((t.0 / self.cfg.time_bucket_s).floor() as u32) % self.cfg.buckets_per_day()
    }

    /// The dedup identity of a request.
    pub fn key_of(&self, req: &Request) -> RequestKey {
        RequestKey {
            from: req.from,
            to: req.to,
            bucket: self.bucket_of(req.departure),
        }
    }

    fn canonical_departure(&self, req: &Request) -> TimeOfDay {
        if self.cfg.canonicalize_departure {
            TimeOfDay::new((self.bucket_of(req.departure) as f64 + 0.5) * self.cfg.time_bucket_s)
        } else {
            req.departure
        }
    }

    fn cell_of(&self, n: NodeId) -> (i32, i32) {
        cp_core::truth::grid_cell(self.graph.position(n), self.cfg.cell_m)
    }

    /// Fetches the candidate set for a request from the LRU, mining on a
    /// miss. The lock is held only around map operations, never while
    /// mining.
    fn candidates_for(
        &self,
        from: NodeId,
        to: NodeId,
        bucket: u32,
        departure: TimeOfDay,
    ) -> Arc<Vec<CandidateRoute>> {
        let (ox, oy) = self.cell_of(from);
        let (dx, dy) = self.cell_of(to);
        let key: CacheKey = (ox, oy, dx, dy, bucket);
        {
            let mut cache = self.cache.lock().expect("candidate cache poisoned");
            if let Some(slot) = cache.get(&key) {
                if let Some((_, _, candidates)) =
                    slot.entries.iter().find(|(f, t, _)| *f == from && *t == to)
                {
                    self.stats.inc_cache_hits();
                    return Arc::clone(candidates);
                }
            }
        }
        self.stats.inc_cache_misses();
        let mined = Arc::new(self.generator.candidates(from, to, departure));
        {
            let mut cache = self.cache.lock().expect("candidate cache poisoned");
            // Re-fetch the slot (it may have changed while mining) and
            // append this OD, bounding per-key growth FIFO.
            let mut slot = cache.get(&key).cloned().unwrap_or_default();
            if !slot.entries.iter().any(|(f, t, _)| *f == from && *t == to) {
                if slot.entries.len() == CACHE_ODS_PER_KEY {
                    slot.entries.remove(0);
                }
                slot.entries.push((from, to, Arc::clone(&mined)));
            }
            cache.insert(key, slot);
        }
        mined
    }

    /// Serves one request with the caller's resolver. Safe to call from
    /// any thread.
    pub fn handle<R: Resolver>(
        &self,
        req: Request,
        resolver: &mut R,
    ) -> Result<ServedRoute, ServiceError> {
        let t0 = Instant::now();
        self.stats.inc_requests();
        let out = self.handle_inner(req, resolver);
        if out.is_err() {
            self.stats.inc_errors();
        }
        self.stats.record_latency(t0.elapsed());
        out
    }

    fn handle_inner<R: Resolver>(
        &self,
        req: Request,
        resolver: &mut R,
    ) -> Result<ServedRoute, ServiceError> {
        let departure = self.canonical_departure(&req);

        // 1. Shared verified truth.
        if let Some(hit) =
            self.truths
                .lookup(self.graph, req.from, req.to, departure, &self.cfg.core)
        {
            self.stats.inc_truth_hits();
            return Ok(ServedRoute {
                path: hit.path,
                served: Served::TruthHit,
                confidence: hit.confidence,
            });
        }

        // 2. Collapse identical in-flight work.
        match self.flights.join(self.key_of(&req)) {
            Join::Follower(Some(mut shared)) => {
                self.stats.inc_dedup_hits();
                shared.served = Served::Deduplicated;
                Ok(shared)
            }
            Join::Follower(None) => Err(ServiceError::LeaderFailed),
            Join::Leader(token) => {
                // Double-check the truth store: this thread may have
                // missed step 1, then become leader of a *new* flight
                // after the previous identical flight completed. The old
                // leader's truth insert precedes its flight retirement,
                // so the truth is guaranteed visible here — without this
                // re-check a key could resolve twice.
                if let Some(hit) =
                    self.truths
                        .lookup(self.graph, req.from, req.to, departure, &self.cfg.core)
                {
                    self.stats.inc_truth_hits();
                    let served = ServedRoute {
                        path: hit.path,
                        served: Served::TruthHit,
                        confidence: hit.confidence,
                    };
                    token.complete(served.clone());
                    return Ok(served);
                }
                // 3. Candidate cache; 4. resolution.
                let candidates =
                    self.candidates_for(req.from, req.to, self.bucket_of(req.departure), departure);
                // An early `?` drops the token, which publishes the
                // failure to any followers.
                let resolved = resolver.resolve(req.from, req.to, departure, &candidates)?;
                self.truths.insert(
                    self.graph,
                    TruthEntry {
                        from: req.from,
                        to: req.to,
                        departure,
                        path: resolved.path.clone(),
                        confidence: resolved.confidence,
                    },
                );
                let served = ServedRoute {
                    path: resolved.path,
                    served: Served::Resolved(resolved.resolution),
                    confidence: resolved.confidence,
                };
                self.stats.inc_resolved();
                token.complete(served.clone());
                Ok(served)
            }
        }
    }

    /// Fans `requests` across `config().workers` threads, each with its
    /// own resolver from `make_resolver(worker_index)`. Results come
    /// back in request order.
    pub fn serve<R, F>(
        &self,
        requests: &[Request],
        make_resolver: F,
    ) -> Vec<Result<ServedRoute, ServiceError>>
    where
        R: Resolver,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.cfg.workers.max(1);
        let (job_tx, job_rx) = mpsc::channel::<(usize, Request)>();
        let job_rx = Mutex::new(job_rx);
        let (out_tx, out_rx) = mpsc::channel::<(usize, Result<ServedRoute, ServiceError>)>();
        let mut results: Vec<Option<Result<ServedRoute, ServiceError>>> =
            requests.iter().map(|_| None).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let job_rx = &job_rx;
                let out_tx = out_tx.clone();
                let make_resolver = &make_resolver;
                s.spawn(move || {
                    let mut resolver = make_resolver(w);
                    loop {
                        // Take the next job; release the queue lock
                        // before doing any work.
                        let job = job_rx.lock().expect("job queue poisoned").recv();
                        let Ok((i, req)) = job else { break };
                        let _ = out_tx.send((i, self.handle(req, &mut resolver)));
                    }
                });
            }
            drop(out_tx);
            for (i, &req) in requests.iter().enumerate() {
                job_tx.send((i, req)).expect("a worker is alive");
            }
            drop(job_tx);
            for (i, res) in out_rx {
                results[i] = Some(res);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every request yields exactly one result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::MachineResolver;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    struct MiniWorld {
        city: cp_roadnet::City,
        trips: cp_traj::TripDataset,
    }

    fn mini_world() -> MiniWorld {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        MiniWorld { city, trips }
    }

    #[test]
    fn service_is_sync_and_request_types_are_send() {
        fn assert_sync<T: Sync>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<RouteService<'static>>();
        assert_send::<Request>();
        assert_send::<ServedRoute>();
        assert_send::<ServiceError>();
    }

    #[test]
    fn ladder_truth_hit_after_resolution() {
        let w = mini_world();
        let generator = CandidateGenerator::new(&w.city.graph, &w.trips.trips);
        let service = RouteService::new(
            &w.city.graph,
            &generator,
            ServiceConfig::strict_deterministic(),
        );
        let mut resolver = MachineResolver::new(&w.city.graph, service.config().core.clone());
        let req = Request {
            from: NodeId(0),
            to: NodeId(59),
            departure: TimeOfDay::from_hours(8.0),
        };
        let first = service.handle(req, &mut resolver).unwrap();
        assert!(matches!(first.served, Served::Resolved(_)));
        let second = service.handle(req, &mut resolver).unwrap();
        assert_eq!(second.served, Served::TruthHit);
        assert_eq!(second.path, first.path);
        let snap = service.stats();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.truth_hits, 1);
        assert_eq!(snap.resolved, 1);
        assert!(snap.is_consistent());
    }

    #[test]
    fn candidate_cache_hits_on_same_bucket_and_od() {
        let w = mini_world();
        let generator = CandidateGenerator::new(&w.city.graph, &w.trips.trips);
        // Exact-time truth keys + raw departures: requests in the same
        // bucket at different exact times miss the truth store but share
        // the mined candidate set.
        let mut cfg = ServiceConfig::strict_deterministic();
        cfg.canonicalize_departure = false;
        let service = RouteService::new(&w.city.graph, &generator, cfg);
        let mut resolver = MachineResolver::new(&w.city.graph, service.config().core.clone());
        // Same OD and bucket, different exact departures.
        for minutes in [0.0, 3.0, 7.0] {
            let req = Request {
                from: NodeId(5),
                to: NodeId(54),
                departure: TimeOfDay::new(8.0 * 3600.0 + minutes * 60.0),
            };
            service.handle(req, &mut resolver).unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.truth_hits, 0, "exact-time keys must not alias");
        assert_eq!(snap.cache_misses, 1, "only the first request mines");
        assert_eq!(snap.cache_hits, 2);
        assert!((snap.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(snap.is_consistent());
    }

    #[test]
    fn batch_serving_matches_individual_handling() {
        let w = mini_world();
        let generator = CandidateGenerator::new(&w.city.graph, &w.trips.trips);
        let cfg = ServiceConfig {
            workers: 4,
            ..ServiceConfig::strict_deterministic()
        };
        let requests: Vec<Request> = (0..40)
            .map(|i| Request {
                from: NodeId(i % 20),
                to: NodeId(59 - (i % 17)),
                departure: TimeOfDay::from_hours(7.0 + (i % 3) as f64),
            })
            .filter(|r| r.from != r.to)
            .collect();

        // Sequential reference.
        let seq_service = RouteService::new(&w.city.graph, &generator, cfg.clone());
        let mut seq_resolver = MachineResolver::new(&w.city.graph, cfg.core.clone());
        let expected: Vec<Path> = requests
            .iter()
            .map(|&r| seq_service.handle(r, &mut seq_resolver).unwrap().path)
            .collect();

        // Threaded run.
        let service = RouteService::new(&w.city.graph, &generator, cfg.clone());
        let results = service.serve(&requests, |_| {
            MachineResolver::new(&w.city.graph, cfg.core.clone())
        });
        assert_eq!(results.len(), requests.len());
        for (i, res) in results.iter().enumerate() {
            let served = res.as_ref().expect("request must be served");
            assert_eq!(served.path, expected[i], "request {i}");
        }
        let snap = service.stats();
        assert_eq!(snap.requests, requests.len() as u64);
        assert!(snap.is_consistent());
    }
}
