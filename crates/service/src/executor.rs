//! The concurrent request executor for one city.
//!
//! [`RouteService`] is the per-city front-end: it owns its
//! [`World`] behind an `Arc` (no lifetimes — build it anywhere, share it
//! with any thread), is `&self` everywhere, and runs the serving ladder
//! per request:
//!
//! 1. **sharded truth lookup** — read-locks only the shards owning the
//!    origin neighbourhood; a hit answers immediately;
//! 2. **single-flight dedup** — identical in-flight `(from, to, time
//!    bucket)` requests collapse onto one leader; followers block and
//!    share its result;
//! 3. **candidate cache** — the leader fetches the mined candidate set
//!    from the per-`(OD cell, time bucket)` LRU, mining only on a miss;
//! 4. **resolution** — the worker's [`Resolver`] decides; the verified
//!    route is deposited into the sharded store so step 1 serves every
//!    later request in the reuse neighbourhood.
//!
//! [`RouteService::serve`] adds a closed-batch fan-out: a job channel
//! feeding N scoped `std::thread` workers (each building its own
//! resolver), results funnelled back over a second channel. For open
//! submission with admission control and joinable tickets — and for
//! serving several cities from one resident worker pool — use
//! [`Platform`](crate::Platform), which routes each request to its
//! city's `RouteService`.
//!
//! ## Determinism
//!
//! With [`ServiceConfig::strict_deterministic`] geometry (exact-endpoint
//! reuse, window-aligned buckets, canonicalised departures) and a
//! deterministic resolver, the route served for every request is a pure
//! function of the request itself — identical across any thread count
//! and any interleaving. The paper-faithful default geometry trades this
//! for higher reuse rates (a request may be served a *nearby* OD's
//! verified truth, so results can depend on arrival order, exactly as in
//! the sequential paper pipeline).

use crate::artifacts::MiningArtifactCache;
use crate::cache::Lru;
use crate::error::ServiceError;
use crate::resolver::Resolver;
use crate::singleflight::{FlightTable, JoinNow};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::store::ShardedTruthStore;
use crate::trace::{CallTrace, LockSite, LockStats, LockSummary, SpanRecorder, Stage, TraceConfig};
use crate::world::{CityId, World};
use cp_core::{Config, Resolution, TruthEntry, DEFAULT_CELL_M};
use cp_mining::CandidateRoute;
use cp_roadnet::{NodeId, Path};
use cp_traj::TimeOfDay;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One route request, addressed to a registered city.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// City whose world should serve the request (platforms route on
    /// this; a standalone [`RouteService`] ignores it).
    pub city: CityId,
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Departure time.
    pub departure: TimeOfDay,
}

/// `Request` is an equivalence-and-hash key so batchers and dedup maps
/// can key on it directly (instead of re-deriving `(city, from, to,
/// bits)` tuples). `TimeOfDay` wraps an `f64` that its constructors keep
/// in `[0, DAY)`, so bitwise hashing agrees with `==`: `-0.0` (the one
/// non-identical pattern comparing equal) is normalised before hashing,
/// and NaN never occurs in a constructed time.
impl Eq for Request {}

impl std::hash::Hash for Request {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.city.hash(state);
        self.from.hash(state);
        self.to.hash(state);
        let secs = self.departure.0;
        // A NaN departure would break Eq's reflexivity (it is not
        // constructible via `TimeOfDay::new`/`from_hours`, only by
        // writing the pub field directly) — catch that misuse early.
        debug_assert!(!secs.is_nan(), "Request departure must not be NaN");
        let bits = if secs == 0.0 { 0u64 } else { secs.to_bits() };
        bits.hash(state);
    }
}

impl Request {
    /// A request in the conventional single-city ([`CityId::LOCAL`])
    /// world.
    pub fn new(from: NodeId, to: NodeId, departure: TimeOfDay) -> Self {
        Self::to_city(CityId::LOCAL, from, to, departure)
    }

    /// A request addressed to a specific registered city.
    pub fn to_city(city: CityId, from: NodeId, to: NodeId, departure: TimeOfDay) -> Self {
        Request {
            city,
            from,
            to,
            departure,
        }
    }
}

/// Identity of a request for deduplication: exact endpoints plus the
/// departure's time bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestKey {
    /// Origin node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Departure time bucket.
    pub bucket: u32,
}

/// How a request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Straight from the sharded truth store.
    TruthHit,
    /// By joining an identical in-flight request.
    Deduplicated,
    /// Freshly resolved (with the pipeline's resolution kind).
    Resolved(Resolution),
}

/// A served recommendation.
#[derive(Debug, Clone)]
pub struct ServedRoute {
    /// The recommended route.
    pub path: Path,
    /// Which layer served it.
    pub served: Served,
    /// Confidence of the answer.
    pub confidence: f64,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads used by [`RouteService::serve`].
    pub workers: usize,
    /// Truth-store shards (rounded up to a power of two).
    pub shards: usize,
    /// Candidate-cache capacity (entries).
    pub cache_capacity: usize,
    /// Most distinct OD pairs kept per candidate-cache cell-bucket key.
    /// Distinct ODs can alias one key when several nodes share a cell
    /// pair; each key holds up to this many per-OD entries (FIFO beyond
    /// it) so aliasing ODs don't thrash-evict each other. Evictions are
    /// observable as `cache_od_evictions` in [`StatsSnapshot`].
    pub cache_ods_per_key: usize,
    /// Origin cells kept in the cross-batch
    /// [`MiningArtifactCache`] — a coalesced
    /// batch reuses the all-day origin expansions (MPR tree, LDR
    /// locality scan/memos) a recent batch already produced, skipping
    /// them entirely on a hit (`artifact_hits` in [`StatsSnapshot`]).
    /// 0 disables cross-batch reuse (fusion within one batch remains).
    pub artifact_cache_origins: usize,
    /// Per-shard truth-store entry cap (0 = unbounded). A full shard
    /// batch-evicts oldest-first; evictions are counted in
    /// `truth_evictions`.
    pub truth_cap_per_shard: usize,
    /// Spatial cell edge (metres) for the truth grid, the candidate
    /// cache and request canonicalisation.
    pub cell_m: f64,
    /// Time-bucket width (seconds) for dedup keys and the candidate
    /// cache.
    pub time_bucket_s: f64,
    /// Resolve at the bucket's canonical (mid-bucket) departure time, so
    /// all requests in one bucket are identical work.
    pub canonicalize_departure: bool,
    /// Span-level tracing: off (default, near-zero cost), per-stage
    /// counters, or counters plus sampled complete request traces. See
    /// [`TraceConfig`].
    pub trace: TraceConfig,
    /// Planner thresholds (reuse radius/window, agreement, etc.).
    pub core: Config,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            shards: 16,
            cache_capacity: 1024,
            cache_ods_per_key: 4,
            artifact_cache_origins: 256,
            truth_cap_per_shard: 0,
            cell_m: DEFAULT_CELL_M,
            time_bucket_s: 900.0,
            canonicalize_departure: true,
            trace: TraceConfig::Off,
            core: Config::default(),
        }
    }
}

impl ServiceConfig {
    /// A configuration whose served routes are a pure function of each
    /// request, independent of thread count and interleaving: truth
    /// reuse only at exact endpoints within the same time bucket, and
    /// canonicalised departures. Use with a deterministic resolver
    /// (e.g. `MachineResolver`).
    pub fn strict_deterministic() -> Self {
        let mut cfg = ServiceConfig::default();
        cfg.core.reuse_radius = 0.0;
        cfg.core.reuse_time_window = 0.0;
        cfg.canonicalize_departure = true;
        cfg
    }

    /// Buckets per day under `time_bucket_s`.
    fn buckets_per_day(&self) -> u32 {
        (TimeOfDay::DAY / self.time_bucket_s).ceil().max(1.0) as u32
    }
}

/// Cached mined candidates for one cell-bucket key. Distinct OD pairs
/// can share a key (their endpoints fall in the same cells), but only
/// the exact pair may reuse a mined set — so a key holds a small list
/// of per-OD entries instead of one slot, preventing aliasing ODs from
/// thrash-evicting each other.
#[derive(Debug, Clone, Default)]
struct CachedCandidates {
    entries: Vec<(NodeId, NodeId, Arc<Vec<CandidateRoute>>)>,
}

/// Cache key: origin cell, destination cell, time bucket.
type CacheKey = (i32, i32, i32, i32, u32);

/// Classifies a resolve success for stage attribution: crowd-involved
/// resolutions (including quota-starved fallbacks) are crowd time.
fn resolve_stage_ok(resolved: &crate::resolver::Resolved) -> Stage {
    if resolved.crowd.is_some() {
        Stage::ResolveCrowd
    } else {
        Stage::ResolveMachine
    }
}

/// Classifies a resolve failure: strict-shedding quota starvation is
/// crowd-path time, anything else machine-path time.
fn resolve_stage_err(e: &ServiceError) -> Stage {
    if matches!(e, ServiceError::CrowdStarved { .. }) {
        Stage::ResolveCrowd
    } else {
        Stage::ResolveMachine
    }
}

/// The outcome label a sampled trace carries for its seed request.
fn outcome_label(out: &Result<ServedRoute, ServiceError>) -> &'static str {
    match out {
        Ok(s) => match s.served {
            Served::TruthHit => "truth_hit",
            Served::Deduplicated => "dedup",
            Served::Resolved(_) => "resolved",
        },
        Err(_) => "error",
    }
}

/// The concurrent serving front-end over one owned city world.
pub struct RouteService {
    world: Arc<World>,
    truths: ShardedTruthStore,
    cache: Mutex<Lru<CacheKey, CachedCandidates>>,
    cache_locks: LockStats,
    artifacts: MiningArtifactCache,
    flights: FlightTable<RequestKey, ServedRoute>,
    stats: ServiceStats,
    tracer: SpanRecorder,
    cfg: ServiceConfig,
    /// Durability sink, installed once at city registration when the
    /// platform logs commits. The off path costs one atomic load per
    /// commit and allocates nothing.
    durable: std::sync::OnceLock<crate::durable::DurableSink>,
}

impl RouteService {
    /// Builds the service over an owned, shareable world.
    pub fn new(world: Arc<World>, cfg: ServiceConfig) -> Self {
        // Truth-grid time buckets track the reuse window (clamped so the
        // bucket count stays sane); any geometry is correct, this one is
        // fast for the configured window.
        let truth_bucket_s = cfg.core.reuse_time_window.clamp(60.0, TimeOfDay::DAY);
        let service = RouteService {
            world,
            truths: ShardedTruthStore::new(cfg.shards, cfg.cell_m, truth_bucket_s)
                .with_per_shard_cap(cfg.truth_cap_per_shard),
            cache: Mutex::new(Lru::new(cfg.cache_capacity)),
            cache_locks: LockStats::new(),
            artifacts: MiningArtifactCache::new(cfg.artifact_cache_origins),
            flights: FlightTable::new(),
            stats: ServiceStats::new(),
            tracer: SpanRecorder::new(cfg.trace),
            cfg,
            durable: std::sync::OnceLock::new(),
        };
        if service.cfg.trace.enabled() {
            service.cache_locks.set_enabled(true);
            service.truths.lock_stats().set_enabled(true);
            service.artifacts.lock_stats().set_enabled(true);
            service.flights.lock_stats().set_enabled(true);
        }
        service
    }

    /// The service's span recorder: tracing configuration and (under
    /// sampled tracing) the retained complete request traces.
    pub fn tracer(&self) -> &SpanRecorder {
        &self.tracer
    }

    /// Installs the durability sink (platform registration only; the
    /// first installation wins).
    pub(crate) fn set_durable_sink(&self, sink: crate::durable::DurableSink) {
        let _ = self.durable.set(sink);
    }

    /// Commits a verified truth, logging it durably when a sink is
    /// installed. Both resolution paths (single and coalesced) funnel
    /// through here so the WAL sees every commit.
    fn commit_truth(&self, entry: TruthEntry) {
        match self.durable.get() {
            None => {
                self.truths.insert(self.world.graph(), entry);
            }
            Some(sink) => {
                // Collect the identity fields before the entry moves
                // into the store; the store assigns the global sequence
                // the log records.
                let (from, to, departure, confidence) =
                    (entry.from, entry.to, entry.departure, entry.confidence);
                let edges: Vec<u32> = entry.path.edges().iter().map(|e| e.0).collect();
                let (seq, _) = self.truths.insert_tracked(self.world.graph(), entry);
                sink.log_truth(seq, from, to, departure, confidence, edges);
            }
        }
    }

    /// Per-site lock-contention summaries from the owning primitives
    /// (the ingress site belongs to the platform and stays zero here).
    pub(crate) fn lock_summaries(&self) -> [LockSummary; LockSite::COUNT] {
        let mut locks = [LockSummary::default(); LockSite::COUNT];
        locks[LockSite::TruthShards.index()] = self.truths.lock_stats().summary();
        locks[LockSite::CandidateCache.index()] = self.cache_locks.summary();
        locks[LockSite::ArtifactCache.index()] = self.artifacts.lock_stats().summary();
        locks[LockSite::FlightTable.index()] = self.flights.lock_stats().summary();
        locks
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The world this service serves.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// The shared truth store.
    pub fn truths(&self) -> &ShardedTruthStore {
        &self.truths
    }

    /// The service's statistics counters (the platform aggregates these
    /// across cities).
    pub(crate) fn raw_stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Restores the accounting invariant after a panic unwound out of
    /// [`RouteService::handle`] mid-request (the request was counted on
    /// entry but reached no outcome): the platform worker that contained
    /// the panic books it as an error.
    pub(crate) fn note_panicked_request(&self) {
        self.stats.inc_errors();
    }

    /// Batch form of [`RouteService::note_panicked_request`]: best-effort
    /// accounting for a panic that unwound out of
    /// [`RouteService::serve_coalesced`] (which books its own requests
    /// on entry but, if interrupted, reaches no outcome for them).
    pub(crate) fn note_panicked_requests(&self, n: usize) {
        for _ in 0..n {
            self.stats.inc_errors();
        }
    }

    /// A point-in-time statistics snapshot. Truth-eviction counts are
    /// read from the truth store (the single source — capacity and age
    /// evictions both land there, even when callers drive the store
    /// through [`RouteService::truths`] directly).
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.truth_evictions = self.truths.evicted();
        snap.locks = self.lock_summaries();
        snap
    }

    /// Evicts truths at least `max_age` old from the store (visible in
    /// the statistics as `truth_evictions`). Returns how many were
    /// evicted.
    pub fn evict_truths_older_than(&self, max_age: std::time::Duration) -> usize {
        self.truths.evict_older_than(max_age)
    }

    /// Releases the memory an offboarded city no longer needs: the
    /// candidate LRU, the cross-batch mining-artifact cache and every
    /// stored truth (an age-0 sweep, so the drop is visible in
    /// `truth_evictions` like any other eviction). The service stays
    /// functional — a straggler holding the `Arc` can still serve — but
    /// it restarts cold.
    pub(crate) fn reclaim(&self) {
        self.cache_locks.lock(&self.cache).clear();
        self.artifacts.clear();
        self.truths.evict_older_than(std::time::Duration::ZERO);
    }

    /// The departure's time bucket (circular: the last partial bucket
    /// wraps into `buckets_per_day - 1`, never `buckets_per_day`).
    pub fn bucket_of(&self, t: TimeOfDay) -> u32 {
        ((t.0 / self.cfg.time_bucket_s).floor() as u32) % self.cfg.buckets_per_day()
    }

    /// The dedup identity of a request.
    pub fn key_of(&self, req: &Request) -> RequestKey {
        RequestKey {
            from: req.from,
            to: req.to,
            bucket: self.bucket_of(req.departure),
        }
    }

    /// The bucket's canonical (mid-bucket) departure when
    /// canonicalisation is on, else the raw departure. The final bucket
    /// of the day may be truncated when the bucket width does not divide
    /// the day; its canonical time is the midpoint of the *truncated*
    /// span, so canonicalisation never wraps a request past midnight
    /// into bucket 0.
    pub fn canonical_departure(&self, req: &Request) -> TimeOfDay {
        if self.cfg.canonicalize_departure {
            let start = self.bucket_of(req.departure) as f64 * self.cfg.time_bucket_s;
            let end = (start + self.cfg.time_bucket_s).min(TimeOfDay::DAY);
            TimeOfDay::new((start + end) / 2.0)
        } else {
            req.departure
        }
    }

    /// The origin's spatial grid cell under the configured cell size —
    /// the coalescing coordinate: requests sharing `(city, origin cell,
    /// time bucket)` are profitable to mine as one fused batch.
    pub fn origin_cell_of(&self, n: NodeId) -> (i32, i32) {
        self.cell_of(n)
    }

    fn cell_of(&self, n: NodeId) -> (i32, i32) {
        cp_core::truth::grid_cell(self.world.graph().position(n), self.cfg.cell_m)
    }

    /// Probes the candidate LRU for an exact-OD entry (counts neither a
    /// hit nor a miss — callers book the outcome).
    fn cache_lookup(
        &self,
        from: NodeId,
        to: NodeId,
        bucket: u32,
    ) -> Option<Arc<Vec<CandidateRoute>>> {
        let (ox, oy) = self.cell_of(from);
        let (dx, dy) = self.cell_of(to);
        let key: CacheKey = (ox, oy, dx, dy, bucket);
        let mut cache = self.cache_locks.lock(&self.cache);
        let slot = cache.get(&key)?;
        slot.entries
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, candidates)| Arc::clone(candidates))
    }

    /// Deposits a mined candidate set into the LRU, bounding per-key OD
    /// growth FIFO. The slot is re-fetched under the lock (it may have
    /// changed while mining ran unlocked).
    fn cache_fill(&self, from: NodeId, to: NodeId, bucket: u32, mined: &Arc<Vec<CandidateRoute>>) {
        let (ox, oy) = self.cell_of(from);
        let (dx, dy) = self.cell_of(to);
        let key: CacheKey = (ox, oy, dx, dy, bucket);
        let mut cache = self.cache_locks.lock(&self.cache);
        let mut slot = cache.get(&key).cloned().unwrap_or_default();
        if !slot.entries.iter().any(|(f, t, _)| *f == from && *t == to) {
            if slot.entries.len() >= self.cfg.cache_ods_per_key.max(1) {
                slot.entries.remove(0);
                self.stats.inc_cache_od_evictions();
            }
            slot.entries.push((from, to, Arc::clone(mined)));
        }
        cache.insert(key, slot);
    }

    /// Fetches the candidate set for a request from the LRU, mining on a
    /// miss. The lock is held only around map operations, never while
    /// mining.
    ///
    /// A miss mines through the warm [`MiningArtifactCache`] — the
    /// same artifact-backed generator the coalesced batch path uses
    /// (byte-identical output to the targeted per-request miners, as
    /// the batch-equivalence proptests keep proving) — so a lone
    /// request reuses the ~warm all-day origin expansions batches keep
    /// hot instead of redoing them. With the artifact cache disabled
    /// the targeted miners remain (exhaustive expansions used once
    /// would be pure waste).
    fn candidates_for(
        &self,
        from: NodeId,
        to: NodeId,
        bucket: u32,
        departure: TimeOfDay,
        tr: &mut CallTrace<'_>,
    ) -> Arc<Vec<CandidateRoute>> {
        let hit = {
            let _s = tr.span(Stage::CacheLookup);
            self.cache_lookup(from, to, bucket)
        };
        if let Some(candidates) = hit {
            self.stats.inc_cache_hits();
            return candidates;
        }
        self.stats.inc_cache_misses();
        let mined = if self.artifacts.is_enabled() {
            let art = {
                let _s = tr.span(Stage::ArtifactFetch);
                self.artifacts
                    .origin_artifacts(&self.world, self.cell_of(from), from, &self.stats)
            };
            let period = {
                let _s = tr.span(Stage::ArtifactFetch);
                self.artifacts.period_network(&self.world, departure)
            };
            let _s = tr.span(Stage::Mining);
            Arc::new(cp_mining::candidates_from_artifacts(
                self.world.graph(),
                self.world.trips(),
                &self.world.mfp,
                &self.world.ldr,
                &art,
                &period,
                to,
                departure,
            ))
        } else {
            let _s = tr.span(Stage::Mining);
            Arc::new(self.world.candidates(from, to, departure))
        };
        self.cache_fill(from, to, bucket, &mined);
        mined
    }

    /// Serves one request with the caller's resolver. Safe to call from
    /// any thread.
    pub fn handle<R: Resolver>(
        &self,
        req: Request,
        resolver: &mut R,
    ) -> Result<ServedRoute, ServiceError> {
        let t0 = Instant::now();
        self.stats.inc_requests();
        let mut tr = self.tracer.call(&self.stats);
        let out = self.handle_inner(req, resolver, &mut tr);
        if out.is_err() {
            self.stats.inc_errors();
        }
        let elapsed = t0.elapsed();
        self.stats.record_latency(elapsed);
        self.tracer.finish(
            tr,
            req.from,
            req.to,
            req.departure,
            1,
            outcome_label(&out),
            elapsed,
        );
        out
    }

    fn handle_inner<R: Resolver>(
        &self,
        req: Request,
        resolver: &mut R,
        tr: &mut CallTrace<'_>,
    ) -> Result<ServedRoute, ServiceError> {
        let departure = self.canonical_departure(&req);
        let graph = self.world.graph();

        // 1. Shared verified truth.
        let hit = {
            let _s = tr.span(Stage::TruthLookup);
            self.truths
                .lookup(graph, req.from, req.to, departure, &self.cfg.core)
        };
        if let Some(hit) = hit {
            self.stats.inc_truth_hits();
            return Ok(ServedRoute {
                path: hit.path,
                served: Served::TruthHit,
                confidence: hit.confidence,
            });
        }

        // 2. Collapse identical in-flight work. (`join_deferred` +
        // `wait` is exactly `join`, unrolled so the follower's block on
        // the leader can be attributed to the FlightWait stage.)
        match self.flights.join_deferred(self.key_of(&req)) {
            JoinNow::Watch(watch) => {
                let shared = {
                    let _s = tr.span(Stage::FlightWait);
                    watch.wait()
                };
                match shared {
                    Some(mut shared) => {
                        self.stats.inc_dedup_hits();
                        shared.served = Served::Deduplicated;
                        Ok(shared)
                    }
                    None => Err(ServiceError::LeaderFailed),
                }
            }
            JoinNow::Leader(token) => {
                // Double-check the truth store: this thread may have
                // missed step 1, then become leader of a *new* flight
                // after the previous identical flight completed. The old
                // leader's truth insert precedes its flight retirement,
                // so the truth is guaranteed visible here — without this
                // re-check a key could resolve twice.
                let hit = {
                    let _s = tr.span(Stage::TruthLookup);
                    self.truths
                        .lookup(graph, req.from, req.to, departure, &self.cfg.core)
                };
                if let Some(hit) = hit {
                    self.stats.inc_truth_hits();
                    let served = ServedRoute {
                        path: hit.path,
                        served: Served::TruthHit,
                        confidence: hit.confidence,
                    };
                    token.complete(served.clone());
                    return Ok(served);
                }
                // 3. Candidate cache; 4. resolution.
                let candidates = self.candidates_for(
                    req.from,
                    req.to,
                    self.bucket_of(req.departure),
                    departure,
                    tr,
                );
                // An early return drops the token, which publishes the
                // failure to any followers. The resolve stage (machine
                // vs crowd) is only known afterwards, so it is timed
                // manually instead of with a scoped span.
                let r0 = tr.clock();
                let resolved = match resolver.resolve(req.from, req.to, departure, &candidates) {
                    Ok(resolved) => {
                        tr.record(resolve_stage_ok(&resolved), r0);
                        resolved
                    }
                    Err(e) => {
                        tr.record(resolve_stage_err(&e), r0);
                        // Strict-shedding starvation serves no route but
                        // must still surface in the crowd counters.
                        if let ServiceError::CrowdStarved { quota_rejections } = e {
                            self.stats.record_crowd(crate::resolver::CrowdCost {
                                questions: 0,
                                workers: 0,
                                quota_rejections,
                                starved: true,
                            });
                        }
                        return Err(e);
                    }
                };
                // Crowd resolvers report per-request cost/contention;
                // surface it in the shared counters (quota shed and
                // starvation visibility).
                let starved = resolved.crowd.is_some_and(|c| c.starved);
                if let Some(cost) = resolved.crowd {
                    self.stats.record_crowd(cost);
                }
                // Capacity evictions are counted inside the store (the
                // single source `stats()` reads them back from). A
                // quota-starved fallback is transient contention, not a
                // verdict — it is served but never memoized, so retries
                // reach the crowd once capacity frees up (mirroring the
                // planner's own no-record rule for starvation).
                if !starved {
                    let _s = tr.span(Stage::Commit);
                    self.commit_truth(TruthEntry {
                        from: req.from,
                        to: req.to,
                        departure,
                        path: resolved.path.clone(),
                        confidence: resolved.confidence,
                    });
                }
                let served = ServedRoute {
                    path: resolved.path,
                    served: Served::Resolved(resolved.resolution),
                    confidence: resolved.confidence,
                };
                self.stats.inc_resolved();
                token.complete(served.clone());
                Ok(served)
            }
        }
    }

    /// Serves a coalesced batch of requests — typically dequeued
    /// together by the platform's batcher because they share `(city,
    /// origin cell, time bucket)` — paying the shared work once instead
    /// of once per request:
    ///
    /// 1. **one sharded-truth pre-pass** — every request probes the
    ///    store up front; hits answer immediately;
    /// 2. **one single-flight leader per distinct OD key** — intra-batch
    ///    duplicates collapse locally, and the global flight table still
    ///    dedups against concurrent workers;
    /// 3. **one artifact-backed fused mining pass** — all leader ODs
    ///    missing the candidate cache mine through shared per-origin
    ///    all-day artifacts (cached across batches and buckets in the
    ///    city's [`MiningArtifactCache`])
    ///    plus one period aggregation per distinct departure, followed
    ///    by a bulk cache fill — batches may freely span several time
    ///    buckets;
    /// 4. **resolution per leader**, truths deposited as in
    ///    [`RouteService::handle`].
    ///
    /// Results come back in request order. Under
    /// [`ServiceConfig::strict_deterministic`] geometry and a
    /// deterministic resolver, every returned route is byte-identical to
    /// serving the same requests one at a time (asserted by the
    /// `batch_equivalence` proptest); only the `Served` layer tags can
    /// differ (an intra-batch duplicate reports `Deduplicated` where the
    /// sequential path would report a `TruthHit`).
    ///
    /// A panicking resolver is contained: the leader that panicked (and
    /// every not-yet-resolved leader after it — the resolver may be
    /// mid-mutation) fails with [`ServiceError::ResolverPanicked`]
    /// instead of unwinding, so batch accounting stays exact and
    /// followers are never stranded. Callers owning the resolver should
    /// discard it when they see that error (the platform worker rebuilds
    /// from the city's factory).
    ///
    /// Batch sojourn is booked per request at batch completion, so
    /// latency statistics remain one entry per request.
    pub fn serve_coalesced<R: Resolver>(
        &self,
        requests: &[Request],
        resolver: &mut R,
    ) -> Vec<Result<ServedRoute, ServiceError>> {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        if requests.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        self.stats.record_batch(requests.len());
        for _ in requests {
            self.stats.inc_requests();
        }
        let mut tr = self.tracer.call(&self.stats);
        let graph = self.world.graph();
        let mut results: Vec<Option<Result<ServedRoute, ServiceError>>> =
            requests.iter().map(|_| None).collect();

        // 1. One truth pre-pass over the whole batch.
        for (i, req) in requests.iter().enumerate() {
            let departure = self.canonical_departure(req);
            let hit = {
                let _s = tr.span(Stage::TruthLookup);
                self.truths
                    .lookup(graph, req.from, req.to, departure, &self.cfg.core)
            };
            if let Some(hit) = hit {
                self.stats.inc_truth_hits();
                results[i] = Some(Ok(ServedRoute {
                    path: hit.path,
                    served: Served::TruthHit,
                    confidence: hit.confidence,
                }));
            }
        }

        // 2. Group misses by dedup key (first-appearance order) and join
        // the global flight table once per distinct key. Joins are
        // non-blocking: keys led by a *concurrent* batch become deferred
        // watches, waited on only after every leadership this batch
        // holds is completed (step 4) — blocking inline here while
        // holding other leader tokens would deadlock two batches that
        // lead each other's keys in opposite orders.
        let mut groups: Vec<(RequestKey, Vec<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            let key = self.key_of(req);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        /// A key this batch leads: its member requests, the flight
        /// obligation, and (once fetched or mined) its candidate set.
        struct PendingFlight<'t> {
            members: Vec<usize>,
            token: crate::singleflight::LeaderToken<'t, RequestKey, ServedRoute>,
            candidates: Option<Arc<Vec<CandidateRoute>>>,
        }
        let mut pending: Vec<PendingFlight<'_>> = Vec::new();
        let mut watches: Vec<(Vec<usize>, crate::singleflight::FlightWatch<ServedRoute>)> =
            Vec::new();
        for (key, members) in groups {
            match self.flights.join_deferred(key) {
                JoinNow::Watch(watch) => watches.push((members, watch)),
                JoinNow::Leader(token) => {
                    // Leader double-check (same reasoning as `handle`):
                    // the previous identical flight may have completed
                    // between the pre-pass and leadership.
                    let req = &requests[members[0]];
                    let departure = self.canonical_departure(req);
                    let hit = {
                        let _s = tr.span(Stage::TruthLookup);
                        self.truths
                            .lookup(graph, req.from, req.to, departure, &self.cfg.core)
                    };
                    if let Some(hit) = hit {
                        let served = ServedRoute {
                            path: hit.path,
                            served: Served::TruthHit,
                            confidence: hit.confidence,
                        };
                        token.complete(served.clone());
                        for &i in &members {
                            self.stats.inc_truth_hits();
                            results[i] = Some(Ok(served.clone()));
                        }
                    } else {
                        pending.push(PendingFlight {
                            members,
                            token,
                            candidates: None,
                        });
                    }
                }
            }
        }

        // 3. Candidate-cache pre-pass, then one artifact-backed fused
        // mining pass for every leader OD the cache cannot serve.
        let mut to_mine: Vec<usize> = Vec::new();
        for (p, flight) in pending.iter_mut().enumerate() {
            let req = &requests[flight.members[0]];
            let bucket = self.bucket_of(req.departure);
            let hit = {
                let _s = tr.span(Stage::CacheLookup);
                self.cache_lookup(req.from, req.to, bucket)
            };
            if let Some(candidates) = hit {
                self.stats.inc_cache_hits();
                flight.candidates = Some(candidates);
            } else {
                self.stats.inc_cache_misses();
                to_mine.push(p);
            }
        }
        if to_mine.len() == 1 && !self.artifacts.is_enabled() {
            // A lone miss with cross-batch reuse disabled: exhaustive
            // artifact expansions would be pure waste (used once,
            // dropped), so take the targeted per-request miners.
            let p = to_mine[0];
            let req = &requests[pending[p].members[0]];
            let departure = self.canonical_departure(req);
            let mined = {
                let _s = tr.span(Stage::Mining);
                Arc::new(self.world.candidates(req.from, req.to, departure))
            };
            self.cache_fill(req.from, req.to, self.bucket_of(req.departure), &mined);
            pending[p].candidates = Some(mined);
        } else if !to_mine.is_empty() {
            // Fusion bookkeeping: an OD counts as fused only if it
            // actually shared work with another miss — its origin (the
            // all-day artifacts) or its canonical departure (the MFP
            // period aggregation) appears more than once. A batch of
            // fully unrelated misses books no fusion, matching the
            // old per-departure-group accounting.
            let shares_work = |p: usize| -> bool {
                let req = &requests[pending[p].members[0]];
                let dep = self.canonical_departure(req).0.to_bits();
                to_mine
                    .iter()
                    .filter(|&&q| {
                        let other = &requests[pending[q].members[0]];
                        other.from == req.from || self.canonical_departure(other).0.to_bits() == dep
                    })
                    .count()
                    > 1 // the filter matches `p` itself
            };
            let fused_ods = to_mine.iter().filter(|&&p| shares_work(p)).count();
            if fused_ods >= 2 {
                self.stats.record_fused_mining(fused_ods);
            }
            // Per-origin all-day artifacts: cached across batches and
            // buckets, generation-checked against the world, expanded
            // at most once per distinct origin here.
            let mut artifacts: Vec<(NodeId, Arc<cp_mining::OriginArtifacts>)> = Vec::new();
            for &p in &to_mine {
                let from = requests[pending[p].members[0]].from;
                if !artifacts.iter().any(|(n, _)| *n == from) {
                    let _s = tr.span(Stage::ArtifactFetch);
                    let art = self.artifacts.origin_artifacts(
                        &self.world,
                        self.cell_of(from),
                        from,
                        &self.stats,
                    );
                    artifacts.push((from, art));
                }
            }
            // Period-dependent MFP aggregation: one shared (and
            // cached) network per distinct canonical departure. Cell-
            // keyed platform runs span buckets, so several departures
            // per batch are the norm now.
            let mut by_departure: Vec<(u64, Vec<usize>)> = Vec::new();
            for &p in &to_mine {
                let req = &requests[pending[p].members[0]];
                let bits = self.canonical_departure(req).0.to_bits();
                match by_departure.iter_mut().find(|(b, _)| *b == bits) {
                    Some((_, ps)) => ps.push(p),
                    None => by_departure.push((bits, vec![p])),
                }
            }
            for (bits, ps) in by_departure {
                let departure = TimeOfDay(f64::from_bits(bits));
                let period = {
                    let _s = tr.span(Stage::ArtifactFetch);
                    self.artifacts.period_network(&self.world, departure)
                };
                for &p in &ps {
                    let req = &requests[pending[p].members[0]];
                    let art = &artifacts
                        .iter()
                        .find(|(n, _)| *n == req.from)
                        .expect("artifact prefetched for every miss origin")
                        .1;
                    let set = {
                        let _s = tr.span(Stage::Mining);
                        Arc::new(cp_mining::candidates_from_artifacts(
                            graph,
                            self.world.trips(),
                            &self.world.mfp,
                            &self.world.ldr,
                            art,
                            &period,
                            req.to,
                            departure,
                        ))
                    };
                    self.cache_fill(req.from, req.to, self.bucket_of(req.departure), &set);
                    pending[p].candidates = Some(set);
                }
            }
        }

        // 4. Resolve each led flight in batch order.
        let mut poisoned = false;
        for flight in pending {
            let first = flight.members[0];
            let req = &requests[first];
            if poisoned {
                // The resolver panicked earlier in this batch and may be
                // mid-mutation; fail fast. Dropping the token publishes
                // the failure to any concurrent followers.
                for &i in &flight.members {
                    self.stats.inc_errors();
                    results[i] = Some(Err(ServiceError::ResolverPanicked));
                }
                continue;
            }
            let departure = self.canonical_departure(req);
            let candidates = flight
                .candidates
                .as_ref()
                .expect("every pending flight was cached or mined");
            let r0 = tr.clock();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                resolver.resolve(req.from, req.to, departure, candidates)
            }));
            match outcome {
                Err(_) => {
                    tr.record(Stage::ResolveMachine, r0);
                    poisoned = true;
                    for &i in &flight.members {
                        self.stats.inc_errors();
                        results[i] = Some(Err(ServiceError::ResolverPanicked));
                    }
                }
                Ok(Err(e)) => {
                    tr.record(resolve_stage_err(&e), r0);
                    if let ServiceError::CrowdStarved { quota_rejections } = e {
                        self.stats.record_crowd(crate::resolver::CrowdCost {
                            questions: 0,
                            workers: 0,
                            quota_rejections,
                            starved: true,
                        });
                    }
                    self.stats.inc_errors();
                    results[first] = Some(Err(e));
                    for &i in &flight.members[1..] {
                        self.stats.inc_errors();
                        results[i] = Some(Err(ServiceError::LeaderFailed));
                    }
                }
                Ok(Ok(resolved)) => {
                    tr.record(resolve_stage_ok(&resolved), r0);
                    let starved = resolved.crowd.is_some_and(|c| c.starved);
                    if let Some(cost) = resolved.crowd {
                        self.stats.record_crowd(cost);
                    }
                    if !starved {
                        let _s = tr.span(Stage::Commit);
                        self.commit_truth(TruthEntry {
                            from: req.from,
                            to: req.to,
                            departure,
                            path: resolved.path.clone(),
                            confidence: resolved.confidence,
                        });
                    }
                    let served = ServedRoute {
                        path: resolved.path,
                        served: Served::Resolved(resolved.resolution),
                        confidence: resolved.confidence,
                    };
                    self.stats.inc_resolved();
                    flight.token.complete(served.clone());
                    results[first] = Some(Ok(served.clone()));
                    for &i in &flight.members[1..] {
                        self.stats.inc_dedup_hits();
                        results[i] = Some(Ok(ServedRoute {
                            served: Served::Deduplicated,
                            ..served.clone()
                        }));
                    }
                }
            }
        }

        // 5. Only now — with every leadership this batch held completed
        // (or dropped) — wait on flights led by concurrent callers.
        for (members, watch) in watches {
            let shared = {
                let _s = tr.span(Stage::FlightWait);
                watch.wait()
            };
            match shared {
                Some(mut shared) => {
                    shared.served = Served::Deduplicated;
                    for &i in &members {
                        self.stats.inc_dedup_hits();
                        results[i] = Some(Ok(shared.clone()));
                    }
                }
                None => {
                    for &i in &members {
                        self.stats.inc_errors();
                        results[i] = Some(Err(ServiceError::LeaderFailed));
                    }
                }
            }
        }

        let elapsed = t0.elapsed();
        for _ in requests {
            self.stats.record_latency(elapsed);
        }
        let results: Vec<Result<ServedRoute, ServiceError>> = results
            .into_iter()
            .map(|r| r.expect("every batched request reaches exactly one outcome"))
            .collect();
        self.tracer.finish(
            tr,
            requests[0].from,
            requests[0].to,
            requests[0].departure,
            requests.len(),
            outcome_label(&results[0]),
            elapsed,
        );
        results
    }

    /// Fans `requests` across `config().workers` scoped threads, each
    /// with its own resolver from `make_resolver(worker_index)`. Results
    /// come back in request order.
    ///
    /// This is the closed-batch convenience path (the resolver may
    /// borrow from the caller's stack); for open submission, admission
    /// control and multi-city routing use
    /// [`Platform::submit`](crate::Platform::submit).
    pub fn serve<R, F>(
        &self,
        requests: &[Request],
        make_resolver: F,
    ) -> Vec<Result<ServedRoute, ServiceError>>
    where
        R: Resolver,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.cfg.workers.max(1);
        let (job_tx, job_rx) = mpsc::channel::<(usize, Request)>();
        let job_rx = Mutex::new(job_rx);
        let (out_tx, out_rx) = mpsc::channel::<(usize, Result<ServedRoute, ServiceError>)>();
        let mut results: Vec<Option<Result<ServedRoute, ServiceError>>> =
            requests.iter().map(|_| None).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let job_rx = &job_rx;
                let out_tx = out_tx.clone();
                let make_resolver = &make_resolver;
                s.spawn(move || {
                    let mut resolver = make_resolver(w);
                    loop {
                        // Take the next job; release the queue lock
                        // before doing any work.
                        let job = job_rx.lock().expect("job queue poisoned").recv();
                        let Ok((i, req)) = job else { break };
                        let _ = out_tx.send((i, self.handle(req, &mut resolver)));
                    }
                });
            }
            drop(out_tx);
            for (i, &req) in requests.iter().enumerate() {
                job_tx.send((i, req)).expect("a worker is alive");
            }
            drop(job_tx);
            for (i, res) in out_rx {
                results[i] = Some(res);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every request yields exactly one result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::MachineResolver;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn mini_world() -> Arc<World> {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        Arc::new(World::new(city.graph, trips.trips))
    }

    #[test]
    fn service_is_sync_static_and_request_types_are_send() {
        fn assert_sync<T: Sync + 'static>() {}
        fn assert_send<T: Send>() {}
        assert_sync::<RouteService>();
        assert_send::<Request>();
        assert_send::<ServedRoute>();
        assert_send::<ServiceError>();
    }

    #[test]
    fn ladder_truth_hit_after_resolution() {
        let world = mini_world();
        let service = RouteService::new(Arc::clone(&world), ServiceConfig::strict_deterministic());
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        let req = Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        let first = service.handle(req, &mut resolver).unwrap();
        assert!(matches!(first.served, Served::Resolved(_)));
        let second = service.handle(req, &mut resolver).unwrap();
        assert_eq!(second.served, Served::TruthHit);
        assert_eq!(second.path, first.path);
        let snap = service.stats();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.truth_hits, 1);
        assert_eq!(snap.resolved, 1);
        assert!(snap.is_consistent());
    }

    #[test]
    fn candidate_cache_hits_on_same_bucket_and_od() {
        let world = mini_world();
        // Exact-time truth keys + raw departures: requests in the same
        // bucket at different exact times miss the truth store but share
        // the mined candidate set.
        let mut cfg = ServiceConfig::strict_deterministic();
        cfg.canonicalize_departure = false;
        let service = RouteService::new(Arc::clone(&world), cfg);
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        // Same OD and bucket, different exact departures.
        for minutes in [0.0, 3.0, 7.0] {
            let req = Request::new(
                NodeId(5),
                NodeId(54),
                TimeOfDay::new(8.0 * 3600.0 + minutes * 60.0),
            );
            service.handle(req, &mut resolver).unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.truth_hits, 0, "exact-time keys must not alias");
        assert_eq!(snap.cache_misses, 1, "only the first request mines");
        assert_eq!(snap.cache_hits, 2);
        assert!((snap.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(snap.is_consistent());
    }

    #[test]
    fn cache_ods_per_key_bounds_aliasing_and_counts_evictions() {
        let world = mini_world();
        // A giant cell: every node aliases onto one cache key, and a
        // 1-entry OD list evicts on every new OD.
        let mut cfg = ServiceConfig::strict_deterministic();
        cfg.cell_m = 1e9;
        cfg.cache_ods_per_key = 1;
        let service = RouteService::new(Arc::clone(&world), cfg);
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        for (a, b) in [(0u32, 59u32), (5, 54), (12, 47)] {
            let req = Request::new(NodeId(a), NodeId(b), TimeOfDay::from_hours(8.0));
            service.handle(req, &mut resolver).unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.cache_misses, 3, "every distinct OD must mine");
        // Each new OD evicted its predecessor from the single slot.
        assert_eq!(snap.cache_od_evictions, 2);
        assert!(snap.is_consistent());
    }

    #[test]
    fn truth_cap_evictions_reach_service_stats() {
        let world = mini_world();
        let mut cfg = ServiceConfig::strict_deterministic();
        cfg.shards = 1;
        cfg.truth_cap_per_shard = 4;
        let service = RouteService::new(Arc::clone(&world), cfg);
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        for i in 0..20u32 {
            let req = Request::new(NodeId(i), NodeId(59 - (i % 7)), TimeOfDay::from_hours(8.0));
            if req.from == req.to {
                continue;
            }
            service.handle(req, &mut resolver).unwrap();
        }
        let snap = service.stats();
        assert!(service.truths().len() <= 4, "cap must bound the store");
        assert!(snap.truth_evictions > 0, "evictions must be observable");
        assert_eq!(snap.truth_evictions, service.truths().evicted());
        assert!(snap.is_consistent());
    }

    #[test]
    fn age_eviction_counts_in_stats() {
        let world = mini_world();
        let service = RouteService::new(Arc::clone(&world), ServiceConfig::strict_deterministic());
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        let req = Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        service.handle(req, &mut resolver).unwrap();
        assert_eq!(service.truths().len(), 1);
        let n = service.evict_truths_older_than(std::time::Duration::ZERO);
        assert_eq!(n, 1);
        assert_eq!(service.stats().truth_evictions, 1);
        // The next identical request re-resolves (the truth aged out).
        let again = service.handle(req, &mut resolver).unwrap();
        assert!(matches!(again.served, Served::Resolved(_)));
    }

    #[test]
    fn bucket_of_wraps_at_midnight() {
        let world = mini_world();
        let cfg = ServiceConfig::default(); // 900 s buckets → 96/day
        let per_day = cfg.buckets_per_day();
        assert_eq!(per_day, 96);
        let service = RouteService::new(world, cfg);
        // Start of day.
        assert_eq!(service.bucket_of(TimeOfDay::new(0.0)), 0);
        // Last instant of the day lands in the last bucket…
        assert_eq!(
            service.bucket_of(TimeOfDay::new(TimeOfDay::DAY - 1e-3)),
            per_day - 1
        );
        // …and exactly DAY wraps to bucket 0, never bucket `per_day`.
        assert_eq!(service.bucket_of(TimeOfDay::new(TimeOfDay::DAY)), 0);
        // Bucket boundaries are half-open: 900 s starts bucket 1.
        assert_eq!(service.bucket_of(TimeOfDay::new(899.999)), 0);
        assert_eq!(service.bucket_of(TimeOfDay::new(900.0)), 1);
    }

    #[test]
    fn bucket_wrap_with_uneven_bucket_width() {
        let world = mini_world();
        // 7000 s does not divide the day: ceil(86400/7000) = 13 buckets,
        // the last one truncated. The final instant must land in bucket
        // 12, and times past 13×7000 s (impossible: > DAY) never occur.
        let mut cfg = ServiceConfig::default();
        cfg.time_bucket_s = 7000.0;
        assert_eq!(cfg.buckets_per_day(), 13);
        let service = RouteService::new(world, cfg);
        assert_eq!(service.bucket_of(TimeOfDay::new(0.0)), 0);
        assert_eq!(service.bucket_of(TimeOfDay::new(TimeOfDay::DAY - 1e-3)), 12);
        assert_eq!(service.bucket_of(TimeOfDay::new(TimeOfDay::DAY)), 0);
        // The truncated final bucket spans [84000, 86400); its canonical
        // departure must stay inside it instead of wrapping past
        // midnight into bucket 0 (the naive `(b + 0.5) × width` formula
        // would produce 87500 s → 1100 s → bucket 0).
        let late = Request::new(NodeId(0), NodeId(1), TimeOfDay::new(TimeOfDay::DAY - 1.0));
        let canon = service.canonical_departure(&late);
        assert_eq!(service.bucket_of(canon), 12);
        assert!(canon.0 < TimeOfDay::DAY && canon.0 >= 84_000.0);
    }

    #[test]
    fn canonical_departure_stays_inside_its_bucket() {
        let world = mini_world();
        let service = RouteService::new(world, ServiceConfig::default());
        // Probe both sides of midnight and a mid-day boundary.
        for t in [0.0, 1.0, 899.9, 900.0, 43_200.0, 86_399.9] {
            let req = Request::new(NodeId(0), NodeId(1), TimeOfDay::new(t));
            let canon = service.canonical_departure(&req);
            assert_eq!(
                service.bucket_of(canon),
                service.bucket_of(req.departure),
                "canonicalisation must not move t={t} across buckets"
            );
        }
        // The last (wrapping) bucket canonicalises to its own midpoint,
        // which still lies strictly before midnight.
        let last = Request::new(NodeId(0), NodeId(1), TimeOfDay::new(86_399.9));
        let canon = service.canonical_departure(&last);
        assert!(canon.0 < TimeOfDay::DAY);
        assert_eq!(service.bucket_of(canon), 95);
    }

    #[test]
    fn request_keys_directly_into_hash_maps() {
        use std::collections::HashSet;
        let mut set: HashSet<Request> = HashSet::new();
        let a = Request::new(NodeId(1), NodeId(2), TimeOfDay::from_hours(8.0));
        let b = Request::new(NodeId(1), NodeId(2), TimeOfDay::from_hours(8.0));
        let c = Request::new(NodeId(1), NodeId(2), TimeOfDay::from_hours(9.0));
        // Midnight wraps to 0.0; a negative-zero seconds value must
        // land in the same bucket as positive zero.
        let z1 = Request::new(NodeId(3), NodeId(4), TimeOfDay::new(0.0));
        let z2 = Request::new(NodeId(3), NodeId(4), TimeOfDay(-0.0));
        assert_eq!(z1, z2);
        for r in [a, b, c, z1, z2] {
            set.insert(r);
        }
        assert_eq!(set.len(), 3, "duplicates must collapse");
        assert!(set.contains(&a) && set.contains(&c) && set.contains(&z2));
    }

    #[test]
    fn coalesced_batch_matches_sequential_handling_and_books_fusion() {
        let world = mini_world();
        let cfg = ServiceConfig::strict_deterministic();
        // A hot origin cell: one origin, many distinct destinations in
        // one bucket, plus intra-batch duplicates.
        let requests: Vec<Request> = [59u32, 54, 47, 31, 59, 23, 12, 47]
            .iter()
            .map(|&b| Request::new(NodeId(0), NodeId(b), TimeOfDay::from_hours(8.0)))
            .collect();

        // Sequential reference.
        let seq = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut seq_resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let expected: Vec<Path> = requests
            .iter()
            .map(|&r| seq.handle(r, &mut seq_resolver).unwrap().path)
            .collect();

        // One coalesced batch.
        let service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let results = service.serve_coalesced(&requests, &mut resolver);
        assert_eq!(results.len(), requests.len());
        for (i, res) in results.iter().enumerate() {
            assert_eq!(res.as_ref().unwrap().path, expected[i], "request {i}");
        }
        let snap = service.stats();
        assert!(snap.is_consistent(), "{snap:?}");
        assert_eq!(snap.requests, 8);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batched_requests, 8);
        assert_eq!(snap.batch_max, 8);
        // 6 distinct ODs resolved once each; the 2 duplicates dedup.
        assert_eq!(snap.resolved, 6);
        assert_eq!(snap.dedup_hits, 2);
        assert_eq!(snap.cache_misses, 6);
        // All 6 minings went through one fused call.
        assert_eq!(snap.fused_minings, 1);
        assert_eq!(snap.fused_mined_ods, 6);
        assert!((snap.fused_mining_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(snap.latency.count, 8);
        // Truth stores agree entry for entry.
        assert_eq!(service.truths().len(), seq.truths().len());

        // A follow-up batch re-serves everything from the truth store.
        let again = service.serve_coalesced(&requests, &mut resolver);
        for (i, res) in again.iter().enumerate() {
            let served = res.as_ref().unwrap();
            assert_eq!(served.served, Served::TruthHit, "request {i}");
            assert_eq!(served.path, expected[i], "request {i}");
        }
        assert!(service.stats().is_consistent());
    }

    #[test]
    fn coalesced_singleton_mines_without_fusion() {
        let world = mini_world();
        let service = RouteService::new(Arc::clone(&world), ServiceConfig::strict_deterministic());
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        let req = Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        let out = service.serve_coalesced(&[req], &mut resolver);
        assert!(out[0].is_ok());
        let snap = service.stats();
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batched_requests, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.fused_minings, 0, "a lone miss must not claim fusion");
        assert_eq!(snap.fused_mined_ods, 0);
        assert!(snap.is_consistent());
        // Empty input is a no-op, not a recorded batch.
        assert!(service.serve_coalesced(&[], &mut resolver).is_empty());
        assert_eq!(service.stats().batches, 1);
    }

    #[test]
    fn unrelated_misses_in_one_batch_book_no_fusion() {
        let world = mini_world();
        // Distinct origins AND distinct buckets: no work is shared, so
        // despite two cache misses in one coalesced call the fusion
        // counters must stay untouched.
        let service = RouteService::new(Arc::clone(&world), ServiceConfig::strict_deterministic());
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        let requests = [
            Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0)),
            Request::new(NodeId(12), NodeId(47), TimeOfDay::from_hours(9.0)),
        ];
        for res in service.serve_coalesced(&requests, &mut resolver) {
            res.unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.fused_minings, 0, "nothing was shared: {snap:?}");
        assert_eq!(snap.fused_mined_ods, 0);
        assert!(snap.is_consistent(), "{snap:?}");
        // Shared departure alone IS fusion (one period aggregation).
        let service = RouteService::new(Arc::clone(&world), ServiceConfig::strict_deterministic());
        let mut resolver = MachineResolver::new(world.graph_arc(), service.config().core.clone());
        let requests = [
            Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0)),
            Request::new(NodeId(12), NodeId(47), TimeOfDay::from_hours(8.0)),
        ];
        for res in service.serve_coalesced(&requests, &mut resolver) {
            res.unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.fused_minings, 1);
        assert_eq!(snap.fused_mined_ods, 2);
        assert!(snap.is_consistent(), "{snap:?}");
    }

    #[test]
    fn disabled_artifact_cache_keeps_lone_misses_on_the_targeted_path() {
        let world = mini_world();
        let mut cfg = ServiceConfig::strict_deterministic();
        cfg.artifact_cache_origins = 0;
        let service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let req = Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0));
        let out = service.serve_coalesced(&[req], &mut resolver);
        assert!(out[0].is_ok());
        let snap = service.stats();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(
            snap.artifact_misses, 0,
            "a lone miss without a cache must not build exhaustive artifacts"
        );
        assert_eq!(snap.artifact_hits, 0);
        assert!(snap.is_consistent(), "{snap:?}");
        // Multi-miss batches still fuse through transient artifacts.
        let reqs = [
            Request::new(NodeId(0), NodeId(54), TimeOfDay::from_hours(8.0)),
            Request::new(NodeId(0), NodeId(47), TimeOfDay::from_hours(8.0)),
        ];
        for res in service.serve_coalesced(&reqs, &mut resolver) {
            res.unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.fused_minings, 1);
        assert_eq!(snap.artifact_misses, 1, "transient artifact, uncached");
        assert!(snap.is_consistent(), "{snap:?}");
    }

    #[test]
    fn artifact_cache_reuses_origin_expansions_across_batches() {
        let world = mini_world();
        let cfg = ServiceConfig::strict_deterministic();
        let service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let batch = |dests: &[u32], hour: f64| -> Vec<Request> {
            dests
                .iter()
                .map(|&b| Request::new(NodeId(0), NodeId(b), TimeOfDay::from_hours(hour)))
                .collect()
        };
        // First batch expands origin 0 once.
        for res in service.serve_coalesced(&batch(&[59, 54], 8.0), &mut resolver) {
            res.unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.artifact_misses, 1);
        assert_eq!(snap.artifact_hits, 0);
        // A second batch — new destinations AND a new time bucket —
        // reuses the cached all-day expansion.
        for res in service.serve_coalesced(&batch(&[47, 31], 9.0), &mut resolver) {
            res.unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.artifact_misses, 1, "origin 0 expands exactly once");
        assert_eq!(snap.artifact_hits, 1);
        assert!(snap.is_consistent(), "{snap:?}");

        // Byte-identity against fresh per-request serving.
        let reference = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut ref_resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        for req in batch(&[59, 54], 8.0)
            .into_iter()
            .chain(batch(&[47, 31], 9.0))
        {
            let got = service
                .truths()
                .lookup(
                    world.graph(),
                    req.from,
                    req.to,
                    service.canonical_departure(&req),
                    &cfg.core,
                )
                .expect("resolved truth present");
            let want = reference.handle(req, &mut ref_resolver).unwrap();
            assert_eq!(got.path, want.path);
        }
    }

    #[test]
    fn generation_bump_invalidates_cached_artifacts_between_batches() {
        let world = mini_world();
        let cfg = ServiceConfig::strict_deterministic();
        let service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let reqs1: Vec<Request> = [59u32, 54]
            .iter()
            .map(|&b| Request::new(NodeId(0), NodeId(b), TimeOfDay::from_hours(8.0)))
            .collect();
        for res in service.serve_coalesced(&reqs1, &mut resolver) {
            res.unwrap();
        }
        world.bump_generation();
        let reqs2: Vec<Request> = [47u32, 31]
            .iter()
            .map(|&b| Request::new(NodeId(0), NodeId(b), TimeOfDay::from_hours(8.0)))
            .collect();
        let results = service.serve_coalesced(&reqs2, &mut resolver);
        for res in &results {
            assert!(res.is_ok());
        }
        let snap = service.stats();
        assert_eq!(snap.artifact_misses, 2, "bumped generation re-expands");
        assert_eq!(snap.artifact_hits, 0);
        assert_eq!(snap.artifact_evictions, 1, "the stale entry is dropped");
        assert!(snap.is_consistent(), "{snap:?}");
    }

    #[test]
    fn opposite_order_concurrent_batches_do_not_deadlock() {
        use std::sync::Barrier;
        // Regression: a batch must never block on another batch's
        // flight while holding its own leaderships. Two threads serve
        // the same two keys in opposite orders; with inline follower
        // waits they could each lead one key and block forever on the
        // other.
        let world = mini_world();
        let cfg = ServiceConfig::strict_deterministic();
        let forward = [
            Request::new(NodeId(0), NodeId(59), TimeOfDay::from_hours(8.0)),
            Request::new(NodeId(0), NodeId(31), TimeOfDay::from_hours(8.0)),
        ];
        let reverse = [forward[1], forward[0]];
        for _round in 0..50 {
            let service = RouteService::new(Arc::clone(&world), cfg.clone());
            let barrier = Barrier::new(2);
            std::thread::scope(|s| {
                for reqs in [forward, reverse] {
                    let service = &service;
                    let barrier = &barrier;
                    let world = &world;
                    let core = cfg.core.clone();
                    s.spawn(move || {
                        let mut resolver = MachineResolver::new(world.graph_arc(), core);
                        barrier.wait();
                        for res in service.serve_coalesced(&reqs, &mut resolver) {
                            res.expect("no batch may fail");
                        }
                    });
                }
            });
            let snap = service.stats();
            assert_eq!(snap.requests, 4);
            assert!(snap.is_consistent(), "{snap:?}");
        }
    }

    #[test]
    fn coalesced_resolver_panic_is_contained() {
        use crate::resolver::Resolved;

        /// Panics on one poisoned destination, resolves normally
        /// otherwise.
        struct Panicky(MachineResolver);
        impl Resolver for Panicky {
            fn resolve(
                &mut self,
                from: NodeId,
                to: NodeId,
                departure: TimeOfDay,
                candidates: &[CandidateRoute],
            ) -> Result<Resolved, ServiceError> {
                assert!(to != NodeId(31), "poisoned request");
                self.0.resolve(from, to, departure, candidates)
            }
        }

        let world = mini_world();
        let service = RouteService::new(Arc::clone(&world), ServiceConfig::strict_deterministic());
        let mut resolver = Panicky(MachineResolver::new(
            world.graph_arc(),
            service.config().core.clone(),
        ));
        let requests: Vec<Request> = [59u32, 31, 47]
            .iter()
            .map(|&b| Request::new(NodeId(0), NodeId(b), TimeOfDay::from_hours(8.0)))
            .collect();
        let results = service.serve_coalesced(&requests, &mut resolver);
        // The healthy leader before the panic resolves; the poisoned one
        // and everything after it fail without unwinding.
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ServiceError::ResolverPanicked)));
        assert!(matches!(results[2], Err(ServiceError::ResolverPanicked)));
        let snap = service.stats();
        assert_eq!(snap.requests, 3);
        assert_eq!(snap.resolved, 1);
        assert_eq!(snap.errors, 2);
        assert!(snap.is_consistent(), "{snap:?}");
    }

    #[test]
    fn batch_serving_matches_individual_handling() {
        let world = mini_world();
        let cfg = ServiceConfig {
            workers: 4,
            ..ServiceConfig::strict_deterministic()
        };
        let requests: Vec<Request> = (0..40)
            .map(|i| {
                Request::new(
                    NodeId(i % 20),
                    NodeId(59 - (i % 17)),
                    TimeOfDay::from_hours(7.0 + (i % 3) as f64),
                )
            })
            .filter(|r| r.from != r.to)
            .collect();

        // Sequential reference.
        let seq_service = RouteService::new(Arc::clone(&world), cfg.clone());
        let mut seq_resolver = MachineResolver::new(world.graph_arc(), cfg.core.clone());
        let expected: Vec<Path> = requests
            .iter()
            .map(|&r| seq_service.handle(r, &mut seq_resolver).unwrap().path)
            .collect();

        // Threaded run.
        let service = RouteService::new(Arc::clone(&world), cfg.clone());
        let results = service.serve(&requests, |_| {
            MachineResolver::new(world.graph_arc(), cfg.core.clone())
        });
        assert_eq!(results.len(), requests.len());
        for (i, res) in results.iter().enumerate() {
            let served = res.as_ref().expect("request must be served");
            assert_eq!(served.path, expected[i], "request {i}");
        }
        let snap = service.stats();
        assert_eq!(snap.requests, requests.len() as u64);
        assert!(snap.is_consistent());
    }
}
