//! Lock-free serving statistics.
//!
//! Worker threads record every request outcome with relaxed atomics; a
//! [`ServiceStats::snapshot`] folds them into a [`StatsSnapshot`] with
//! derived rates and a latency summary. The core accounting invariant —
//! every request is served from exactly one of {truth store, dedup,
//! fresh resolution, error} — is checked by
//! [`StatsSnapshot::is_consistent`] and asserted in the concurrency
//! integration test.

use crate::trace::{LockSite, LockSummary, Stage, StageSummary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets (covers 1 ns … ~2.1 s; the last
/// bucket absorbs the tail).
const BUCKETS: usize = 32;

/// Percentile over a log₂ bucket histogram: the upper edge (`2^i` ns)
/// of the bucket containing the `p`-quantile observation.
fn bucket_percentile(buckets: &[u64], count: u64, p: f64) -> Duration {
    if count == 0 {
        return Duration::ZERO;
    }
    let target = ((count as f64) * p).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return Duration::from_nanos(1u64 << i.min(62));
        }
    }
    Duration::from_nanos(1u64 << 62)
}

/// Running counters, safe to update from any number of threads.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted.
    requests: AtomicU64,
    /// Served straight from the sharded truth store.
    truth_hits: AtomicU64,
    /// Served by waiting on an identical in-flight request.
    dedup_hits: AtomicU64,
    /// Resolved freshly (leader of a flight).
    resolved: AtomicU64,
    /// Failed (no candidates / resolver error / failed leader).
    errors: AtomicU64,
    /// Candidate-cache hits (only counted on the resolution path).
    cache_hits: AtomicU64,
    /// Candidate-cache misses (mining performed).
    cache_misses: AtomicU64,
    /// Per-key OD entries evicted from the candidate cache (aliasing
    /// OD pairs competing for one cell-bucket key).
    cache_od_evictions: AtomicU64,
    /// Coalesced batches served (`RouteService::serve_coalesced` calls).
    batches: AtomicU64,
    /// Requests that arrived inside a coalesced batch.
    batched_requests: AtomicU64,
    /// Largest coalesced batch observed (high-water mark).
    batch_max: AtomicU64,
    /// Fused candidate-generation calls (one multi-OD mining pass).
    fused_minings: AtomicU64,
    /// OD pairs mined through fused calls (each also counts as a
    /// `cache_misses` mining, so `fused_mined_ods / cache_misses` is the
    /// fused-mining ratio).
    fused_mined_ods: AtomicU64,
    /// Mining-artifact cache hits (a batch reused another batch's
    /// all-day origin expansion).
    artifact_hits: AtomicU64,
    /// Mining-artifact cache misses (origin expansion computed).
    artifact_misses: AtomicU64,
    /// Origin artifacts dropped from the cache (capacity, per-cell
    /// aliasing, or generation invalidation).
    artifact_evictions: AtomicU64,
    /// Crowd questions answered across all crowd-resolved requests.
    crowd_questions: AtomicU64,
    /// Crowd worker participations across all crowd-resolved requests.
    crowd_workers: AtomicU64,
    /// Worker reservations refused at the shared desk's cap.
    crowd_quota_rejections: AtomicU64,
    /// Requests whose crowd task was entirely quota-starved (served by
    /// machine fallback instead).
    crowd_starved: AtomicU64,
    // Latency (nanoseconds), over *all* served requests.
    lat_count: AtomicU64,
    lat_sum_ns: AtomicU64,
    lat_min_ns: AtomicU64,
    lat_max_ns: AtomicU64,
    lat_buckets: [AtomicU64; BUCKETS],
    // Per-stage span attribution (nanoseconds), recorded only when the
    // owning service traces (`TraceConfig` ≠ off). A stage's span count
    // is the sum of its buckets — there is no separate counter to
    // drift from the histogram.
    stage_sum_ns: [AtomicU64; Stage::COUNT],
    stage_max_ns: [AtomicU64; Stage::COUNT],
    stage_buckets: [[AtomicU64; BUCKETS]; Stage::COUNT],
}

impl ServiceStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        let s = ServiceStats::default();
        s.lat_min_ns.store(u64::MAX, Ordering::Relaxed);
        s
    }

    pub(crate) fn inc_requests(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_truth_hits(&self) {
        self.truth_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_dedup_hits(&self) {
        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_resolved(&self) {
        self.resolved.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_errors(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_cache_hits(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_cache_misses(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_cache_od_evictions(&self) {
        self.cache_od_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Books one coalesced batch of `size` requests.
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_max.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Books one fused mining call covering `ods` OD pairs.
    pub(crate) fn record_fused_mining(&self, ods: usize) {
        self.fused_minings.fetch_add(1, Ordering::Relaxed);
        self.fused_mined_ods
            .fetch_add(ods as u64, Ordering::Relaxed);
    }

    pub(crate) fn inc_artifact_hits(&self) {
        self.artifact_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn inc_artifact_misses(&self) {
        self.artifact_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_artifact_evictions(&self, n: usize) {
        self.artifact_evictions
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Books one crowd-resolved request's cost and contention.
    pub(crate) fn record_crowd(&self, cost: crate::resolver::CrowdCost) {
        self.crowd_questions
            .fetch_add(cost.questions, Ordering::Relaxed);
        self.crowd_workers
            .fetch_add(cost.workers, Ordering::Relaxed);
        self.crowd_quota_rejections
            .fetch_add(cost.quota_rejections, Ordering::Relaxed);
        if cost.starved {
            self.crowd_starved.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds `other`'s counters into `self` (latency histograms add
    /// bucket-wise, extrema widen). The platform uses this to aggregate
    /// per-city statistics into one exact platform-wide snapshot —
    /// percentiles are computed from the merged histogram, not
    /// approximated from per-city percentiles.
    pub fn absorb(&self, other: &ServiceStats) {
        let add = |dst: &AtomicU64, src: &AtomicU64| {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        };
        add(&self.requests, &other.requests);
        add(&self.truth_hits, &other.truth_hits);
        add(&self.dedup_hits, &other.dedup_hits);
        add(&self.resolved, &other.resolved);
        add(&self.errors, &other.errors);
        add(&self.cache_hits, &other.cache_hits);
        add(&self.cache_misses, &other.cache_misses);
        add(&self.cache_od_evictions, &other.cache_od_evictions);
        add(&self.batches, &other.batches);
        add(&self.batched_requests, &other.batched_requests);
        self.batch_max
            .fetch_max(other.batch_max.load(Ordering::Relaxed), Ordering::Relaxed);
        add(&self.fused_minings, &other.fused_minings);
        add(&self.fused_mined_ods, &other.fused_mined_ods);
        add(&self.artifact_hits, &other.artifact_hits);
        add(&self.artifact_misses, &other.artifact_misses);
        add(&self.artifact_evictions, &other.artifact_evictions);
        add(&self.crowd_questions, &other.crowd_questions);
        add(&self.crowd_workers, &other.crowd_workers);
        add(&self.crowd_quota_rejections, &other.crowd_quota_rejections);
        add(&self.crowd_starved, &other.crowd_starved);
        add(&self.lat_count, &other.lat_count);
        add(&self.lat_sum_ns, &other.lat_sum_ns);
        self.lat_min_ns
            .fetch_min(other.lat_min_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.lat_max_ns
            .fetch_max(other.lat_max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        for (dst, src) in self.lat_buckets.iter().zip(&other.lat_buckets) {
            add(dst, src);
        }
        for (dst, src) in self.stage_sum_ns.iter().zip(&other.stage_sum_ns) {
            add(dst, src);
        }
        for (dst, src) in self.stage_max_ns.iter().zip(&other.stage_max_ns) {
            dst.fetch_max(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        for (dst_row, src_row) in self.stage_buckets.iter().zip(&other.stage_buckets) {
            for (dst, src) in dst_row.iter().zip(src_row) {
                add(dst, src);
            }
        }
    }

    /// Attributes `ns` nanoseconds to a pipeline stage's histogram
    /// (tracing-gated: only called through an active
    /// [`CallTrace`](crate::CallTrace) or the platform's queue-wait
    /// bookkeeping).
    pub(crate) fn record_stage(&self, stage: Stage, ns: u64) {
        let i = stage.index();
        self.stage_sum_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.stage_max_ns[i].fetch_max(ns, Ordering::Relaxed);
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.stage_buckets[i][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's wall-clock service time.
    pub(crate) fn record_latency(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.lat_count.fetch_add(1, Ordering::Relaxed);
        self.lat_sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.lat_min_ns.fetch_min(ns, Ordering::Relaxed);
        self.lat_max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.lat_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy with derived rates.
    pub fn snapshot(&self) -> StatsSnapshot {
        let count = self.lat_count.load(Ordering::Relaxed);
        let sum = self.lat_sum_ns.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .lat_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let percentile = |p: f64| -> Duration { bucket_percentile(&buckets, count, p) };
        let min = self.lat_min_ns.load(Ordering::Relaxed);
        let mut stages = [StageSummary::default(); Stage::COUNT];
        for (i, summary) in stages.iter_mut().enumerate() {
            let stage_buckets: Vec<u64> = self.stage_buckets[i]
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let stage_count: u64 = stage_buckets.iter().sum();
            if stage_count == 0 {
                continue;
            }
            *summary = StageSummary {
                count: stage_count,
                total: Duration::from_nanos(self.stage_sum_ns[i].load(Ordering::Relaxed)),
                p50: bucket_percentile(&stage_buckets, stage_count, 0.50),
                p95: bucket_percentile(&stage_buckets, stage_count, 0.95),
                max: Duration::from_nanos(self.stage_max_ns[i].load(Ordering::Relaxed)),
            };
        }
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            truth_hits: self.truth_hits.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            resolved: self.resolved.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            // The truth store is the single source of eviction counts;
            // the owning service overwrites this from it (see
            // `RouteService::stats`). Raw counters stay zero so two
            // layers can never drift apart.
            truth_evictions: 0,
            cache_od_evictions: self.cache_od_evictions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batch_max: self.batch_max.load(Ordering::Relaxed),
            fused_minings: self.fused_minings.load(Ordering::Relaxed),
            fused_mined_ods: self.fused_mined_ods.load(Ordering::Relaxed),
            artifact_hits: self.artifact_hits.load(Ordering::Relaxed),
            artifact_misses: self.artifact_misses.load(Ordering::Relaxed),
            artifact_evictions: self.artifact_evictions.load(Ordering::Relaxed),
            crowd_questions: self.crowd_questions.load(Ordering::Relaxed),
            crowd_workers: self.crowd_workers.load(Ordering::Relaxed),
            crowd_quota_rejections: self.crowd_quota_rejections.load(Ordering::Relaxed),
            crowd_starved: self.crowd_starved.load(Ordering::Relaxed),
            stages,
            // Lock contention lives on the owning primitives (truth
            // shards, caches, flight table, ingress queue); the owner
            // fills these in (see `RouteService::stats` and
            // `Platform::snapshot_of`). Raw counters stay zero here so
            // two layers can never drift apart.
            locks: [LockSummary::default(); LockSite::COUNT],
            latency: LatencySummary {
                count,
                mean: Duration::from_nanos(sum.checked_div(count).unwrap_or(0)),
                min: if min == u64::MAX {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(min)
                },
                max: Duration::from_nanos(self.lat_max_ns.load(Ordering::Relaxed)),
                p50: percentile(0.50),
                p95: percentile(0.95),
                p99: percentile(0.99),
            },
        }
    }
}

/// Coarse latency distribution (log₂ buckets: percentiles are upper
/// bucket edges, i.e. ≤ 2× the true value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean service time.
    pub mean: Duration,
    /// Fastest request.
    pub min: Duration,
    /// Slowest request.
    pub max: Duration,
    /// Median (bucket upper edge).
    pub p50: Duration,
    /// 95th percentile (bucket upper edge).
    pub p95: Duration,
    /// 99th percentile (bucket upper edge).
    pub p99: Duration,
}

/// Point-in-time statistics with derived rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// Served from the sharded truth store.
    pub truth_hits: u64,
    /// Served by joining an identical in-flight request.
    pub dedup_hits: u64,
    /// Resolved freshly.
    pub resolved: u64,
    /// Failed requests.
    pub errors: u64,
    /// Candidate-cache hits.
    pub cache_hits: u64,
    /// Candidate-cache misses.
    pub cache_misses: u64,
    /// Truths evicted from the sharded store (capacity or age). Sourced
    /// from [`ShardedTruthStore::evicted`](crate::ShardedTruthStore::evicted)
    /// by the owning service, so direct store-level evictions are never
    /// under-reported.
    pub truth_evictions: u64,
    /// Per-key OD entries evicted from the candidate cache.
    pub cache_od_evictions: u64,
    /// Coalesced batches served
    /// ([`RouteService::serve_coalesced`](crate::RouteService::serve_coalesced)
    /// calls).
    pub batches: u64,
    /// Requests that arrived inside a coalesced batch.
    pub batched_requests: u64,
    /// Largest coalesced batch observed (high-water mark; `absorb`
    /// merges by maximum).
    pub batch_max: u64,
    /// Fused candidate-generation calls (one call mines several ODs).
    pub fused_minings: u64,
    /// OD pairs mined through fused calls. Every fused OD also counts
    /// in `cache_misses`, so the fused share of all mining is
    /// [`StatsSnapshot::fused_mining_ratio`].
    pub fused_mined_ods: u64,
    /// Mining-artifact cache hits: a mining pass reused an all-day
    /// origin expansion (MPR tree, LDR locality scan and memos) that an
    /// earlier batch — possibly in a different time bucket — already
    /// produced.
    pub artifact_hits: u64,
    /// Mining-artifact cache misses: the origin expansion was computed
    /// (and, when the cache is enabled, stored for later batches).
    pub artifact_misses: u64,
    /// Origin artifacts dropped from the cache: LRU capacity, per-cell
    /// aliasing bounds, or a `World` mining-state generation bump
    /// invalidating stale entries.
    pub artifact_evictions: u64,
    /// Crowd questions answered across all crowd-resolved requests.
    pub crowd_questions: u64,
    /// Crowd worker participations across all crowd-resolved requests.
    pub crowd_workers: u64,
    /// Worker reservations refused at the shared crowd desk's
    /// `max_outstanding` cap (contention between concurrent resolvers).
    pub crowd_quota_rejections: u64,
    /// Requests whose crowd task was entirely quota-starved and degraded
    /// to the machine fallback.
    pub crowd_starved: u64,
    /// Per-stage sojourn attribution (indexed by
    /// [`Stage::index`](crate::Stage::index); all-zero when the service
    /// does not trace). Stage spans are disjoint, so their totals sum to
    /// at most the end-to-end service time.
    pub stages: [StageSummary; Stage::COUNT],
    /// Per-site lock contention (indexed by
    /// [`LockSite::index`](crate::LockSite::index)), filled by the
    /// owning service/platform from the primitives' own counters.
    pub locks: [LockSummary; LockSite::COUNT],
    /// Service-time distribution.
    pub latency: LatencySummary,
}

impl StatsSnapshot {
    /// Truth-store hit rate over all requests.
    pub fn truth_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.truth_hits as f64 / self.requests as f64
        }
    }

    /// Candidate-cache hit rate over resolution-path requests.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mining-artifact cache hit rate over all origin-artifact lookups
    /// (how often a batch skipped the all-day origin expansion because a
    /// recent batch already produced it).
    pub fn artifact_hit_rate(&self) -> f64 {
        let total = self.artifact_hits + self.artifact_misses;
        if total == 0 {
            0.0
        } else {
            self.artifact_hits as f64 / total as f64
        }
    }

    /// Share of mined ODs that went through a fused multi-OD mining
    /// call instead of a standalone generator pass.
    pub fn fused_mining_ratio(&self) -> f64 {
        if self.cache_misses == 0 {
            0.0
        } else {
            self.fused_mined_ods as f64 / self.cache_misses as f64
        }
    }

    /// Mining passes per request: standalone generator calls plus fused
    /// calls (a fused call covers many ODs but is one pass of the
    /// expensive shared work). The number batching exists to shrink.
    pub fn mining_runs_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        // Saturate: a snapshot racing a mid-batch `record_fused_mining`
        // (independent relaxed counters) may transiently observe more
        // fused ODs than cache misses.
        let runs = self.cache_misses.saturating_sub(self.fused_mined_ods) + self.fused_minings;
        runs as f64 / self.requests as f64
    }

    /// The accounting invariant: every request was served from exactly
    /// one of {truth store, dedup, fresh resolution, error}; batch and
    /// fused-mining counters must stay within their envelopes (batched
    /// requests are a subset of all requests, fused-mined ODs a subset
    /// of all minings, and the high-water mark cannot exceed the batched
    /// total unless nothing was batched); and every artifact eviction
    /// removed an entry some earlier miss inserted, so evictions can
    /// never outrun misses.
    ///
    /// Trace envelopes (vacuous when nothing traces, and safe under
    /// aggregates mixing traced and untraced cities because both sides
    /// of each bound are trace-gated or only the smaller side is): a
    /// commit span follows a resolve span, every resolve span belongs
    /// to a fresh resolution or a failed one, and every mining span is
    /// a candidate-cache miss.
    pub fn is_consistent(&self) -> bool {
        let resolve_spans = self.stages[Stage::ResolveMachine.index()].count
            + self.stages[Stage::ResolveCrowd.index()].count;
        self.truth_hits + self.dedup_hits + self.resolved + self.errors == self.requests
            && self.batched_requests <= self.requests
            && self.batch_max <= self.batched_requests
            && self.batches <= self.batched_requests
            && self.fused_mined_ods <= self.cache_misses
            && self.fused_minings <= self.fused_mined_ods
            && self.artifact_evictions <= self.artifact_misses
            && self.stages[Stage::Commit.index()].count <= resolve_spans
            && resolve_spans <= self.resolved + self.errors
            && self.stages[Stage::Mining.index()].count <= self.cache_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_account() {
        let s = ServiceStats::new();
        for _ in 0..5 {
            s.inc_requests();
        }
        s.inc_truth_hits();
        s.inc_truth_hits();
        s.inc_dedup_hits();
        s.inc_resolved();
        s.inc_errors();
        s.inc_cache_hits();
        s.inc_cache_misses();
        let snap = s.snapshot();
        assert_eq!(snap.requests, 5);
        assert!(snap.is_consistent());
        assert!((snap.truth_hit_rate() - 0.4).abs() < 1e-12);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_orders_sensibly() {
        let s = ServiceStats::new();
        for us in [10u64, 20, 30, 40, 50, 1000] {
            s.record_latency(Duration::from_micros(us));
        }
        let l = s.snapshot().latency;
        assert_eq!(l.count, 6);
        assert_eq!(l.min, Duration::from_micros(10));
        assert_eq!(l.max, Duration::from_micros(1000));
        assert!(l.min <= l.mean && l.mean <= l.max);
        assert!(l.p50 <= l.p95 && l.p95 <= l.p99);
        // p50 upper edge must cover the median but not the outlier.
        assert!(l.p50 >= Duration::from_micros(30));
        assert!(l.p50 < Duration::from_micros(1000));
    }

    #[test]
    fn empty_stats_are_consistent() {
        let snap = ServiceStats::new().snapshot();
        assert!(snap.is_consistent());
        assert_eq!(snap.truth_hit_rate(), 0.0);
        assert_eq!(snap.latency.count, 0);
        assert_eq!(snap.latency.min, Duration::ZERO);
    }

    #[test]
    fn absorb_merges_counters_and_latency_exactly() {
        let a = ServiceStats::new();
        let b = ServiceStats::new();
        for _ in 0..3 {
            a.inc_requests();
            a.inc_truth_hits();
            a.record_latency(Duration::from_micros(10));
        }
        for _ in 0..2 {
            b.inc_requests();
            b.inc_resolved();
            b.record_latency(Duration::from_micros(5000));
        }
        b.inc_cache_od_evictions();
        let total = ServiceStats::new();
        total.absorb(&a);
        total.absorb(&b);
        let snap = total.snapshot();
        assert_eq!(snap.requests, 5);
        assert_eq!(snap.truth_hits, 3);
        assert_eq!(snap.resolved, 2);
        assert_eq!(snap.cache_od_evictions, 1);
        assert!(snap.is_consistent());
        assert_eq!(snap.latency.count, 5);
        assert_eq!(snap.latency.min, Duration::from_micros(10));
        assert_eq!(snap.latency.max, Duration::from_micros(5000));
        // Merged histogram: p50 comes from the fast city's bucket, not
        // an average of per-city percentiles.
        assert!(snap.latency.p50 < Duration::from_micros(5000));
    }

    #[test]
    fn batch_counters_accumulate_and_absorb_with_max_merge() {
        let a = ServiceStats::new();
        let b = ServiceStats::new();
        a.record_batch(4);
        a.record_batch(2);
        a.record_fused_mining(3);
        b.record_batch(7);
        b.record_fused_mining(2);
        // Back the envelopes: requests and cache misses covering them.
        for _ in 0..13 {
            a.inc_requests();
            a.inc_resolved();
        }
        for _ in 0..7 {
            b.inc_requests();
            b.inc_resolved();
        }
        for _ in 0..5 {
            a.inc_cache_misses();
            b.inc_cache_misses();
        }
        let total = ServiceStats::new();
        total.absorb(&a);
        total.absorb(&b);
        let snap = total.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batched_requests, 13);
        assert_eq!(snap.batch_max, 7, "high-water merges by max, not sum");
        assert_eq!(snap.fused_minings, 2);
        assert_eq!(snap.fused_mined_ods, 5);
        assert!((snap.fused_mining_ratio() - 0.5).abs() < 1e-12);
        // 10 minings, 5 fused into 2 passes: (10 - 5) + 2 = 7 runs.
        assert!((snap.mining_runs_per_request() - 7.0 / 20.0).abs() < 1e-12);
        assert!(snap.is_consistent());
    }

    #[test]
    fn artifact_counters_accumulate_absorb_and_bound_evictions() {
        let a = ServiceStats::new();
        let b = ServiceStats::new();
        a.inc_artifact_misses();
        a.inc_artifact_misses();
        a.inc_artifact_hits();
        a.add_artifact_evictions(2);
        b.inc_artifact_misses();
        b.inc_artifact_hits();
        b.inc_artifact_hits();
        let total = ServiceStats::new();
        total.absorb(&a);
        total.absorb(&b);
        let snap = total.snapshot();
        assert_eq!(snap.artifact_hits, 3);
        assert_eq!(snap.artifact_misses, 3);
        assert_eq!(snap.artifact_evictions, 2);
        assert!((snap.artifact_hit_rate() - 0.5).abs() < 1e-12);
        assert!(snap.is_consistent());
        // Evictions outrunning misses is a books-keeping bug.
        let broken = ServiceStats::new();
        broken.add_artifact_evictions(1);
        assert!(!broken.snapshot().is_consistent());
    }

    #[test]
    fn crowd_costs_accumulate_and_absorb() {
        use crate::resolver::CrowdCost;
        let a = ServiceStats::new();
        a.record_crowd(CrowdCost {
            questions: 7,
            workers: 3,
            quota_rejections: 2,
            starved: false,
        });
        a.record_crowd(CrowdCost {
            questions: 0,
            workers: 0,
            quota_rejections: 9,
            starved: true,
        });
        let total = ServiceStats::new();
        total.absorb(&a);
        let snap = total.snapshot();
        assert_eq!(snap.crowd_questions, 7);
        assert_eq!(snap.crowd_workers, 3);
        assert_eq!(snap.crowd_quota_rejections, 11);
        assert_eq!(snap.crowd_starved, 1);
    }

    #[test]
    fn stage_histograms_accumulate_absorb_and_summarise() {
        let a = ServiceStats::new();
        let b = ServiceStats::new();
        for us in [10u64, 20, 40] {
            a.record_stage(Stage::Mining, us * 1000);
        }
        a.record_stage(Stage::Commit, 2_000);
        b.record_stage(Stage::Mining, 5_000_000);
        // Back the envelopes: minings need cache misses, commits need
        // resolve spans, resolve spans need resolutions.
        for _ in 0..4 {
            a.inc_cache_misses();
            b.inc_cache_misses();
        }
        a.record_stage(Stage::ResolveMachine, 1_000);
        a.inc_requests();
        a.inc_resolved();
        let total = ServiceStats::new();
        total.absorb(&a);
        total.absorb(&b);
        let snap = total.snapshot();
        let mining = snap.stages[Stage::Mining.index()];
        assert_eq!(mining.count, 4, "bucket sums are the stage count");
        assert_eq!(mining.total, Duration::from_micros(10 + 20 + 40 + 5000));
        assert_eq!(mining.max, Duration::from_micros(5000));
        assert!(mining.p50 <= mining.p95, "{mining:?}");
        assert!(mining.p95 >= Duration::from_micros(5000) / 2, "{mining:?}");
        assert_eq!(snap.stages[Stage::Commit.index()].count, 1);
        assert_eq!(
            snap.stages[Stage::QueueWait.index()],
            StageSummary::default()
        );
        assert!(snap.is_consistent(), "{snap:?}");
    }

    #[test]
    fn commit_spans_without_resolve_spans_break_consistency() {
        let s = ServiceStats::new();
        s.inc_requests();
        s.inc_resolved();
        s.record_stage(Stage::Commit, 500);
        assert!(
            !s.snapshot().is_consistent(),
            "a commit span must follow a resolve span"
        );
        s.record_stage(Stage::ResolveMachine, 500);
        assert!(s.snapshot().is_consistent());
    }

    #[test]
    fn resolve_spans_must_not_outrun_resolutions() {
        let s = ServiceStats::new();
        s.record_stage(Stage::ResolveCrowd, 500);
        assert!(
            !s.snapshot().is_consistent(),
            "a resolve span needs a resolution (or error) to belong to"
        );
        s.inc_requests();
        s.inc_errors();
        assert!(s.snapshot().is_consistent());
    }

    #[test]
    fn mining_spans_must_be_cache_misses() {
        let s = ServiceStats::new();
        s.record_stage(Stage::Mining, 500);
        assert!(!s.snapshot().is_consistent());
        s.inc_cache_misses();
        assert!(s.snapshot().is_consistent());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = ServiceStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        s.inc_requests();
                        s.inc_resolved();
                        s.record_latency(Duration::from_micros(7));
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.requests, 4000);
        assert_eq!(snap.resolved, 4000);
        assert_eq!(snap.latency.count, 4000);
        assert!(snap.is_consistent());
    }
}
