//! Owned serving worlds and city identities.
//!
//! The paper's pipeline borrows its world (`&RoadGraph`, `&[Trip]`),
//! which pins every service object to one stack frame. A resident
//! multi-city platform needs worlds it can *own* and share: [`World`]
//! bundles a city's road graph, its historical trips and the pre-built
//! mining state (transfer network + miner parameters) behind `Arc`s, so
//! an `Arc<World>` is a self-contained, `'static`, cheaply clonable
//! handle that worker threads, services and resolvers can all hold
//! simultaneously.
//!
//! [`CityId`] names a world registered on a
//! [`Platform`](crate::Platform); requests carry it so the platform can
//! route each one to the right per-city service instance.

#[cfg(doc)]
use cp_mining::CandidateGenerator;
use cp_mining::TransferNetwork;
use cp_mining::{
    generate_candidates, generate_candidates_batch, generate_candidates_multi, CandidateRoute,
    LdrParams, MfpParams, MprParams, OriginArtifacts,
};
use cp_roadnet::{NodeId, RoadGraph};
use cp_traj::{TimeOfDay, Trip};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a city registered on a [`Platform`](crate::Platform).
///
/// Ids are dense registration indexes (`0, 1, 2, …` in registration
/// order). A standalone [`RouteService`](crate::RouteService) serves
/// whatever requests it is handed and never inspects the city field;
/// [`CityId::LOCAL`] is the conventional value for single-city use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CityId(pub u32);

impl CityId {
    /// The conventional id for single-city (platform-free) requests.
    pub const LOCAL: CityId = CityId(0);

    /// The dense registration index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "city#{}", self.0)
    }
}

/// One city's complete, self-owned serving world: road graph, trip
/// history and pre-built candidate-mining state.
///
/// Construction aggregates the all-day transfer network once (the
/// expensive part of candidate mining), exactly like
/// [`CandidateGenerator::new`]; afterwards
/// [`World::candidates`] is a pure function of the request. `World` has
/// no lifetime parameters — wrap it in an `Arc` and share it freely.
pub struct World {
    graph: Arc<RoadGraph>,
    trips: Arc<Vec<Trip>>,
    transfer: Arc<TransferNetwork>,
    /// MPR parameters.
    pub mpr: MprParams,
    /// MFP parameters.
    pub mfp: MfpParams,
    /// LDR parameters.
    pub ldr: LdrParams,
    /// Mining-state generation (see [`World::generation`]).
    generation: AtomicU64,
}

impl World {
    /// Builds a world from owned parts (aggregates the transfer network
    /// once).
    pub fn new(graph: RoadGraph, trips: Vec<Trip>) -> Self {
        Self::from_arcs(Arc::new(graph), Arc::new(trips))
    }

    /// Builds a world from already-shared parts without cloning them.
    pub fn from_arcs(graph: Arc<RoadGraph>, trips: Arc<Vec<Trip>>) -> Self {
        let transfer = Arc::new(TransferNetwork::build(&graph, &trips, None));
        World {
            graph,
            trips,
            transfer,
            mpr: MprParams::default(),
            mfp: MfpParams::default(),
            ldr: LdrParams::default(),
            generation: AtomicU64::new(0),
        }
    }

    /// The mining-state generation: a version counter every derived
    /// mining cache (the serving layer's
    /// [`MiningArtifactCache`](crate::MiningArtifactCache), notably)
    /// tags its entries with. It starts at 0 and only moves via
    /// [`World::bump_generation`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Advances the mining-state generation, invalidating every cached
    /// artifact tagged with an older one. Call after mutating anything
    /// candidate mining reads (miner parameters, or — once worlds learn
    /// to ingest new trips — the trip history / transfer network), so
    /// caches re-derive instead of serving stale expansions. Returns the
    /// new generation.
    pub fn bump_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The road graph.
    pub fn graph(&self) -> &RoadGraph {
        &self.graph
    }

    /// A shared handle to the road graph (for resolvers that must own
    /// their world view, e.g. on a resident worker pool).
    pub fn graph_arc(&self) -> Arc<RoadGraph> {
        Arc::clone(&self.graph)
    }

    /// The historical trips.
    pub fn trips(&self) -> &[Trip] {
        &self.trips
    }

    /// A shared handle to the historical trips (for owned planners that
    /// must hold their world view, e.g. on a resident worker pool).
    pub fn trips_arc(&self) -> Arc<Vec<Trip>> {
        Arc::clone(&self.trips)
    }

    /// The pre-built all-day transfer network.
    pub fn transfer_network(&self) -> &TransferNetwork {
        &self.transfer
    }

    /// A shared handle to the pre-built transfer network, so per-worker
    /// crowd planners reuse this world's mining state instead of
    /// re-aggregating it.
    pub fn transfer_arc(&self) -> Arc<TransferNetwork> {
        Arc::clone(&self.transfer)
    }

    /// Produces one candidate route per available source — identical
    /// output to [`CandidateGenerator::candidates`] over the same graph,
    /// trips and parameters.
    pub fn candidates(
        &self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
    ) -> Vec<CandidateRoute> {
        generate_candidates(
            &self.graph,
            &self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            from,
            to,
            departure,
        )
    }

    /// Produces candidate sets for a batch of OD queries sharing a
    /// departure time with one fused mining pass (the expensive
    /// single-source work — MFP's period aggregation, MPR's popularity
    /// expansion, LDR's locality scans — runs once per origin group
    /// instead of once per query). `out[i]` is byte-identical to
    /// [`World::candidates`] over `queries[i]`; see
    /// [`generate_candidates_batch`].
    pub fn candidates_batch(
        &self,
        queries: &[(NodeId, NodeId)],
        departure: TimeOfDay,
    ) -> Vec<Vec<CandidateRoute>> {
        generate_candidates_batch(
            &self.graph,
            &self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            queries,
            departure,
        )
    }

    /// Produces candidate sets for OD queries spanning several
    /// departure buckets — all-day artifacts once per origin, one MFP
    /// aggregation per distinct departure. `out[i]` is byte-identical
    /// to [`World::candidates`] over `queries[i]`; see
    /// [`generate_candidates_multi`].
    pub fn candidates_multi(
        &self,
        queries: &[(NodeId, NodeId, TimeOfDay)],
    ) -> Vec<Vec<CandidateRoute>> {
        generate_candidates_multi(
            &self.graph,
            &self.trips,
            &self.transfer,
            &self.mpr,
            &self.mfp,
            &self.ldr,
            queries,
        )
    }

    /// Builds the time-invariant mining artifacts for one origin (full
    /// MPR popularity expansion + LDR locality scan, with lazy habit /
    /// fastest / per-period memos) — the expensive expansion the
    /// serving layer's artifact cache shares across buckets and
    /// batches.
    pub fn origin_artifacts(&self, origin: NodeId) -> OriginArtifacts {
        OriginArtifacts::build(
            &self.graph,
            &self.trips,
            &self.transfer,
            &self.mpr,
            &self.ldr,
            origin,
        )
    }

    /// Builds the period-filtered transfer network for `departure`
    /// under this world's MFP half-width — the departure-dependent,
    /// origin-independent half of candidate mining.
    pub fn period_network(&self, departure: TimeOfDay) -> TransferNetwork {
        TransferNetwork::build(
            &self.graph,
            &self.trips,
            Some((departure, self.mfp.period_half_width)),
        )
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.graph.node_count())
            .field("trips", &self.trips.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_mining::CandidateGenerator;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    #[test]
    fn world_candidates_match_borrowed_generator() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let generator = CandidateGenerator::new(&city.graph, &trips.trips);
        let world = World::new(city.graph.clone(), trips.trips.clone());
        let dep = TimeOfDay::from_hours(8.0);
        for (a, b) in [(0u32, 59u32), (5, 54), (12, 47)] {
            let borrowed = generator.candidates(NodeId(a), NodeId(b), dep);
            let owned = world.candidates(NodeId(a), NodeId(b), dep);
            assert_eq!(borrowed.len(), owned.len());
            for (x, y) in borrowed.iter().zip(&owned) {
                assert_eq!(x.source, y.source);
                assert_eq!(x.path, y.path);
            }
        }
    }

    #[test]
    fn world_batch_candidates_match_per_request() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let world = World::new(city.graph, trips.trips);
        let dep = TimeOfDay::from_hours(8.5);
        let queries = vec![
            (NodeId(0), NodeId(59)),
            (NodeId(0), NodeId(31)),
            (NodeId(5), NodeId(54)),
            (NodeId(0), NodeId(59)),
        ];
        let fused = world.candidates_batch(&queries, dep);
        for (&(a, b), got) in queries.iter().zip(&fused) {
            let want = world.candidates(a, b, dep);
            assert_eq!(got.len(), want.len());
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.source, y.source);
                assert_eq!(x.path, y.path);
            }
        }
    }

    #[test]
    fn generation_starts_at_zero_and_bumps_monotonically() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let world = World::new(city.graph, trips.trips);
        assert_eq!(world.generation(), 0);
        assert_eq!(world.bump_generation(), 1);
        assert_eq!(world.bump_generation(), 2);
        assert_eq!(world.generation(), 2);
    }

    #[test]
    fn world_artifacts_answer_like_world_candidates() {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        let world = World::new(city.graph, trips.trips);
        let dep = TimeOfDay::from_hours(8.0);
        let art = world.origin_artifacts(NodeId(0));
        let period = world.period_network(dep);
        for b in [59u32, 31, 47] {
            let got = cp_mining::candidates_from_artifacts(
                world.graph(),
                world.trips(),
                &world.mfp,
                &world.ldr,
                &art,
                &period,
                NodeId(b),
                dep,
            );
            let want = world.candidates(NodeId(0), NodeId(b), dep);
            assert_eq!(got.len(), want.len());
            for (x, y) in got.iter().zip(&want) {
                assert_eq!(x.source, y.source);
                assert_eq!(x.path, y.path);
            }
        }
    }

    #[test]
    fn world_is_send_sync_and_static() {
        fn assert_shareable<T: Send + Sync + 'static>() {}
        assert_shareable::<World>();
        assert_shareable::<CityId>();
    }

    #[test]
    fn city_id_display_and_index() {
        assert_eq!(CityId(3).to_string(), "city#3");
        assert_eq!(CityId(3).index(), 3);
        assert_eq!(CityId::LOCAL, CityId(0));
    }
}
