//! The sharded, grid-indexed truth store.
//!
//! One shared truth database is the contention point of a concurrent
//! CrowdPlanner deployment: every request starts with a reuse lookup and
//! most end with an insert. [`ShardedTruthStore`] splits the store into
//! `N` independent shards, each a grid-indexed [`TruthStore`] behind its
//! own `RwLock`:
//!
//! * entries are assigned to shards by a hash of their **origin grid
//!   cell**, so the entries relevant to one lookup cluster into few
//!   shards;
//! * lookups take **read** locks only — concurrent readers never block
//!   each other, and writers only block readers of the same shard;
//! * a lookup probes exactly the shards owning cells within the reuse
//!   radius of the query origin (1 shard in the common `radius ≤ cell`
//!   case), merges per-shard best matches, and breaks distance ties by
//!   **global insertion order** (a shared atomic sequence), preserving
//!   the sequential store's semantics.

use crate::trace::LockStats;
use cp_core::{Config, TruthEntry, TruthStore, DEFAULT_BUCKET_S, DEFAULT_CELL_M};
use cp_roadnet::{NodeId, Point, RoadGraph};
use cp_traj::TimeOfDay;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use std::time::{Duration, Instant};

/// One shard: a grid-indexed store plus, parallel to its dense entry
/// ids, the global sequence number of each entry (for cross-shard
/// tie-breaks) and its insertion instant (for age-based eviction).
#[derive(Debug)]
struct Shard {
    store: TruthStore,
    seqs: Vec<u64>,
    inserted: Vec<Instant>,
}

impl Shard {
    /// Evicts the `k` oldest entries, keeping the parallel vectors in
    /// sync with the store's re-densified ids.
    fn evict_oldest(&mut self, k: usize) -> usize {
        let k = self.store.evict_oldest(k);
        self.seqs.drain(..k);
        self.inserted.drain(..k);
        k
    }
}

/// A truth database sharded by origin grid cell, safe to share across
/// worker threads (`&self` everywhere).
#[derive(Debug)]
pub struct ShardedTruthStore {
    shards: Vec<RwLock<Shard>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    /// Spatial cell edge, metres (also each shard's grid cell).
    cell_m: f64,
    /// Global insertion sequence for deterministic tie-breaks.
    seq: AtomicU64,
    /// Maximum entries per shard (0 = unbounded). When an insert would
    /// exceed it, the shard batch-evicts its oldest eighth.
    per_shard_cap: usize,
    /// Total entries evicted so far (capacity + age).
    evicted: AtomicU64,
    /// Shard-lock contention counters (pooled across shards; disabled
    /// unless the owning service traces).
    locks: LockStats,
}

/// Mixes a cell coordinate into a shard index (SplitMix64 finaliser —
/// adjacent cells land on unrelated shards).
fn shard_hash(cx: i32, cy: i32) -> u64 {
    let mut z = ((cx as u64) << 32) ^ (cy as u64 & 0xFFFF_FFFF);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardedTruthStore {
    /// Creates a store with `shards` shards (rounded up to a power of
    /// two) and the given grid geometry.
    pub fn new(shards: usize, cell_m: f64, bucket_s: f64) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedTruthStore {
            shards: (0..n)
                .map(|_| {
                    RwLock::new(Shard {
                        store: TruthStore::with_geometry(cell_m, bucket_s),
                        seqs: Vec::new(),
                        inserted: Vec::new(),
                    })
                })
                .collect(),
            mask: n - 1,
            cell_m,
            seq: AtomicU64::new(0),
            per_shard_cap: 0,
            evicted: AtomicU64::new(0),
            locks: LockStats::new(),
        }
    }

    /// Shard-lock contention counters (reads and writes pooled across
    /// all shards). Disabled by default; the owning service enables
    /// them when it traces.
    pub fn lock_stats(&self) -> &LockStats {
        &self.locks
    }

    /// Bounds every shard to at most `cap` entries (0 = unbounded).
    /// When a full shard takes an insert it batch-evicts its oldest
    /// eighth (at least one entry), so the amortised insert cost stays
    /// O(1) and the store never exceeds `cap × shard_count` entries.
    pub fn with_per_shard_cap(mut self, cap: usize) -> Self {
        self.per_shard_cap = cap;
        self
    }

    /// The configured per-shard entry cap (0 = unbounded).
    pub fn per_shard_cap(&self) -> usize {
        self.per_shard_cap
    }

    /// Total entries evicted so far (capacity + age eviction).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Creates a store with default geometry (300 m cells, 2 h buckets).
    pub fn with_shards(shards: usize) -> Self {
        Self::new(shards, DEFAULT_CELL_M, DEFAULT_BUCKET_S)
    }

    /// Number of shards (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn cell_of(&self, p: Point) -> (i32, i32) {
        // Must match the per-shard grid geometry exactly, or shard
        // routing and in-shard probing would diverge.
        cp_core::truth::grid_cell(p, self.cell_m)
    }

    fn shard_of_cell(&self, cell: (i32, i32)) -> usize {
        (shard_hash(cell.0, cell.1) as usize) & self.mask
    }

    /// Total stored truths across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").store.len())
            .sum()
    }

    /// Whether no truths are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a verified truth (write-locks exactly one shard).
    /// Returns how many old entries were evicted to respect the
    /// per-shard cap (0 when unbounded or below capacity).
    pub fn insert(&self, graph: &RoadGraph, entry: TruthEntry) -> usize {
        self.insert_tracked(graph, entry).1
    }

    /// [`ShardedTruthStore::insert`] that also returns the entry's
    /// global sequence number — the identity the durability log records
    /// so a replayed insert lands with the same tie-break order.
    pub fn insert_tracked(&self, graph: &RoadGraph, entry: TruthEntry) -> (u64, usize) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        (seq, self.insert_at_seq(graph, entry, seq))
    }

    /// Inserts a truth under a **caller-chosen** sequence number
    /// (recovery/replay re-applying logged entries). Advances the
    /// internal sequence counter past `seq` so commits issued after
    /// recovery keep the global total order.
    pub fn insert_with_seq(&self, graph: &RoadGraph, entry: TruthEntry, seq: u64) -> usize {
        self.seq.fetch_max(seq + 1, Ordering::Relaxed);
        self.insert_at_seq(graph, entry, seq)
    }

    fn insert_at_seq(&self, graph: &RoadGraph, entry: TruthEntry, seq: u64) -> usize {
        let from_pos = graph.position(entry.from);
        let to_pos = graph.position(entry.to);
        let shard_idx = self.shard_of_cell(self.cell_of(from_pos));
        let mut shard = self.locks.write(&self.shards[shard_idx]);
        let mut evicted = 0;
        if self.per_shard_cap > 0 && shard.store.len() >= self.per_shard_cap {
            // Batch-evict an eighth so the O(remaining) re-index is paid
            // once per batch, not on every insert at capacity.
            evicted = shard.evict_oldest((self.per_shard_cap / 8).max(1));
            self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        shard.store.insert_at(from_pos, to_pos, entry);
        shard.seqs.push(seq);
        shard.inserted.push(Instant::now());
        evicted
    }

    /// The sequence number the next insert will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Ensures the next assigned sequence number is at least `floor`
    /// (recovery seeds this from a snapshot's recorded counter, which
    /// can be ahead of the highest surviving entry when later entries
    /// were evicted before the snapshot).
    pub fn seed_seq(&self, floor: u64) {
        self.seq.fetch_max(floor, Ordering::Relaxed);
    }

    /// Copies one shard's `(seq, entry)` pairs under a brief read lock
    /// (insertion order within the shard). The snapshot writer streams
    /// shard by shard so no lock is held across file I/O.
    pub fn export_shard(&self, shard_idx: usize) -> Vec<(u64, TruthEntry)> {
        let shard = self.locks.read(&self.shards[shard_idx]);
        shard
            .seqs
            .iter()
            .copied()
            .zip(shard.store.iter().cloned())
            .collect()
    }

    /// All `(seq, entry)` pairs across shards, sorted by sequence
    /// number — the canonical order two stores are compared in.
    pub fn export(&self) -> Vec<(u64, TruthEntry)> {
        let mut out = Vec::with_capacity(self.len());
        for idx in 0..self.shards.len() {
            out.extend(self.export_shard(idx));
        }
        out.sort_unstable_by_key(|(seq, _)| *seq);
        out
    }

    /// Evicts every entry inserted at least `max_age` ago, across all
    /// shards, and returns how many were removed (`Duration::ZERO`
    /// deterministically evicts everything — the comparison is
    /// inclusive, so coarse monotonic clocks cannot make the boundary
    /// flaky). Insertion instants are monotone within a shard, so the
    /// stale entries form a prefix and eviction is one batch per shard.
    /// Run this periodically (or when memory pressure demands) to age
    /// out stale truths.
    pub fn evict_older_than(&self, max_age: Duration) -> usize {
        let now = Instant::now();
        let mut total = 0;
        for shard in &self.shards {
            let mut shard = self.locks.write(shard);
            let stale = shard
                .inserted
                .partition_point(|&t| now.saturating_duration_since(t) >= max_age);
            if stale > 0 {
                total += shard.evict_oldest(stale);
            }
        }
        if total > 0 {
            self.evicted.fetch_add(total as u64, Ordering::Relaxed);
        }
        total
    }

    /// Looks up the truth matching the request within the configured
    /// reuse radius/window — the same semantics as
    /// [`TruthStore::lookup`], merged across shards (closest match wins;
    /// distance ties go to the earliest-inserted entry). Read-locks only
    /// the shards owning cells within the radius of the query origin.
    pub fn lookup(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
    ) -> Option<TruthEntry> {
        let fp = graph.position(from);
        let (ox, oy) = self.cell_of(fp);
        let r = (cfg.reuse_radius / self.cell_m).ceil() as i32;
        let side = (2 * r + 1) as usize;
        let n_cells = side * side;
        // Enumerate the origin cells within the radius with their owning
        // shards. The common case (radius ≤ cell) is a 3×3 neighbourhood,
        // which fits the stack buffers; pathological radius/cell ratios
        // spill to the heap.
        const STACK_CELLS: usize = 25;
        let mut cells_buf = [(0i32, 0i32); STACK_CELLS];
        let mut shards_buf = [0usize; STACK_CELLS];
        if n_cells > STACK_CELLS {
            let mut spill: Vec<((i32, i32), usize)> = Vec::with_capacity(n_cells);
            for cx in (ox - r)..=(ox + r) {
                for cy in (oy - r)..=(oy + r) {
                    spill.push(((cx, cy), self.shard_of_cell((cx, cy))));
                }
            }
            return self.lookup_spill(graph, from, to, departure, cfg, &spill);
        }
        let mut k = 0usize;
        for cx in (ox - r)..=(ox + r) {
            for cy in (oy - r)..=(oy + r) {
                cells_buf[k] = (cx, cy);
                shards_buf[k] = self.shard_of_cell((cx, cy));
                k += 1;
            }
        }
        let (cells, owners) = (&cells_buf[..n_cells], &shards_buf[..n_cells]);

        let mut best: Option<(f64, u64, TruthEntry)> = None;
        // Visit each distinct shard once, gathering its cells into a
        // stack buffer.
        let mut group = [(0i32, 0i32); STACK_CELLS];
        for (i, &s) in owners.iter().enumerate() {
            if owners[..i].contains(&s) {
                continue; // shard already visited
            }
            let mut g = 0usize;
            for (j, &cell) in cells.iter().enumerate() {
                if owners[j] == s {
                    group[g] = cell;
                    g += 1;
                }
            }
            self.merge_shard_best(graph, from, to, departure, cfg, s, &group[..g], &mut best);
        }
        best.map(|(_, _, e)| e)
    }

    /// Heap-path lookup for very large radius/cell ratios: cells already
    /// paired with their owning shards.
    fn lookup_spill(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
        cells: &[((i32, i32), usize)],
    ) -> Option<TruthEntry> {
        let mut sorted: Vec<((i32, i32), usize)> = cells.to_vec();
        sorted.sort_unstable_by_key(|&(_, s)| s);
        let mut best: Option<(f64, u64, TruthEntry)> = None;
        let mut i = 0usize;
        while i < sorted.len() {
            let s = sorted[i].1;
            let start = i;
            while i < sorted.len() && sorted[i].1 == s {
                i += 1;
            }
            let group: Vec<(i32, i32)> = sorted[start..i].iter().map(|&(c, _)| c).collect();
            self.merge_shard_best(graph, from, to, departure, cfg, s, &group, &mut best);
        }
        best.map(|(_, _, e)| e)
    }

    /// Folds one shard's best match (restricted to `group` cells) into
    /// the running cross-shard best, breaking distance ties by global
    /// insertion sequence.
    #[allow(clippy::too_many_arguments)]
    fn merge_shard_best(
        &self,
        graph: &RoadGraph,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        cfg: &Config,
        shard_idx: usize,
        group: &[(i32, i32)],
        best: &mut Option<(f64, u64, TruthEntry)>,
    ) {
        let shard = self.locks.read(&self.shards[shard_idx]);
        if let Some((d, id, entry)) = shard
            .store
            .lookup_scored_in_cells(graph, group, from, to, departure, cfg)
        {
            let seq = shard.seqs[id as usize];
            let better = match best {
                None => true,
                Some((bd, bseq, _)) => d < *bd || (d == *bd && seq < *bseq),
            };
            if better {
                *best = Some((d, seq, entry.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::routing::{dijkstra_path, distance_cost};
    use cp_roadnet::{generate_city, CityParams, Path};

    fn setup() -> (cp_roadnet::City, Config) {
        let city = generate_city(&CityParams::small(), 73).unwrap();
        (city, Config::default())
    }

    fn path(city: &cp_roadnet::City, a: u32, b: u32) -> Path {
        dijkstra_path(
            &city.graph,
            NodeId(a),
            NodeId(b),
            distance_cost(&city.graph),
        )
        .unwrap()
    }

    fn entry(city: &cp_roadnet::City, a: u32, b: u32, h: f64) -> TruthEntry {
        TruthEntry {
            from: NodeId(a),
            to: NodeId(b),
            departure: TimeOfDay::from_hours(h),
            path: path(city, a, b),
            confidence: 1.0,
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedTruthStore::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedTruthStore::with_shards(5).shard_count(), 8);
        assert_eq!(ShardedTruthStore::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn export_roundtrips_through_insert_with_seq() {
        let (city, _) = setup();
        let store = ShardedTruthStore::with_shards(4);
        for i in 0..20u32 {
            store.insert(&city.graph, entry(&city, i, i + 7, (i % 24) as f64));
        }
        let exported = store.export();
        let seqs: Vec<u64> = exported.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>());

        // Restoring into a different shard layout preserves identity
        // and re-seeds the sequence counter past the recovered entries.
        let restored = ShardedTruthStore::with_shards(8);
        for (seq, e) in &exported {
            restored.insert_with_seq(&city.graph, e.clone(), *seq);
        }
        let round = restored.export();
        assert_eq!(round.len(), exported.len());
        for ((sa, a), (sb, b)) in round.iter().zip(&exported) {
            assert_eq!(sa, sb);
            assert_eq!(a.path, b.path);
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.departure.0, b.departure.0);
            assert_eq!(a.confidence, b.confidence);
        }
        assert_eq!(restored.next_seq(), 20);
        let (seq, _) = restored.insert_tracked(&city.graph, entry(&city, 1, 5, 3.0));
        assert_eq!(seq, 20);

        // seed_seq only moves the counter forward.
        restored.seed_seq(5);
        assert_eq!(restored.next_seq(), 21);
        restored.seed_seq(100);
        assert_eq!(restored.next_seq(), 100);
    }

    #[test]
    fn agrees_with_sequential_store_on_every_query() {
        let (city, cfg) = setup();
        let sharded = ShardedTruthStore::with_shards(8);
        let mut sequential = TruthStore::new();
        let n = city.graph.node_count() as u32;
        // Deterministic pseudo-random inserts spread across the city.
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..300 {
            let a = (next() % n as u64) as u32;
            let mut b = (next() % n as u64) as u32;
            if a == b {
                b = (b + 1) % n;
            }
            let h = (next() % 24) as f64;
            let e = entry(&city, a, b, h);
            sharded.insert(&city.graph, e.clone());
            sequential.insert(&city.graph, e);
        }
        assert_eq!(sharded.len(), 300);
        for q in 0..200 {
            let a = NodeId((next() % n as u64) as u32);
            let b = NodeId((next() % n as u64) as u32);
            let t = TimeOfDay::from_hours((next() % 24) as f64);
            let got = sharded.lookup(&city.graph, a, b, t, &cfg);
            let want = sequential.lookup(&city.graph, a, b, t, &cfg);
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    assert_eq!(g.path, w.path, "query {q}: different entry");
                    assert_eq!(g.from, w.from);
                    assert_eq!(g.to, w.to);
                }
                (g, w) => panic!("query {q}: {} vs {}", g.is_some(), w.is_some()),
            }
        }
    }

    #[test]
    fn concurrent_insert_lookup_is_consistent() {
        let (city, cfg) = setup();
        let store = ShardedTruthStore::with_shards(8);
        let n = city.graph.node_count() as u32;
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                let city = &city;
                let cfg = &cfg;
                s.spawn(move || {
                    for i in 0..50u32 {
                        let a = (t * 50 + i) % n;
                        let b = (a + 7) % n;
                        if a == b {
                            continue;
                        }
                        store.insert(&city.graph, entry(city, a, b, (i % 24) as f64));
                        // Interleaved lookups must never panic or corrupt.
                        let _ = store.lookup(
                            &city.graph,
                            NodeId(a),
                            NodeId(b),
                            TimeOfDay::from_hours((i % 24) as f64),
                            cfg,
                        );
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
        // Every inserted truth must now be findable at its exact key.
        let hit = store.lookup(
            &city.graph,
            NodeId(0),
            NodeId(7),
            TimeOfDay::from_hours(0.0),
            &cfg,
        );
        assert!(hit.is_some());
    }

    #[test]
    fn per_shard_cap_bounds_growth_oldest_first() {
        let (city, cfg) = setup();
        // One shard so the cap applies to every insert.
        let store = ShardedTruthStore::with_shards(1).with_per_shard_cap(16);
        let n = city.graph.node_count() as u32;
        let mut total_evicted = 0usize;
        for i in 0..200u32 {
            let a = i % n;
            let b = (a + 9) % n;
            if a == b {
                continue;
            }
            total_evicted += store.insert(&city.graph, entry(&city, a, b, (i % 24) as f64));
        }
        assert!(store.len() <= 16, "cap must hold: {} entries", store.len());
        assert!(total_evicted > 0, "a 200-insert stream must evict");
        assert_eq!(store.evicted(), total_evicted as u64);
        // Oldest-first: the most recent insert must still be resolvable.
        let hit = store.lookup(
            &city.graph,
            NodeId(199 % n),
            NodeId((199 % n + 9) % n),
            TimeOfDay::from_hours((199 % 24) as f64),
            &cfg,
        );
        assert!(hit.is_some());
    }

    #[test]
    fn evict_older_than_ages_out_stale_prefixes() {
        let (city, cfg) = setup();
        let store = ShardedTruthStore::with_shards(4);
        for i in 0..30u32 {
            store.insert(&city.graph, entry(&city, i, (i + 7) % 60, 9.0));
        }
        assert_eq!(store.len(), 30);
        // Nothing is older than an hour.
        assert_eq!(store.evict_older_than(Duration::from_secs(3600)), 0);
        assert_eq!(store.len(), 30);
        // Everything is older than zero.
        let evicted = store.evict_older_than(Duration::ZERO);
        assert_eq!(evicted, 30);
        assert!(store.is_empty());
        assert_eq!(store.evicted(), 30);
        assert!(store
            .lookup(
                &city.graph,
                NodeId(0),
                NodeId(7),
                TimeOfDay::from_hours(9.0),
                &cfg
            )
            .is_none());
        // The store keeps working after a full purge.
        store.insert(&city.graph, entry(&city, 0, 7, 9.0));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ties_break_by_global_insertion_order() {
        let (city, cfg) = setup();
        // Two identical-key truths with different paths: the earlier
        // insert must win, wherever the shards put it.
        for shards in [1usize, 4, 16] {
            let store = ShardedTruthStore::with_shards(shards);
            let first = entry(&city, 0, 59, 9.0);
            let mut second = entry(&city, 0, 59, 9.0);
            second.path = path(&city, 0, 58);
            let first_path = first.path.clone();
            store.insert(&city.graph, first);
            store.insert(&city.graph, second);
            let hit = store
                .lookup(
                    &city.graph,
                    NodeId(0),
                    NodeId(59),
                    TimeOfDay::from_hours(9.0),
                    &cfg,
                )
                .unwrap();
            assert_eq!(hit.path, first_path, "shards = {shards}");
        }
    }
}
