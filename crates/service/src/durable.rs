//! Platform-side durability wiring over [`cp_durable`]: configuration,
//! the dedicated log-writer thread with group fsync, the per-city
//! commit sink, and the counters exported through
//! [`PlatformSnapshot`](crate::PlatformSnapshot) and
//! [`TraceReport`](crate::TraceReport).
//!
//! The hot-path contract: with durability **off** the serving path pays
//! one relaxed atomic load per commit (`OnceLock::get` returning
//! `None`) and allocates nothing. With durability **on**, commit sites
//! encode nothing inline — they `try_send` a pre-built [`Event`] into a
//! bounded channel and move on; the writer thread owns all file I/O and
//! fsync policy. A full queue sheds the event and counts it
//! (`events_shed`) instead of blocking a worker: durability degrades
//! under overload, serving does not.

use cp_crowd::AnswerRecord;
use cp_durable::{Event, FsyncPolicy, WalWriter};
use cp_roadnet::NodeId;
use cp_traj::TimeOfDay;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Durability configuration for [`PlatformConfig::durability`]
/// (`None` — the default — disables all of it).
///
/// [`PlatformConfig::durability`]: crate::PlatformConfig::durability
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments and the snapshot.
    pub dir: PathBuf,
    /// When the writer thread fsyncs (defaults to
    /// [`FsyncPolicy::Group`]: one fsync per drained batch).
    pub fsync: FsyncPolicy,
    /// Bounded depth of the commit-event channel; when full, events are
    /// shed and counted rather than blocking serving workers.
    pub queue_capacity: usize,
    /// When set (and a janitor runs), the janitor checkpoints — rotates
    /// the WAL, snapshots, truncates sealed segments — on this cadence.
    pub checkpoint_interval: Option<Duration>,
}

impl DurabilityConfig {
    /// Durability into `dir` with group fsync, a 4096-event queue, and
    /// no periodic checkpointing.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Group,
            queue_capacity: 4096,
            checkpoint_interval: None,
        }
    }

    /// Sets the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Sets the commit-event queue depth (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables periodic janitor checkpointing.
    pub fn with_checkpoint_interval(mut self, interval: Duration) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }
}

/// Point-in-time durability counters, exported in
/// [`PlatformSnapshot`](crate::PlatformSnapshot) and
/// [`TraceReport`](crate::TraceReport) (and `/stats` at the gateway).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilitySnapshot {
    /// Events appended to the WAL by the writer thread.
    pub events_logged: u64,
    /// Events dropped because the commit channel was full (durability
    /// shed load; serving did not block).
    pub events_shed: u64,
    /// Frame bytes appended to the WAL by this process.
    pub wal_bytes: u64,
    /// Writer-thread I/O failures (events lost to disk errors *after*
    /// the bounded retry budget was exhausted).
    pub io_errors: u64,
    /// Retry attempts the writer made after a transient append failure.
    pub write_retries: u64,
    /// Appends that failed at least once but succeeded within the retry
    /// budget (transient faults absorbed, nothing lost).
    pub writes_recovered: u64,
    /// Checkpoints (snapshot + truncation) completed.
    pub checkpoints: u64,
    /// WAL watermark of the last checkpoint: records below this
    /// sequence are folded into the snapshot.
    pub last_checkpoint_seq: u64,
    /// Time since the last checkpoint (`None` before the first).
    pub last_checkpoint_age: Option<Duration>,
}

/// Shared durability counters (writer thread + sinks + checkpointer).
#[derive(Debug, Default)]
pub(crate) struct DurableCounters {
    pub events_logged: AtomicU64,
    pub events_shed: AtomicU64,
    pub wal_bytes: AtomicU64,
    pub io_errors: AtomicU64,
    pub write_retries: AtomicU64,
    pub writes_recovered: AtomicU64,
    pub checkpoints: AtomicU64,
    pub last_checkpoint_seq: AtomicU64,
    pub last_checkpoint_at: Mutex<Option<Instant>>,
}

impl DurableCounters {
    pub(crate) fn snapshot(&self) -> DurabilitySnapshot {
        DurabilitySnapshot {
            events_logged: self.events_logged.load(Ordering::Relaxed),
            events_shed: self.events_shed.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            writes_recovered: self.writes_recovered.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_checkpoint_seq: self.last_checkpoint_seq.load(Ordering::Relaxed),
            last_checkpoint_age: self
                .last_checkpoint_at
                .lock()
                .expect("checkpoint clock poisoned")
                .map(|at| at.elapsed()),
        }
    }
}

/// Commands for the log-writer thread. Control commands carry an ack
/// channel so callers can wait for the write order to reach them.
pub(crate) enum Cmd {
    /// Append one event (the hot-path command).
    Event(Event),
    /// Seal the current segment and start the next; acks the new
    /// segment's `(first_seq, segment_index)` — the checkpoint
    /// watermark and the truncation cut.
    Rotate(SyncSender<(u64, u64)>),
    /// Flush + fsync everything sent before this command, then ack.
    Flush(SyncSender<()>),
    /// Final flush + fsync, then exit the thread.
    Stop,
}

/// The running durability machinery owned by the platform.
pub(crate) struct DurableRuntime {
    pub cfg: DurabilityConfig,
    pub tx: SyncSender<Cmd>,
    pub counters: Arc<DurableCounters>,
    pub writer: Mutex<Option<JoinHandle<()>>>,
}

impl DurableRuntime {
    /// Opens the WAL in `cfg.dir` and spawns the writer thread. An
    /// active chaos engine is threaded through so the writer can inject
    /// transient append faults into its own retry loop.
    pub(crate) fn start(
        cfg: DurabilityConfig,
        chaos: Option<Arc<crate::chaos::ChaosState>>,
    ) -> Result<DurableRuntime, cp_durable::DurableError> {
        let wal = WalWriter::open(&cfg.dir)?;
        let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
        let counters = Arc::new(DurableCounters::default());
        let thread_counters = Arc::clone(&counters);
        let fsync = cfg.fsync;
        let writer = std::thread::Builder::new()
            .name("cp-durable-writer".into())
            .spawn(move || writer_loop(wal, rx, fsync, &thread_counters, chaos.as_deref()))
            .expect("spawning the durability writer");
        Ok(DurableRuntime {
            cfg,
            tx,
            counters,
            writer: Mutex::new(Some(writer)),
        })
    }

    /// A commit sink for one city.
    pub(crate) fn sink(&self, city: u32) -> DurableSink {
        DurableSink {
            city,
            tx: self.tx.clone(),
            counters: Arc::clone(&self.counters),
        }
    }

    /// Seals the current WAL segment; returns the new segment's
    /// `(first_seq, segment_index)`, or `None` if the writer is gone.
    pub(crate) fn rotate(&self) -> Option<(u64, u64)> {
        let (ack_tx, ack_rx) = sync_channel(1);
        self.tx.send(Cmd::Rotate(ack_tx)).ok()?;
        ack_rx.recv().ok()
    }

    /// Blocks until every event sent before this call is flushed and
    /// fsynced.
    pub(crate) fn sync(&self) {
        let (ack_tx, ack_rx) = sync_channel(1);
        if self.tx.send(Cmd::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Stops and joins the writer thread (idempotent).
    pub(crate) fn stop_and_join(&self) {
        let _ = self.tx.send(Cmd::Stop);
        if let Some(handle) = self.writer.lock().expect("writer handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

/// Bounded retry budget for one append (first attempt included).
const APPEND_ATTEMPTS: u32 = 4;
/// Base backoff before the first retry; doubles per further retry.
const APPEND_BACKOFF: Duration = Duration::from_micros(50);

/// Appends one event with bounded retry-with-backoff: a transient
/// failure (real, or injected by the chaos engine) is retried up to
/// [`APPEND_ATTEMPTS`] times with doubling sleeps. Retries and
/// recoveries are counted; only an exhausted budget becomes an
/// `io_errors` loss.
fn append_with_retry(
    wal: &mut WalWriter,
    event: &Event,
    counters: &DurableCounters,
    chaos: Option<&crate::chaos::ChaosState>,
) -> bool {
    // An injected fault fails this many leading attempts (so the retry
    // loop, not just the error counter, is exercised).
    let injected_failures = chaos
        .filter(|c| c.roll(crate::chaos::FaultSite::DurabilityIo))
        .map_or(0, |c| c.durability_fail_attempts());
    for attempt in 0..APPEND_ATTEMPTS {
        if attempt > 0 {
            counters.write_retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(APPEND_BACKOFF * (1u32 << (attempt - 1).min(8)));
        }
        let ok = attempt >= injected_failures && wal.append(event).is_ok();
        if ok {
            if attempt > 0 {
                counters.writes_recovered.fetch_add(1, Ordering::Relaxed);
            }
            return true;
        }
    }
    counters.io_errors.fetch_add(1, Ordering::Relaxed);
    false
}

/// The writer thread: drain whatever is queued, append it all, then one
/// flush (+ fsync under [`FsyncPolicy::Group`]) for the whole batch —
/// group commit. I/O errors are counted, never propagated into serving.
fn writer_loop(
    mut wal: WalWriter,
    rx: Receiver<Cmd>,
    fsync: FsyncPolicy,
    counters: &DurableCounters,
    chaos: Option<&crate::chaos::ChaosState>,
) {
    let mut stopping = false;
    'outer: while !stopping {
        let first = match rx.recv() {
            Ok(cmd) => cmd,
            Err(_) => break 'outer, // every sender dropped
        };
        let mut pending = Some(first);
        let mut batch_dirty = false;
        loop {
            let cmd = match pending.take() {
                Some(cmd) => cmd,
                None => match rx.try_recv() {
                    Ok(cmd) => cmd,
                    Err(_) => break,
                },
            };
            match cmd {
                Cmd::Event(event) => {
                    if append_with_retry(&mut wal, &event, counters, chaos) {
                        counters.events_logged.fetch_add(1, Ordering::Relaxed);
                        batch_dirty = true;
                    }
                }
                Cmd::Rotate(ack) => {
                    // rotate() syncs the sealed segment internally.
                    match wal.rotate() {
                        Ok(first_seq) => {
                            let _ = ack.send((first_seq, wal.segment_index()));
                        }
                        Err(_) => {
                            counters.io_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = ack.send((wal.next_seq(), wal.segment_index()));
                        }
                    }
                    batch_dirty = false;
                }
                Cmd::Flush(ack) => {
                    if wal.sync().is_err() {
                        counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    batch_dirty = false;
                    let _ = ack.send(());
                }
                Cmd::Stop => {
                    stopping = true;
                    break;
                }
            }
        }
        if batch_dirty {
            let flushed = match fsync {
                FsyncPolicy::Group => wal.sync(),
                FsyncPolicy::Never => wal.flush(),
            };
            if flushed.is_err() {
                counters.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        counters
            .wal_bytes
            .store(wal.bytes_written(), Ordering::Relaxed);
    }
    // Clean exit always leaves the log durable, whatever the policy.
    if wal.sync().is_err() {
        counters.io_errors.fetch_add(1, Ordering::Relaxed);
    }
    counters
        .wal_bytes
        .store(wal.bytes_written(), Ordering::Relaxed);
}

/// Per-city commit sink installed on [`RouteService`] and (via the
/// answer observer) on the city's crowd desk. Non-blocking: a full
/// channel sheds the event and counts it.
///
/// [`RouteService`]: crate::RouteService
pub(crate) struct DurableSink {
    city: u32,
    tx: SyncSender<Cmd>,
    counters: Arc<DurableCounters>,
}

impl DurableSink {
    fn send(&self, event: Event) {
        if self.tx.try_send(Cmd::Event(event)).is_err() {
            self.counters.events_shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Logs one truth commit. The caller passes the path's edges
    /// (collected before the entry moved into the store).
    pub(crate) fn log_truth(
        &self,
        seq: u64,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        confidence: f64,
        edges: Vec<u32>,
    ) {
        self.send(Event::Truth {
            city: self.city,
            seq,
            from: from.0,
            to: to.0,
            departure: departure.0,
            confidence,
            edges,
        });
    }

    /// Logs one crowd answer (invoked by the desk's answer observer,
    /// under the desk's platform lock — generation order is channel
    /// order).
    pub(crate) fn log_answer(&self, record: &AnswerRecord) {
        self.send(Event::Answer {
            city: self.city,
            generation: record.generation,
            worker: record.worker.0,
            landmark: record.landmark.0,
            correct: record.correct,
            response_time: record.response_time,
        });
    }
}

impl std::fmt::Debug for DurableSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSink")
            .field("city", &self.city)
            .finish()
    }
}
