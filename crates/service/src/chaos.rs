//! Deterministic fault injection ("chaos") and the graceful-degradation
//! machinery it exercises.
//!
//! The platform's tests and benches historically ran against a *healthy*
//! world; the paper's crowdsourced operating regime is anything but —
//! workers no-show, answers trickle in, machines stall, disks hiccup.
//! This module makes those failures first-class, reproducible inputs:
//!
//! * [`ChaosConfig`] / [`FaultPlan`] — a seeded schedule of fault
//!   probabilities, hung off [`PlatformConfig::chaos`]. Off by default;
//!   the off path is **allocation- and clock-free** (a `None` check at
//!   every seam, guarded by the counting-allocator test in
//!   `tests/trace_overhead.rs`), mirroring `TraceConfig` and
//!   `DurabilityConfig`.
//! * Injection seams reuse the machinery built for *real* failures:
//!   crowd no-shows surface as [`QuotaExhausted`] refusals on the
//!   [`CrowdDesk`] reserve path (exactly how a saturated human worker
//!   already presents), injected resolver panics unwind into the worker
//!   pool's existing containment, and injected WAL write errors exercise
//!   the durability writer's bounded retry loop.
//! * Every draw is deterministic: site `s` keeps its own draw counter
//!   `n`, and the decision is a pure function `splitmix64(seed ⊕ salt(s)
//!   ⊕ mix(n)) < rate`. Two runs with the same seed, plan and per-site
//!   arrival orders inject the same schedule; thread interleaving only
//!   permutes *which* request absorbs a given fault, never how many
//!   faults a site injects per N draws.
//! * `CrowdBreaker` (crate-private; configure with [`BreakerConfig`]) —
//!   the per-city crowd circuit breaker: a sliding
//!   window of crowd outcomes trips to machine-only resolution when the
//!   starvation/no-show rate crosses a threshold, then half-open-probes
//!   its way back. Trips/probes/recoveries are counted and surfaced per
//!   city in [`PlatformSnapshot`] (and the gateway's `/stats` and
//!   `/healthz`).
//!
//! [`PlatformConfig::chaos`]: crate::platform::PlatformConfig
//! [`PlatformSnapshot`]: crate::platform::PlatformSnapshot

use crate::error::ServiceError;
use crate::resolver::{MachineResolver, Resolved, Resolver};
use cp_crowd::{
    AnswerTally, CrowdDesk, CrowdObserve, DeskStats, QuotaExhausted, WorkerId, WorkerPopulation,
};
use cp_mining::CandidateRoute;
use cp_roadnet::{Landmark, LandmarkId, NodeId};
use cp_traj::TimeOfDay;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Per-fault-class injection probabilities, each in `[0, 1]` per draw at
/// that class's seam. All-zero means "chaos plumbing active, nothing
/// injected" — useful for flipping faults on at runtime via
/// [`Platform::set_chaos_plan`](crate::platform::Platform::set_chaos_plan).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// A crowd worker silently never picks the task up: the desk's
    /// reserve is refused as if the worker's quota were exhausted.
    pub crowd_no_show: f64,
    /// A crowd answer arrives, but late: the reported response time is
    /// inflated by the configured penalty.
    pub crowd_slow_answer: f64,
    /// A platform worker dispatches slowly (short injected sleep).
    pub slow_worker: f64,
    /// A platform worker stalls (long injected sleep).
    pub stall_worker: f64,
    /// A resolver panics mid-request (contained by the worker pool; the
    /// ticket fails with `ResolverPanicked`, the pool survives).
    pub resolver_panic: f64,
    /// A durability WAL append transiently fails (recovered by the
    /// writer's bounded retry-with-backoff).
    pub durability_io_error: f64,
    /// The world's generation is bumped under load (invalidating the
    /// mining-artifact cache mid-stream).
    pub generation_churn: f64,
}

impl FaultPlan {
    /// No faults at any site.
    pub const fn none() -> Self {
        FaultPlan {
            crowd_no_show: 0.0,
            crowd_slow_answer: 0.0,
            slow_worker: 0.0,
            stall_worker: 0.0,
            resolver_panic: 0.0,
            durability_io_error: 0.0,
            generation_churn: 0.0,
        }
    }

    /// The standard bench/demo plan: 10 % crowd no-shows + 1 % slow
    /// workers — the regime the ISSUE's acceptance bar measures.
    pub const fn standard() -> Self {
        FaultPlan {
            crowd_no_show: 0.10,
            slow_worker: 0.01,
            ..FaultPlan::none()
        }
    }

    /// Every rate clamped into `[0, 1]` (NaN becomes 0).
    pub fn clamped(self) -> Self {
        let c = |r: f64| if r.is_nan() { 0.0 } else { r.clamp(0.0, 1.0) };
        FaultPlan {
            crowd_no_show: c(self.crowd_no_show),
            crowd_slow_answer: c(self.crowd_slow_answer),
            slow_worker: c(self.slow_worker),
            stall_worker: c(self.stall_worker),
            resolver_panic: c(self.resolver_panic),
            durability_io_error: c(self.durability_io_error),
            generation_churn: c(self.generation_churn),
        }
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::CrowdNoShow => self.crowd_no_show,
            FaultSite::CrowdSlowAnswer => self.crowd_slow_answer,
            FaultSite::SlowWorker => self.slow_worker,
            FaultSite::StallWorker => self.stall_worker,
            FaultSite::ResolverPanic => self.resolver_panic,
            FaultSite::DurabilityIo => self.durability_io_error,
            FaultSite::GenerationChurn => self.generation_churn,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Seeded, deterministic fault-injection configuration
/// (`PlatformConfig::chaos`). `None` (the default) keeps the platform's
/// serve path allocation- and clock-identical to a chaos-free build.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed for every per-site decision stream.
    pub seed: u64,
    /// Per-class injection rates.
    pub plan: FaultPlan,
    /// Injected sleep for a `slow_worker` fault.
    pub slow_worker_delay: Duration,
    /// Injected sleep for a `stall_worker` fault.
    pub stall_worker_delay: Duration,
    /// Seconds added to a `crowd_slow_answer` fault's reported response
    /// time.
    pub crowd_slow_penalty_s: f64,
    /// How many consecutive attempts an injected WAL fault fails before
    /// the writer's retry succeeds (≥ the retry budget means the write
    /// is lost and counted in `io_errors`).
    pub durability_fail_attempts: u32,
}

impl ChaosConfig {
    /// The standard plan ([`FaultPlan::standard`]) under `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            plan: FaultPlan::standard(),
            slow_worker_delay: Duration::from_micros(200),
            stall_worker_delay: Duration::from_millis(2),
            crowd_slow_penalty_s: 30.0,
            durability_fail_attempts: 1,
        }
    }

    /// Replaces the fault plan.
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// The injection seams, one deterministic decision stream each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Crowd reserve refused (worker never shows).
    CrowdNoShow,
    /// Crowd answer delayed.
    CrowdSlowAnswer,
    /// Worker dispatch slowed.
    SlowWorker,
    /// Worker dispatch stalled.
    StallWorker,
    /// Resolver panic.
    ResolverPanic,
    /// Durability WAL write error.
    DurabilityIo,
    /// World generation bump under load.
    GenerationChurn,
}

impl FaultSite {
    /// Number of fault sites.
    pub const COUNT: usize = 7;
    /// Every site, in index order.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::CrowdNoShow,
        FaultSite::CrowdSlowAnswer,
        FaultSite::SlowWorker,
        FaultSite::StallWorker,
        FaultSite::ResolverPanic,
        FaultSite::DurabilityIo,
        FaultSite::GenerationChurn,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultSite::CrowdNoShow => 0,
            FaultSite::CrowdSlowAnswer => 1,
            FaultSite::SlowWorker => 2,
            FaultSite::StallWorker => 3,
            FaultSite::ResolverPanic => 4,
            FaultSite::DurabilityIo => 5,
            FaultSite::GenerationChurn => 6,
        }
    }

    /// Stable site name (JSON keys, demo columns).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CrowdNoShow => "crowd_no_show",
            FaultSite::CrowdSlowAnswer => "crowd_slow_answer",
            FaultSite::SlowWorker => "slow_worker",
            FaultSite::StallWorker => "stall_worker",
            FaultSite::ResolverPanic => "resolver_panic",
            FaultSite::DurabilityIo => "durability_io_error",
            FaultSite::GenerationChurn => "generation_churn",
        }
    }

    /// Decorrelates the site's stream from every other site's.
    fn salt(self) -> u64 {
        // Arbitrary fixed odd constants; any distinct values work.
        const SALTS: [u64; FaultSite::COUNT] = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0xD6E8_FEB8_6659_FD93,
            0xA076_1D64_95FD_46F1,
            0xE703_7ED1_A0B4_28DB,
            0x8EBC_6AF0_9C88_C6E3,
        ];
        SALTS[self.index()]
    }
}

/// `splitmix64` finalizer: a high-quality 64-bit mix, `std`-only.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared runtime state of an active chaos engine: per-site rates
/// (retunable live), draw cursors and injected-fault counters. All
/// atomics — a draw is two relaxed atomic ops and a multiply, no locks.
pub(crate) struct ChaosState {
    seed: u64,
    slow_worker_delay: Duration,
    stall_worker_delay: Duration,
    crowd_slow_penalty_s: f64,
    durability_fail_attempts: u32,
    /// Per-site rate, stored as `f64::to_bits` for lock-free retuning.
    rates: [AtomicU64; FaultSite::COUNT],
    /// Per-site deterministic stream position.
    draws: [AtomicU64; FaultSite::COUNT],
    /// Per-site injected-fault counts.
    injected: [AtomicU64; FaultSite::COUNT],
}

impl ChaosState {
    pub(crate) fn new(cfg: &ChaosConfig) -> Self {
        let state = ChaosState {
            seed: cfg.seed,
            slow_worker_delay: cfg.slow_worker_delay,
            stall_worker_delay: cfg.stall_worker_delay,
            crowd_slow_penalty_s: cfg.crowd_slow_penalty_s,
            durability_fail_attempts: cfg.durability_fail_attempts.max(1),
            rates: std::array::from_fn(|_| AtomicU64::new(0)),
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        };
        state.set_plan(cfg.plan);
        state
    }

    /// Retunes every site's rate (live; takes effect on the next draw).
    pub(crate) fn set_plan(&self, plan: FaultPlan) {
        let plan = plan.clamped();
        for site in FaultSite::ALL {
            self.rates[site.index()].store(plan.rate(site).to_bits(), Relaxed);
        }
    }

    /// Draws the site's next deterministic decision; counts a hit.
    pub(crate) fn roll(&self, site: FaultSite) -> bool {
        let rate = f64::from_bits(self.rates[site.index()].load(Relaxed));
        if rate <= 0.0 {
            return false;
        }
        let n = self.draws[site.index()].fetch_add(1, Relaxed);
        let z = splitmix64(self.seed ^ site.salt() ^ n.wrapping_mul(0x2545_F491_4F6C_DD1D));
        // Top 53 bits → uniform in [0, 1).
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        let hit = u < rate;
        if hit {
            self.injected[site.index()].fetch_add(1, Relaxed);
        }
        hit
    }

    pub(crate) fn slow_worker_delay(&self) -> Duration {
        self.slow_worker_delay
    }

    pub(crate) fn stall_worker_delay(&self) -> Duration {
        self.stall_worker_delay
    }

    pub(crate) fn durability_fail_attempts(&self) -> u32 {
        self.durability_fail_attempts
    }

    /// Point-in-time injected-fault counts.
    pub(crate) fn snapshot(&self) -> ChaosSnapshot {
        let c = |s: FaultSite| self.injected[s.index()].load(Relaxed);
        ChaosSnapshot {
            seed: self.seed,
            crowd_no_shows: c(FaultSite::CrowdNoShow),
            crowd_slow_answers: c(FaultSite::CrowdSlowAnswer),
            slow_workers: c(FaultSite::SlowWorker),
            stalled_workers: c(FaultSite::StallWorker),
            resolver_panics: c(FaultSite::ResolverPanic),
            durability_io_errors: c(FaultSite::DurabilityIo),
            generation_bumps: c(FaultSite::GenerationChurn),
        }
    }
}

/// Point-in-time injected-fault counts, folded into
/// [`PlatformSnapshot`](crate::platform::PlatformSnapshot),
/// `trace_report()` and the gateway's `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// The engine's root seed (reproduce a run by reusing it).
    pub seed: u64,
    /// Crowd reserves refused by injection.
    pub crowd_no_shows: u64,
    /// Crowd answers delayed by injection.
    pub crowd_slow_answers: u64,
    /// Worker dispatches slowed by injection.
    pub slow_workers: u64,
    /// Worker dispatches stalled by injection.
    pub stalled_workers: u64,
    /// Resolver panics injected.
    pub resolver_panics: u64,
    /// WAL write errors injected.
    pub durability_io_errors: u64,
    /// Generation bumps injected.
    pub generation_bumps: u64,
}

impl ChaosSnapshot {
    /// Total faults injected across every site.
    pub fn total_injected(&self) -> u64 {
        self.crowd_no_shows
            + self.crowd_slow_answers
            + self.slow_workers
            + self.stalled_workers
            + self.resolver_panics
            + self.durability_io_errors
            + self.generation_bumps
    }
}

// ---------------------------------------------------------------------------
// Crowd-side injection: the desk decorator.
// ---------------------------------------------------------------------------

/// [`CrowdDesk`] decorator injecting crowd no-shows (refused reserves)
/// and slow answers (inflated response times). Installed around a crowd
/// city's desk when the platform runs with chaos active; everything else
/// delegates to the wrapped desk.
pub(crate) struct ChaosDesk {
    inner: Arc<dyn CrowdDesk>,
    chaos: Arc<ChaosState>,
}

impl ChaosDesk {
    pub(crate) fn new(inner: Arc<dyn CrowdDesk>, chaos: Arc<ChaosState>) -> Self {
        ChaosDesk { inner, chaos }
    }
}

impl CrowdObserve for ChaosDesk {
    fn population(&self) -> &WorkerPopulation {
        self.inner.population()
    }

    fn worker_history(&self, worker: WorkerId) -> Vec<(LandmarkId, AnswerTally)> {
        self.inner.worker_history(worker)
    }

    fn response_times(&self, worker: WorkerId) -> Vec<f64> {
        self.inner.response_times(worker)
    }

    fn response_time_stats(&self, worker: WorkerId) -> (usize, f64) {
        self.inner.response_time_stats(worker)
    }

    fn selection_snapshot(&self) -> Vec<(u32, usize, f64)> {
        self.inner.selection_snapshot()
    }

    fn outstanding(&self, worker: WorkerId) -> u32 {
        self.inner.outstanding(worker)
    }

    fn points(&self, worker: WorkerId) -> f64 {
        self.inner.points(worker)
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }
}

impl CrowdDesk for ChaosDesk {
    fn max_outstanding(&self) -> u32 {
        self.inner.max_outstanding()
    }

    fn try_reserve(&self, worker: WorkerId) -> Result<(), QuotaExhausted> {
        // A no-show presents exactly like a saturated worker: the
        // reserve is refused, the caller skips to the next candidate,
        // and a fully refused task degrades/starves through the same
        // paths a real quota storm exercises.
        if self.chaos.roll(FaultSite::CrowdNoShow) {
            return Err(QuotaExhausted {
                worker,
                outstanding: self.inner.outstanding(worker),
                max_outstanding: self.inner.max_outstanding(),
            });
        }
        self.inner.try_reserve(worker)
    }

    fn ask(&self, worker: WorkerId, landmark: &Landmark, truth: bool) -> (bool, f64) {
        let (answer, rt) = self.inner.ask(worker, landmark, truth);
        if self.chaos.roll(FaultSite::CrowdSlowAnswer) {
            return (answer, rt + self.chaos.crowd_slow_penalty_s);
        }
        (answer, rt)
    }

    fn award(&self, worker: WorkerId, points: f64) {
        self.inner.award(worker, points);
    }

    fn commit(&self, worker: WorkerId) {
        self.inner.commit(worker);
    }

    fn release(&self, worker: WorkerId) {
        self.inner.release(worker);
    }

    fn desk_stats(&self) -> DeskStats {
        self.inner.desk_stats()
    }
}

// ---------------------------------------------------------------------------
// Resolver-side injection: the panic wrapper.
// ---------------------------------------------------------------------------

/// Resolver wrapper injecting panics (contained by the worker pool's
/// `catch_unwind`; the ticket fails with `ResolverPanicked`, the worker
/// discards the resolver and rebuilds it lazily — the same path a *real*
/// resolver bug takes).
pub(crate) struct ChaosResolver {
    inner: Box<dyn Resolver + Send>,
    chaos: Arc<ChaosState>,
}

impl ChaosResolver {
    pub(crate) fn new(inner: Box<dyn Resolver + Send>, chaos: Arc<ChaosState>) -> Self {
        ChaosResolver { inner, chaos }
    }
}

impl Resolver for ChaosResolver {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        if self.chaos.roll(FaultSite::ResolverPanic) {
            panic!("chaos: injected resolver panic");
        }
        self.inner.resolve(from, to, departure, candidates)
    }
}

// ---------------------------------------------------------------------------
// Graceful degradation: the per-city crowd circuit breaker.
// ---------------------------------------------------------------------------

/// Circuit-breaker tuning for a crowd-backed city
/// (`CrowdServing::breaker`). Count-based (no clocks): deterministic
/// under test, and the open→half-open transition cannot stall when
/// traffic stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding window of recent crowd outcomes the trip decision reads.
    pub window: usize,
    /// Failure fraction within the window that trips the breaker.
    pub trip_ratio: f64,
    /// Minimum outcomes in the window before a trip is possible.
    pub min_samples: usize,
    /// Machine-only serves after a trip before the breaker half-opens
    /// and probes the crowd again.
    pub open_serves: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_ratio: 0.5,
            min_samples: 8,
            open_serves: 8,
        }
    }
}

impl BreakerConfig {
    /// Clamps every knob into its sane range.
    pub fn normalized(self) -> Self {
        let window = self.window.max(1);
        BreakerConfig {
            window,
            trip_ratio: if self.trip_ratio.is_nan() {
                1.0
            } else {
                self.trip_ratio.clamp(0.0, 1.0)
            },
            min_samples: self.min_samples.clamp(1, window),
            open_serves: self.open_serves.max(1),
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: crowd resolution.
    Closed,
    /// Tripped: machine-only resolution.
    Open,
    /// Probing: one request is testing the crowd; the rest serve
    /// machine-only.
    HalfOpen,
}

impl BreakerState {
    /// Stable name (JSON, demo columns).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Point-in-time breaker observables, surfaced per city in
/// [`PlatformSnapshot`](crate::platform::PlatformSnapshot) (and the
/// gateway's `/stats` + `/healthz`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Closed→open transitions (including failed probes re-opening).
    pub trips: u64,
    /// Half-open probes sent through the crowd.
    pub probes: u64,
    /// Successful probes closing the breaker.
    pub recoveries: u64,
    /// Requests served machine-only because the breaker was not closed.
    pub machine_serves: u64,
    /// Failures currently in the sliding window.
    pub window_failures: u32,
    /// Outcomes currently in the sliding window.
    pub window_samples: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gate {
    Closed,
    Open { remaining: u64 },
    HalfOpen { probing: bool },
}

struct BreakerWindow {
    gate: Gate,
    /// Recent crowd outcomes, `true` = starvation-class failure.
    outcomes: VecDeque<bool>,
    failures: usize,
}

/// How the breaker routes one request.
pub(crate) enum BreakerRoute {
    /// Closed: full crowd resolution.
    Crowd,
    /// Half-open: this request is the probe.
    Probe,
    /// Open (or probe already in flight): machine-only.
    Machine,
}

/// Per-city crowd circuit breaker. Shared (`Arc`) between every worker's
/// breaker resolver and the snapshot path.
pub(crate) struct CrowdBreaker {
    cfg: BreakerConfig,
    window: Mutex<BreakerWindow>,
    trips: AtomicU64,
    probes: AtomicU64,
    recoveries: AtomicU64,
    machine_serves: AtomicU64,
}

impl CrowdBreaker {
    pub(crate) fn new(cfg: BreakerConfig) -> Self {
        let cfg = cfg.normalized();
        CrowdBreaker {
            window: Mutex::new(BreakerWindow {
                gate: Gate::Closed,
                outcomes: VecDeque::with_capacity(cfg.window),
                failures: 0,
            }),
            cfg,
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            machine_serves: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerWindow> {
        // A poisoned breaker mutex must not cascade: the window is plain
        // counters, valid whatever happened to the panicking holder.
        self.window.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Routes the next request.
    pub(crate) fn admit(&self) -> BreakerRoute {
        let mut w = self.lock();
        loop {
            match w.gate {
                Gate::Closed => return BreakerRoute::Crowd,
                Gate::Open { remaining } if remaining > 0 => {
                    w.gate = Gate::Open {
                        remaining: remaining - 1,
                    };
                    self.machine_serves.fetch_add(1, Relaxed);
                    return BreakerRoute::Machine;
                }
                Gate::Open { .. } => {
                    w.gate = Gate::HalfOpen { probing: false };
                }
                Gate::HalfOpen { probing: false } => {
                    w.gate = Gate::HalfOpen { probing: true };
                    self.probes.fetch_add(1, Relaxed);
                    return BreakerRoute::Probe;
                }
                Gate::HalfOpen { probing: true } => {
                    self.machine_serves.fetch_add(1, Relaxed);
                    return BreakerRoute::Machine;
                }
            }
        }
    }

    /// Records one crowd outcome (`failed` = starvation-class).
    pub(crate) fn record(&self, probe: bool, failed: bool) {
        let mut w = self.lock();
        if probe {
            if failed {
                self.trips.fetch_add(1, Relaxed);
                w.gate = Gate::Open {
                    remaining: self.cfg.open_serves,
                };
            } else {
                self.recoveries.fetch_add(1, Relaxed);
                w.gate = Gate::Closed;
                w.outcomes.clear();
                w.failures = 0;
            }
            return;
        }
        w.outcomes.push_back(failed);
        if failed {
            w.failures += 1;
        }
        while w.outcomes.len() > self.cfg.window {
            if w.outcomes.pop_front() == Some(true) {
                w.failures -= 1;
            }
        }
        // Only a closed breaker trips from window evidence (a concurrent
        // crowd outcome may land after another worker already tripped).
        if w.gate == Gate::Closed
            && w.outcomes.len() >= self.cfg.min_samples
            && w.failures as f64 >= self.cfg.trip_ratio * w.outcomes.len() as f64
        {
            self.trips.fetch_add(1, Relaxed);
            w.gate = Gate::Open {
                remaining: self.cfg.open_serves,
            };
        }
    }

    /// Whether the breaker is currently not closed (requests degrade to
    /// machine-only).
    pub(crate) fn is_degraded(&self) -> bool {
        self.lock().gate != Gate::Closed
    }

    /// Point-in-time observables.
    pub(crate) fn snapshot(&self) -> BreakerSnapshot {
        let w = self.lock();
        BreakerSnapshot {
            state: match w.gate {
                Gate::Closed => BreakerState::Closed,
                Gate::Open { .. } => BreakerState::Open,
                Gate::HalfOpen { .. } => BreakerState::HalfOpen,
            },
            trips: self.trips.load(Relaxed),
            probes: self.probes.load(Relaxed),
            recoveries: self.recoveries.load(Relaxed),
            machine_serves: self.machine_serves.load(Relaxed),
            window_failures: w.failures as u32,
            window_samples: w.outcomes.len() as u32,
        }
    }
}

/// Resolver wrapper enforcing the breaker: closed → crowd, open →
/// machine-only (zero `CrowdStarved` surfaced to clients), half-open →
/// one probe through the crowd. A starvation-class crowd failure that
/// trips (or re-trips) the breaker is itself degraded to the machine
/// answer instead of surfacing.
pub(crate) struct BreakerResolver {
    crowd: Box<dyn Resolver + Send>,
    machine: MachineResolver,
    breaker: Arc<CrowdBreaker>,
}

impl BreakerResolver {
    pub(crate) fn new(
        crowd: Box<dyn Resolver + Send>,
        machine: MachineResolver,
        breaker: Arc<CrowdBreaker>,
    ) -> Self {
        BreakerResolver {
            crowd,
            machine,
            breaker,
        }
    }
}

impl Resolver for BreakerResolver {
    fn resolve(
        &mut self,
        from: NodeId,
        to: NodeId,
        departure: TimeOfDay,
        candidates: &[CandidateRoute],
    ) -> Result<Resolved, ServiceError> {
        let route = self.breaker.admit();
        let probe = match route {
            BreakerRoute::Machine => return self.machine.resolve(from, to, departure, candidates),
            BreakerRoute::Probe => true,
            BreakerRoute::Crowd => false,
        };
        let res = self.crowd.resolve(from, to, departure, candidates);
        let failed = match &res {
            Err(ServiceError::CrowdStarved { .. }) => true,
            Ok(r) => r.crowd.is_some_and(|c| c.starved),
            Err(_) => false,
        };
        self.breaker.record(probe, failed);
        if failed && self.breaker.is_degraded() {
            // This failure tripped (or re-tripped) the breaker: degrade
            // the triggering request too, so a tripped breaker never
            // surfaces a starvation error.
            return self.machine.resolve(from, to, departure, candidates);
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(plan: FaultPlan, seed: u64) -> ChaosState {
        ChaosState::new(&ChaosConfig::new(seed).with_plan(plan))
    }

    #[test]
    fn streams_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan {
            crowd_no_show: 0.25,
            ..FaultPlan::none()
        };
        let a = state_with(plan, 42);
        let b = state_with(plan, 42);
        let draws: Vec<bool> = (0..4096).map(|_| a.roll(FaultSite::CrowdNoShow)).collect();
        let again: Vec<bool> = (0..4096).map(|_| b.roll(FaultSite::CrowdNoShow)).collect();
        assert_eq!(draws, again, "same seed, same schedule");
        let hits = draws.iter().filter(|&&h| h).count();
        assert!(
            (700..=1350).contains(&hits),
            "25% of 4096 draws should hit roughly 1024 times, got {hits}"
        );
        assert_eq!(a.snapshot().crowd_no_shows, hits as u64);
        // Other sites' streams are untouched.
        assert_eq!(a.snapshot().slow_workers, 0);
        // A different seed gives a different schedule.
        let c = state_with(plan, 43);
        let other: Vec<bool> = (0..4096).map(|_| c.roll(FaultSite::CrowdNoShow)).collect();
        assert_ne!(draws, other);
    }

    #[test]
    fn zero_rate_sites_never_roll_and_never_advance() {
        let s = state_with(FaultPlan::none(), 7);
        for _ in 0..100 {
            for site in FaultSite::ALL {
                assert!(!s.roll(site));
            }
        }
        assert_eq!(s.snapshot().total_injected(), 0);
        // Retuning live turns the site on.
        s.set_plan(FaultPlan {
            stall_worker: 1.0,
            ..FaultPlan::none()
        });
        assert!(s.roll(FaultSite::StallWorker));
        assert_eq!(s.snapshot().stalled_workers, 1);
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let breaker = CrowdBreaker::new(BreakerConfig {
            window: 8,
            trip_ratio: 0.5,
            min_samples: 4,
            open_serves: 3,
        });
        // Healthy: everything routes to the crowd.
        for _ in 0..4 {
            assert!(matches!(breaker.admit(), BreakerRoute::Crowd));
            breaker.record(false, false);
        }
        assert_eq!(breaker.snapshot().state, BreakerState::Closed);
        // Four failures out of the last eight: trip.
        for _ in 0..4 {
            assert!(matches!(breaker.admit(), BreakerRoute::Crowd));
            breaker.record(false, true);
        }
        let snap = breaker.snapshot();
        assert_eq!(snap.state, BreakerState::Open);
        assert_eq!(snap.trips, 1);
        // `open_serves` machine-only serves…
        for _ in 0..3 {
            assert!(matches!(breaker.admit(), BreakerRoute::Machine));
        }
        // …then exactly one probe; concurrent requests stay machine.
        assert!(matches!(breaker.admit(), BreakerRoute::Probe));
        assert!(matches!(breaker.admit(), BreakerRoute::Machine));
        // Failed probe re-opens (and counts a trip).
        breaker.record(true, true);
        assert_eq!(breaker.snapshot().state, BreakerState::Open);
        assert_eq!(breaker.snapshot().trips, 2);
        for _ in 0..3 {
            assert!(matches!(breaker.admit(), BreakerRoute::Machine));
        }
        assert!(matches!(breaker.admit(), BreakerRoute::Probe));
        // Successful probe closes and clears the window.
        breaker.record(true, false);
        let snap = breaker.snapshot();
        assert_eq!(snap.state, BreakerState::Closed);
        assert_eq!(snap.recoveries, 1);
        assert_eq!(snap.probes, 2);
        assert_eq!(snap.window_samples, 0);
        assert!(matches!(breaker.admit(), BreakerRoute::Crowd));
    }
}
