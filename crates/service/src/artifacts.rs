//! The cross-batch mining-artifact cache.
//!
//! PR 4's fused mining made the miss path O(distinct origin cells) per
//! batch — but every batch still redid the all-day multi-target
//! expansion (MPR popularity tree, LDR locality scan and habit trees)
//! for an origin it expanded milliseconds earlier in a previous batch
//! or under a different time bucket. [`MiningArtifactCache`] closes
//! that gap: a bounded, per-city LRU of
//! [`OriginArtifacts`] keyed by **origin
//! grid cell** (the same coordinate the platform batcher coalesces on),
//! plus a small LRU of period-filtered transfer networks keyed by
//! canonical departure — so a new batch skips the expensive expansions
//! entirely whenever a recent batch already produced them.
//!
//! Entries are **generation-versioned** against the owning
//! [`World`]'s mining state: a
//! [`World::bump_generation`](crate::World::bump_generation) (future
//! trip ingestion, parameter mutation) makes every older entry a miss,
//! so mutation invalidates cleanly instead of serving stale expansions.
//! Hits, misses and evictions are counted in
//! [`ServiceStats`] (`artifact_hits`,
//! `artifact_misses`, `artifact_evictions`) and guarded by
//! [`StatsSnapshot::is_consistent`](crate::StatsSnapshot::is_consistent).
//!
//! Concurrency: lookups and inserts hold a mutex only around map
//! operations — never while expanding. Two workers missing the same
//! origin simultaneously may both build it; the artifacts are
//! byte-identical by construction, so the first insert wins and the
//! loser's build is used once and dropped. Across generations, newer
//! always outranks older: a slow build from a superseded generation is
//! never stored (and can never evict a fresher entry).

use crate::cache::Lru;
use crate::stats::ServiceStats;
use crate::trace::LockStats;
use crate::world::World;
use cp_mining::{OriginArtifacts, TransferNetwork};
use cp_roadnet::NodeId;
use cp_traj::TimeOfDay;
use std::sync::{Arc, Mutex};

/// Most distinct origin *nodes* kept per origin-cell key. Several
/// intersections can share a grid cell; each holds its own expansion,
/// bounded FIFO so aliasing origins cannot thrash-evict each other
/// (mirrors `ServiceConfig::cache_ods_per_key` for the candidate LRU).
const NODES_PER_CELL: usize = 4;

/// Distinct departure periods kept. Canonical departures are bucket
/// midpoints, so a handful cover the active hours of a day; each entry
/// is one O(|trips|) aggregation.
const PERIOD_CAPACITY: usize = 32;

/// One origin cell's cached artifacts: per-node entries tagged with the
/// world generation they were built against.
#[derive(Clone, Default)]
struct CellSlot {
    entries: Vec<(NodeId, u64, Arc<OriginArtifacts>)>,
}

/// One cached period transfer network, generation-tagged.
#[derive(Clone)]
struct PeriodEntry {
    generation: u64,
    network: Arc<TransferNetwork>,
}

/// The bounded, `Arc`-shareable cache of time-invariant mining
/// artifacts for one city. See the [module docs](self).
pub struct MiningArtifactCache {
    origins: Mutex<Lru<(i32, i32), CellSlot>>,
    periods: Mutex<Lru<u64, PeriodEntry>>,
    enabled: bool,
    /// Contention counters pooled over both cache mutexes (disabled
    /// unless the owning service traces).
    locks: LockStats,
}

impl MiningArtifactCache {
    /// A cache holding at most `origin_capacity` origin cells (0
    /// disables caching entirely: every lookup builds fresh, transient
    /// artifacts — fusion within one batch still works, reuse across
    /// batches does not).
    pub fn new(origin_capacity: usize) -> Self {
        MiningArtifactCache {
            origins: Mutex::new(Lru::new(origin_capacity.max(1))),
            periods: Mutex::new(Lru::new(PERIOD_CAPACITY)),
            enabled: origin_capacity > 0,
            locks: LockStats::new(),
        }
    }

    /// Whether cross-batch reuse is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Contention counters over the origin/period cache mutexes.
    /// Disabled by default; the owning service enables them when it
    /// traces.
    pub fn lock_stats(&self) -> &LockStats {
        &self.locks
    }

    /// Drops every cached expansion (used when a city is offboarded and
    /// its memory should be reclaimed promptly). Not counted as
    /// evictions: nothing can look the entries up again.
    pub fn clear(&self) {
        self.locks.lock(&self.origins).clear();
        self.locks.lock(&self.periods).clear();
    }

    /// The artifacts for `origin` (living in grid cell `cell`) at the
    /// world's current generation: a cached entry when a recent batch
    /// already expanded this origin, a fresh build otherwise. The
    /// expansion runs outside the cache lock.
    pub(crate) fn origin_artifacts(
        &self,
        world: &World,
        cell: (i32, i32),
        origin: NodeId,
        stats: &ServiceStats,
    ) -> Arc<OriginArtifacts> {
        let generation = world.generation();
        if self.enabled {
            let mut cache = self.locks.lock(&self.origins);
            if let Some(slot) = cache.get(&cell) {
                if let Some((_, _, art)) = slot
                    .entries
                    .iter()
                    .find(|(n, g, _)| *n == origin && *g == generation)
                {
                    stats.inc_artifact_hits();
                    return Arc::clone(art);
                }
            }
        }
        stats.inc_artifact_misses();
        let built = Arc::new(world.origin_artifacts(origin));
        // Store only while the build is still current: if the world's
        // generation moved past `generation` during the (slow)
        // expansion, this build is already stale — using it once is
        // fine (it was byte-correct for the inputs this caller read),
        // but caching it would evict a fresher entry a faster worker
        // may have inserted at the new generation.
        if self.enabled && world.generation() == generation {
            let mut cache = self.locks.lock(&self.origins);
            let mut slot = cache.get(&cell).cloned().unwrap_or_default();
            // Only an *older*-generation entry is superseded; a same-
            // generation entry means another worker raced us in
            // (byte-identical artifacts — keep theirs), and a newer one
            // outranks us outright.
            if let Some(i) = slot.entries.iter().position(|(n, _, _)| *n == origin) {
                if slot.entries[i].1 < generation {
                    slot.entries.remove(i);
                    stats.add_artifact_evictions(1);
                }
            }
            if !slot
                .entries
                .iter()
                .any(|(n, g, _)| *n == origin && *g >= generation)
            {
                if slot.entries.len() >= NODES_PER_CELL {
                    slot.entries.remove(0);
                    stats.add_artifact_evictions(1);
                }
                slot.entries.push((origin, generation, Arc::clone(&built)));
            }
            if let Some((_, evicted)) = cache.insert(cell, slot) {
                // An LRU capacity eviction drops a whole cell — count
                // each origin entry it held.
                stats.add_artifact_evictions(evicted.entries.len());
            }
        }
        built
    }

    /// The period-filtered transfer network for `departure` at the
    /// world's current generation (cached or freshly aggregated). Not
    /// counted in the artifact hit/miss statistics — those track the
    /// per-origin expansions the cache exists to skip.
    pub(crate) fn period_network(
        &self,
        world: &World,
        departure: TimeOfDay,
    ) -> Arc<TransferNetwork> {
        let generation = world.generation();
        let bits = departure.0.to_bits();
        if self.enabled {
            let mut cache = self.locks.lock(&self.periods);
            if let Some(entry) = cache.get(&bits) {
                if entry.generation == generation {
                    return Arc::clone(&entry.network);
                }
            }
        }
        let built = Arc::new(world.period_network(departure));
        if self.enabled {
            self.locks.lock(&self.periods).insert(
                bits,
                PeriodEntry {
                    generation,
                    network: Arc::clone(&built),
                },
            );
        }
        built
    }
}

impl std::fmt::Debug for MiningArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningArtifactCache")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_roadnet::{generate_city, CityParams};
    use cp_traj::{generate_trips, TripGenParams};

    fn mini_world() -> World {
        let city = generate_city(&CityParams::small(), 7).unwrap();
        let trips = generate_trips(&city.graph, &TripGenParams::default(), 7).unwrap();
        World::new(city.graph, trips.trips)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_artifacts() {
        let world = mini_world();
        let stats = ServiceStats::new();
        let cache = MiningArtifactCache::new(8);
        let a = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        let b = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        assert!(Arc::ptr_eq(&a, &b), "hit must share the cached artifact");
        let snap = stats.snapshot();
        assert_eq!(snap.artifact_misses, 1);
        assert_eq!(snap.artifact_hits, 1);
        assert_eq!(snap.artifact_evictions, 0);
    }

    #[test]
    fn generation_bump_invalidates_and_counts_an_eviction() {
        let world = mini_world();
        let stats = ServiceStats::new();
        let cache = MiningArtifactCache::new(8);
        let a = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        world.bump_generation();
        let b = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        assert!(!Arc::ptr_eq(&a, &b), "stale generation must rebuild");
        let snap = stats.snapshot();
        assert_eq!(snap.artifact_misses, 2);
        assert_eq!(snap.artifact_hits, 0);
        assert_eq!(snap.artifact_evictions, 1, "the stale entry was dropped");
        assert!(snap.is_consistent());
        // The rebuilt entry now hits at the new generation.
        let c = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        assert!(Arc::ptr_eq(&b, &c));
        assert_eq!(stats.snapshot().artifact_hits, 1);
    }

    #[test]
    fn per_cell_aliasing_is_bounded_fifo() {
        let world = mini_world();
        let stats = ServiceStats::new();
        let cache = MiningArtifactCache::new(8);
        // NODES_PER_CELL + 1 distinct origins aliasing one cell: the
        // first one gets FIFO-evicted.
        for n in 0..=NODES_PER_CELL as u32 {
            cache.origin_artifacts(&world, (0, 0), NodeId(n), &stats);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.artifact_misses, NODES_PER_CELL as u64 + 1);
        assert_eq!(snap.artifact_evictions, 1);
        // The evicted first origin misses again; the survivors hit.
        cache.origin_artifacts(&world, (0, 0), NodeId(NODES_PER_CELL as u32), &stats);
        assert_eq!(stats.snapshot().artifact_hits, 1);
        cache.origin_artifacts(&world, (0, 0), NodeId(0), &stats);
        assert_eq!(stats.snapshot().artifact_misses, NODES_PER_CELL as u64 + 2);
    }

    #[test]
    fn capacity_eviction_counts_every_dropped_origin() {
        let world = mini_world();
        let stats = ServiceStats::new();
        let cache = MiningArtifactCache::new(2);
        // Two origins in one cell, then two more cells: the LRU holds 2
        // cells, so inserting the 3rd cell evicts the oldest (with both
        // its origin entries).
        cache.origin_artifacts(&world, (0, 0), NodeId(1), &stats);
        cache.origin_artifacts(&world, (0, 0), NodeId(2), &stats);
        cache.origin_artifacts(&world, (1, 0), NodeId(3), &stats);
        cache.origin_artifacts(&world, (2, 0), NodeId(4), &stats);
        let snap = stats.snapshot();
        assert_eq!(snap.artifact_misses, 4);
        assert_eq!(snap.artifact_evictions, 2, "cell (0,0) held two origins");
        assert!(snap.is_consistent());
    }

    #[test]
    fn disabled_cache_always_misses_and_stores_nothing() {
        let world = mini_world();
        let stats = ServiceStats::new();
        let cache = MiningArtifactCache::new(0);
        assert!(!cache.is_enabled());
        let a = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        let b = cache.origin_artifacts(&world, (0, 0), NodeId(3), &stats);
        assert!(!Arc::ptr_eq(&a, &b));
        let snap = stats.snapshot();
        assert_eq!(snap.artifact_misses, 2);
        assert_eq!(snap.artifact_hits, 0);
        assert_eq!(snap.artifact_evictions, 0);
    }

    #[test]
    fn period_networks_are_cached_per_departure_and_generation() {
        let world = mini_world();
        let cache = MiningArtifactCache::new(8);
        let dep = TimeOfDay::from_hours(8.0);
        let a = cache.period_network(&world, dep);
        let b = cache.period_network(&world, dep);
        assert!(Arc::ptr_eq(&a, &b));
        let other = cache.period_network(&world, TimeOfDay::from_hours(9.0));
        assert!(!Arc::ptr_eq(&a, &other));
        world.bump_generation();
        let c = cache.period_network(&world, dep);
        assert!(!Arc::ptr_eq(&a, &c), "generation bump must re-aggregate");
    }
}
