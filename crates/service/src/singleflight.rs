//! Single-flight request deduplication.
//!
//! When thousands of users ask for the same OD pair at the same time (the
//! morning-commute thundering herd), resolving each request independently
//! wastes mining work and — far worse — crowd budget: the platform would
//! post the same landmark questions many times over. The flight table
//! collapses identical in-flight requests: the first caller becomes the
//! *leader* and resolves; everyone else arriving before completion
//! becomes a *follower* and blocks on a condvar until the leader
//! publishes the shared result.
//!
//! Completed flights are removed from the table, so a later identical
//! request starts a fresh flight (normally it will hit the truth store
//! instead, because the leader deposits a truth before completing).
//!
//! Leader failure is not retried here: followers receive `None` and
//! surface it as an error. The leader token publishes on drop, so a
//! panicking leader cannot strand its followers.

use crate::trace::LockStats;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug)]
enum FlightState<T> {
    Pending,
    Done(Option<T>),
}

#[derive(Debug)]
struct FlightSlot<T> {
    state: Mutex<FlightState<T>>,
    cv: Condvar,
}

/// Deduplicates concurrent work by key.
#[derive(Debug)]
pub struct FlightTable<K, T> {
    flights: Mutex<HashMap<K, Arc<FlightSlot<T>>>>,
    /// Table-mutex contention counters (disabled unless the owning
    /// service traces). Follower *waits* on a leader are not counted
    /// here — they are attributed to the `FlightWait` stage by callers.
    locks: LockStats,
}

/// Outcome of [`FlightTable::join`].
pub enum Join<'t, K: Hash + Eq + Clone, T: Clone> {
    /// This caller must do the work, then [`LeaderToken::complete`].
    Leader(LeaderToken<'t, K, T>),
    /// Another caller did the work; here is its result (`None` when the
    /// leader failed or panicked).
    Follower(Option<T>),
}

/// Outcome of [`FlightTable::join_deferred`].
pub enum JoinNow<'t, K: Hash + Eq + Clone, T: Clone> {
    /// This caller must do the work, then [`LeaderToken::complete`].
    Leader(LeaderToken<'t, K, T>),
    /// Another caller is doing the work; [`FlightWatch::wait`] for its
    /// result — but only after releasing every held [`LeaderToken`].
    Watch(FlightWatch<T>),
}

/// A handle onto another caller's in-flight work, detached from the
/// table (waiting needs no table lock).
pub struct FlightWatch<T> {
    slot: Arc<FlightSlot<T>>,
}

impl<T: Clone> FlightWatch<T> {
    /// Blocks until the flight's leader publishes and returns its
    /// result (`None` when the leader failed or panicked).
    pub fn wait(&self) -> Option<T> {
        let mut state = self.slot.state.lock().expect("flight slot poisoned");
        loop {
            match &*state {
                FlightState::Done(result) => return result.clone(),
                FlightState::Pending => {
                    state = self.slot.cv.wait(state).expect("flight slot poisoned");
                }
            }
        }
    }
}

impl<K: Hash + Eq + Clone, T: Clone> Default for FlightTable<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, T: Clone> FlightTable<K, T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlightTable {
            flights: Mutex::new(HashMap::new()),
            locks: LockStats::new(),
        }
    }

    /// Table-mutex contention counters. Disabled by default; the owning
    /// service enables them when it traces.
    pub fn lock_stats(&self) -> &LockStats {
        &self.locks
    }

    /// Joins the flight for `key`: the first caller per key leads, later
    /// callers block until the leader completes and receive its result.
    pub fn join(&self, key: K) -> Join<'_, K, T> {
        match self.join_deferred(key) {
            JoinNow::Leader(token) => Join::Leader(token),
            JoinNow::Watch(watch) => Join::Follower(watch.wait()),
        }
    }

    /// Non-blocking form of [`FlightTable::join`]: the first caller per
    /// key leads exactly as in `join`, but a follower receives a
    /// [`FlightWatch`] to wait on *later* instead of blocking inline.
    ///
    /// This is what lets a caller lead **several** flights at once (the
    /// coalesced batch path) without deadlocking: it must complete (or
    /// drop) every [`LeaderToken`] it holds *before* waiting on any
    /// watch, so it never blocks while holding an obligation another
    /// thread may be waiting for.
    pub fn join_deferred(&self, key: K) -> JoinNow<'_, K, T> {
        let slot = {
            let mut flights = self.locks.lock(&self.flights);
            if let Some(slot) = flights.get(&key) {
                Arc::clone(slot)
            } else {
                let slot = Arc::new(FlightSlot {
                    state: Mutex::new(FlightState::Pending),
                    cv: Condvar::new(),
                });
                flights.insert(key.clone(), Arc::clone(&slot));
                return JoinNow::Leader(LeaderToken {
                    table: self,
                    key: Some(key),
                    slot,
                });
            }
        };
        JoinNow::Watch(FlightWatch { slot })
    }

    /// Number of in-flight keys (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.locks.lock(&self.flights).len()
    }
}

/// Obligation to publish a result for a flight. Publishes `None` on drop
/// if [`LeaderToken::complete`] was never called, so followers are never
/// stranded.
pub struct LeaderToken<'t, K: Hash + Eq + Clone, T: Clone> {
    table: &'t FlightTable<K, T>,
    /// `Some` until published.
    key: Option<K>,
    slot: Arc<FlightSlot<T>>,
}

impl<K: Hash + Eq + Clone, T: Clone> LeaderToken<'_, K, T> {
    /// Publishes the result to all followers and retires the flight.
    pub fn complete(mut self, value: T) {
        self.publish(Some(value));
    }

    fn publish(&mut self, value: Option<T>) {
        let Some(key) = self.key.take() else {
            return;
        };
        // Retire the flight first so post-completion callers start fresh
        // (they will normally hit the truth store the leader just fed).
        self.table.locks.lock(&self.table.flights).remove(&key);
        let mut state = self.slot.state.lock().expect("flight slot poisoned");
        *state = FlightState::Done(value);
        self.slot.cv.notify_all();
    }
}

impl<K: Hash + Eq + Clone, T: Clone> Drop for LeaderToken<'_, K, T> {
    fn drop(&mut self) {
        self.publish(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_flights_each_lead() {
        let table: FlightTable<u32, u32> = FlightTable::new();
        for i in 0..3 {
            match table.join(7) {
                Join::Leader(token) => token.complete(i),
                Join::Follower(_) => panic!("no concurrency: must lead"),
            }
        }
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn followers_share_the_leader_result() {
        let table: FlightTable<u32, String> = FlightTable::new();
        let leaders = AtomicUsize::new(0);
        let followers = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match table.join(42) {
                    Join::Leader(token) => {
                        leaders.fetch_add(1, Ordering::SeqCst);
                        // Give followers time to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        token.complete("answer".to_string());
                    }
                    Join::Follower(result) => {
                        followers.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(result.as_deref(), Some("answer"));
                    }
                });
            }
        });
        // Every thread either led a (possibly new) flight or followed one;
        // with the sleep, at least one follower is effectively certain,
        // but the invariant that must always hold is leaders ≥ 1 and
        // leaders + followers == 8.
        let l = leaders.load(Ordering::SeqCst);
        let f = followers.load(Ordering::SeqCst);
        assert!(l >= 1);
        assert_eq!(l + f, 8);
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn dropped_leader_releases_followers_with_none() {
        let table: FlightTable<u32, u32> = FlightTable::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                if let Join::Leader(token) = table.join(1) {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    drop(token); // failure path: result never published
                } else {
                    panic!("first join must lead");
                }
            });
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                match table.join(1) {
                    Join::Follower(result) => assert!(result.is_none()),
                    Join::Leader(token) => {
                        // Raced past the first thread: complete normally.
                        token.complete(0);
                    }
                }
            });
        });
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn deferred_join_never_blocks_and_allows_many_leaderships() {
        let table: FlightTable<u32, u32> = FlightTable::new();
        // One caller can lead several flights at once…
        let JoinNow::Leader(t1) = table.join_deferred(1) else {
            panic!("first join must lead");
        };
        let JoinNow::Leader(t2) = table.join_deferred(2) else {
            panic!("fresh key must lead");
        };
        // …and re-joining a led key yields a watch *without blocking*
        // (a blocking join here would deadlock this single thread).
        let JoinNow::Watch(w1) = table.join_deferred(1) else {
            panic!("led key must watch");
        };
        t1.complete(10);
        assert_eq!(w1.wait(), Some(10));
        // A dropped leadership publishes failure to late watchers.
        let JoinNow::Watch(w2) = table.join_deferred(2) else {
            panic!("led key must watch");
        };
        drop(t2);
        assert_eq!(w2.wait(), None);
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let table: FlightTable<u32, u32> = FlightTable::new();
        let t1 = table.join(1);
        let t2 = table.join(2);
        assert_eq!(table.in_flight(), 2);
        match (t1, t2) {
            (Join::Leader(a), Join::Leader(b)) => {
                a.complete(10);
                b.complete(20);
            }
            _ => panic!("distinct keys must both lead"),
        }
        assert_eq!(table.in_flight(), 0);
    }
}
