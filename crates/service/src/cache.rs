//! A small, dependency-free LRU cache used for mined candidate-route
//! sets.
//!
//! Mining candidates (MPR/LDR/MFP plus the two web services) is by far
//! the most expensive step of resolving a request, and urban request
//! streams are heavily repetitive: the same OD pairs at the same times of
//! day recur constantly. The serving layer therefore memoises candidate
//! sets per *(origin cell, destination cell, time bucket)* key; this
//! module provides the bounded cache behind that memo.
//!
//! Classic design: a hash map from key to slot index plus an intrusive
//! doubly-linked recency list over a slab of slots, so `get`, `insert`
//! and eviction are all O(1).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache.
#[derive(Debug)]
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Lru {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry, releasing the values (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used
    /// entry if at capacity. Returns the evicted `(key, value)` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        if self.map.len() == self.capacity {
            // Recycle the LRU slot in place.
            let i = self.tail;
            self.unlink(i);
            let old_key = std::mem::replace(&mut self.slots[i].key, key.clone());
            let old_value = std::mem::replace(&mut self.slots[i].value, value);
            self.map.remove(&old_key);
            self.map.insert(key, i);
            self.push_front(i);
            return Some((old_key, old_value));
        }
        let i = self.slots.len();
        self.slots.push(Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(key, i);
        self.push_front(i);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut lru = Lru::new(3);
        assert!(lru.is_empty());
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("c", 3);
        assert_eq!(lru.len(), 3);
        // Touch `a`: now `b` is least recent.
        assert_eq!(lru.get(&"a"), Some(&1));
        let evicted = lru.insert("d", 4);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.get(&"d"), Some(&4));
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.capacity(), 3);
    }

    #[test]
    fn replace_updates_value_without_evicting() {
        let mut lru = Lru::new(2);
        lru.insert(1, "x");
        lru.insert(2, "y");
        assert!(lru.insert(1, "z").is_none());
        assert_eq!(lru.get(&1), Some(&"z"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn capacity_one_works() {
        let mut lru = Lru::new(1);
        lru.insert(1, 1);
        assert_eq!(lru.insert(2, 2), Some((1, 1)));
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&2));
    }

    #[test]
    fn long_churn_stays_consistent() {
        let mut lru = Lru::new(8);
        for i in 0..1000u32 {
            lru.insert(i % 13, i);
            assert!(lru.len() <= 8);
        }
        // The 8 most recent distinct keys must be present.
        let mut present = 0;
        for k in 0..13 {
            if lru.get(&k).is_some() {
                present += 1;
            }
        }
        assert_eq!(present, 8);
    }
}
