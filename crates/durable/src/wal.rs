//! Append-only event log (WAL), split into segment files.
//!
//! ## Layout
//!
//! A durability directory holds segments named `wal-<k>.log` with `k`
//! a zero-padded decimal segment index. Each segment is:
//!
//! ```text
//! header   "CPWAL001" (8 bytes) | u32 version = 1 | u64 segment_index | u64 first_seq
//! records  repeated: u32 len | u32 crc32(payload) | payload (len bytes)
//! ```
//!
//! Payloads are [`Event`] encodings whose leading `u64` is the record's
//! `wal_seq`; within a segment these chain `first_seq, first_seq+1, …`.
//!
//! ## Torn-tail tolerance
//!
//! A crash mid-append leaves a short or CRC-mismatching final frame.
//! [`read_log`] stops a segment at the first frame that is short, fails
//! its CRC, or breaks the sequence chain — everything before it is the
//! longest valid prefix and is returned; nothing after it is applied.
//! Bad *interior* state that a crashed writer cannot produce (wrong
//! magic, unknown version, a sequence gap between segments) surfaces as
//! [`DurableError::Corrupt`] instead.
//!
//! ## Writer lifecycle
//!
//! [`WalWriter::open`] always starts a **new** segment whose `first_seq`
//! continues from the last valid record on disk — it never appends to an
//! existing file, so a torn tail from a previous crash is never written
//! past (readers skip it forever). [`WalWriter::rotate`] seals the
//! current segment and starts the next; checkpointing rotates first,
//! snapshots second, then calls [`purge_segments_below`] — see the crate
//! README for why that order is crash-safe.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::{DurableError, Result};
use crate::event::Event;

const MAGIC: &[u8; 8] = b"CPWAL001";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// Upper bound on a single record payload; larger lengths in a frame
/// header are treated as tail corruption.
const MAX_RECORD: u32 = 64 << 20;

/// When the log-writer thread calls `fsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync on the hot path (OS page cache decides; fastest, may
    /// lose the last few events on power failure). Data is still
    /// flushed to the OS after every batch.
    Never,
    /// Group commit: drain the queued batch, then one fsync for the
    /// whole batch.
    Group,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:010}.log"))
}

/// Lists `(segment_index, path)` pairs in ascending index order.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((idx, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(idx, _)| *idx);
    Ok(out)
}

/// Best-effort directory fsync so renames/creates survive power loss.
/// Failure is ignored: not all filesystems support it, and the data
/// fsyncs still went through.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

struct SegmentHeader {
    segment_index: u64,
    first_seq: u64,
}

fn parse_header(buf: &[u8]) -> Result<Option<SegmentHeader>> {
    if buf.len() < HEADER_LEN {
        // Crash right at segment creation: treat the whole segment as a
        // torn tail (no records lost — none were written).
        return Ok(None);
    }
    if &buf[..8] != MAGIC {
        return Err(DurableError::Corrupt("bad WAL magic".into()));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(DurableError::Corrupt(format!(
            "unknown WAL version {version}"
        )));
    }
    let segment_index = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let first_seq = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    Ok(Some(SegmentHeader {
        segment_index,
        first_seq,
    }))
}

/// A parsed segment: its header (if the file is long enough to hold
/// one) and the decoded valid-prefix records.
type ParsedSegment = (Option<SegmentHeader>, Vec<(u64, Event)>);

/// Reads one segment's valid record prefix.
fn read_segment(path: &Path) -> Result<ParsedSegment> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let header = match parse_header(&buf)? {
        Some(h) => h,
        None => return Ok((None, Vec::new())),
    };
    let mut records = Vec::new();
    let mut expected = header.first_seq;
    let mut pos = HEADER_LEN;
    loop {
        if buf.len() - pos < 8 {
            break; // torn frame header (or clean end)
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD || buf.len() - pos - 8 < len as usize {
            break; // torn payload
        }
        let payload = &buf[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break; // torn / bit-rotted tail
        }
        let (wal_seq, event) = match Event::decode(payload) {
            Ok(r) => r,
            Err(_) => break, // undecodable despite CRC: stop, keep prefix
        };
        if wal_seq != expected {
            break; // chain broken: stop at the last good record
        }
        records.push((wal_seq, event));
        expected += 1;
        pos += 8 + len as usize;
    }
    Ok((Some(header), records))
}

/// Reads every event in the log, in `wal_seq` order, truncating any
/// torn tail. Returns an empty vec when the directory holds no
/// segments. Segments must chain contiguously (`first_seq` of each
/// equals the sequence after the previous segment's last valid record);
/// a gap means a segment was lost and surfaces as `Corrupt`.
pub fn read_log(dir: &Path) -> Result<Vec<(u64, Event)>> {
    let mut out: Vec<(u64, Event)> = Vec::new();
    let mut expected: Option<u64> = None;
    for (idx, path) in list_segments(dir)? {
        let (header, records) = read_segment(&path)?;
        let header = match header {
            Some(h) => h,
            None => continue, // embryonic segment, no records
        };
        if header.segment_index != idx {
            return Err(DurableError::Corrupt(format!(
                "segment {} claims index {}",
                path.display(),
                header.segment_index
            )));
        }
        if let Some(exp) = expected {
            if header.first_seq != exp {
                return Err(DurableError::Corrupt(format!(
                    "sequence gap: segment {idx} starts at {} but {exp} expected",
                    header.first_seq
                )));
            }
        }
        expected = Some(header.first_seq + records.len() as u64);
        out.extend(records);
    }
    Ok(out)
}

/// Deletes sealed segments with index strictly below `keep_index`.
/// Returns how many files were removed.
pub fn purge_segments_below(dir: &Path, keep_index: u64) -> Result<usize> {
    let mut removed = 0;
    for (idx, path) in list_segments(dir)? {
        if idx < keep_index {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    if removed > 0 {
        sync_dir(dir);
    }
    Ok(removed)
}

/// Appends framed events to the current segment.
pub struct WalWriter {
    dir: PathBuf,
    file: BufWriter<File>,
    segment_index: u64,
    next_seq: u64,
    bytes_written: u64,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Opens the log in `dir` (creating the directory if needed) and
    /// starts a fresh segment continuing the sequence after the last
    /// valid record on disk. Never appends to an existing segment, so a
    /// torn tail from a previous crash stays quarantined in its file.
    pub fn open(dir: &Path) -> Result<Self> {
        fs::create_dir_all(dir)?;
        let segments = list_segments(dir)?;
        let mut next_seq = 0;
        // Walk backwards to the newest segment with a parseable header;
        // its first_seq plus its valid-record count is where we resume.
        for (_, path) in segments.iter().rev() {
            let (header, records) = read_segment(path)?;
            if let Some(h) = header {
                next_seq = h.first_seq + records.len() as u64;
                break;
            }
        }
        let segment_index = segments.last().map_or(0, |(idx, _)| idx + 1);
        let file = Self::create_segment(dir, segment_index, next_seq)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            segment_index,
            next_seq,
            bytes_written: 0,
            scratch: Vec::new(),
        })
    }

    fn create_segment(dir: &Path, index: u64, first_seq: u64) -> Result<BufWriter<File>> {
        let path = segment_path(dir, index);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&index.to_le_bytes())?;
        w.write_all(&first_seq.to_le_bytes())?;
        sync_dir(dir);
        Ok(w)
    }

    /// Appends one event; returns its assigned `wal_seq`. Buffered —
    /// call [`WalWriter::flush`] or [`WalWriter::sync`] to push to the
    /// OS / to disk.
    pub fn append(&mut self, event: &Event) -> Result<u64> {
        let wal_seq = self.next_seq;
        self.scratch.clear();
        event.encode_into(wal_seq, &mut self.scratch);
        let crc = crc32(&self.scratch);
        self.file
            .write_all(&(self.scratch.len() as u32).to_le_bytes())?;
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.write_all(&self.scratch)?;
        self.bytes_written += 8 + self.scratch.len() as u64;
        self.next_seq += 1;
        Ok(wal_seq)
    }

    /// Flushes buffered frames to the OS (no fsync).
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs the current segment.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    /// Seals the current segment (flush + fsync) and starts the next.
    /// Returns the new segment's `first_seq` — the checkpoint
    /// watermark: every record with `wal_seq` below it is sealed.
    pub fn rotate(&mut self) -> Result<u64> {
        self.sync()?;
        self.segment_index += 1;
        self.file = Self::create_segment(&self.dir, self.segment_index, self.next_seq)?;
        Ok(self.next_seq)
    }

    /// The sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Index of the segment currently being written.
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Total frame bytes appended by this writer (across rotations).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(city: u32, seq: u64) -> Event {
        Event::Truth {
            city,
            seq,
            from: 1,
            to: 2,
            departure: 100.0,
            confidence: 0.5,
            edges: vec![3, 4],
        }
    }

    fn answer(city: u32, generation: u64) -> Event {
        Event::Answer {
            city,
            generation,
            worker: 0,
            landmark: 1,
            correct: true,
            response_time: 30.0,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-durable-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_rotation_and_reopen() {
        let dir = tmp_dir("roundtrip");
        let mut events = Vec::new();
        {
            let mut w = WalWriter::open(&dir).unwrap();
            for i in 0..5 {
                let ev = truth(0, i);
                assert_eq!(w.append(&ev).unwrap(), i);
                events.push(ev);
            }
            assert_eq!(w.rotate().unwrap(), 5);
            for i in 0..3 {
                let ev = answer(0, i);
                w.append(&ev).unwrap();
                events.push(ev);
            }
            w.sync().unwrap();
        }
        // Reopen continues the chain in a fresh segment.
        let mut w = WalWriter::open(&dir).unwrap();
        assert_eq!(w.next_seq(), 8);
        let ev = truth(1, 99);
        assert_eq!(w.append(&ev).unwrap(), 8);
        events.push(ev);
        w.sync().unwrap();

        let log = read_log(&dir).unwrap();
        assert_eq!(log.len(), events.len());
        for (i, ((seq, got), want)) in log.iter().zip(&events).enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(got, want);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_valid_prefix() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&dir).unwrap();
        for i in 0..4 {
            w.append(&truth(0, i)).unwrap();
        }
        w.sync().unwrap();
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        // Chop the file at every byte boundary: recovery must never
        // panic and must return a prefix of the four records.
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let log = read_log(&dir).unwrap();
            assert!(log.len() <= 4);
            for (i, (seq, _)) in log.iter().enumerate() {
                assert_eq!(*seq, i as u64);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_in_tail_record_is_dropped() {
        let dir = tmp_dir("bitflip");
        let mut w = WalWriter::open(&dir).unwrap();
        for i in 0..3 {
            w.append(&answer(0, i)).unwrap();
        }
        w.sync().unwrap();
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let log = read_log(&dir).unwrap();
        assert_eq!(log.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_keeps_unsealed_segments() {
        let dir = tmp_dir("purge");
        let mut w = WalWriter::open(&dir).unwrap();
        w.append(&truth(0, 0)).unwrap();
        let watermark = w.rotate().unwrap();
        w.append(&truth(0, 1)).unwrap();
        w.sync().unwrap();
        assert_eq!(purge_segments_below(&dir, w.segment_index()).unwrap(), 1);
        let log = read_log(&dir).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, watermark);
        fs::remove_dir_all(&dir).unwrap();
    }
}
