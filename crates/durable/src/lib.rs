//! Durability layer for the serving platform: a versioned, checksummed
//! **snapshot** format plus an **append-only event log** (WAL) of
//! committed resolutions.
//!
//! The crate is deliberately dependency-free — not even on the sibling
//! crates. Events and snapshot records carry raw `u32`/`u64`/`f64`
//! fields; the service layer converts to and from its typed world
//! (`NodeId`, `EdgeId`, `TimeOfDay`, `Path`). That keeps the on-disk
//! format decoupled from in-memory representation churn and makes the
//! formats testable in isolation.
//!
//! Two artifacts live in a durability directory:
//!
//! * `wal-<k>.log` — WAL segments ([`wal`]): length-prefixed, per-record
//!   CRC-checked frames with a monotonically chained sequence number. A
//!   torn tail (crash mid-write) truncates cleanly at the last valid
//!   record instead of poisoning recovery.
//! * `snapshot.cps` — a full-state checkpoint ([`snapshot`]): streamed
//!   sections with a whole-file CRC in the footer, written to a temp
//!   file and atomically renamed so a crash mid-snapshot leaves the
//!   previous checkpoint loadable.
//!
//! Recovery is snapshot + replay of every logged event the snapshot does
//! not already cover; the replay oracle re-applies the log alone onto a
//! fresh platform and must land entry-wise identical to the live store.
//! See `crates/durable/README.md` for byte layouts and the
//! checkpoint/truncation protocol.

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod event;
pub mod snapshot;
pub mod wal;

pub use error::{DurableError, Result};
pub use event::Event;
pub use snapshot::{
    read_snapshot, CitySnapshot, CrowdSnapshot, Snapshot, SnapshotWriter, TruthRec,
};
pub use wal::{purge_segments_below, read_log, FsyncPolicy, WalWriter};
