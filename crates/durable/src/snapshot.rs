//! Checkpoint snapshots: full platform state in one checksummed file.
//!
//! ## Layout
//!
//! `snapshot.cps` is a stream of tagged sections with a footer:
//!
//! ```text
//! "CPSNAP01" (8 bytes) | u32 version = 1
//! sections, each starting with a u8 tag:
//!   0x01 city     u32 city | u64 next_seq          (opens a city scope)
//!   0x02 truth    u64 seq | u32 from | u32 to | f64 departure
//!                 | f64 confidence | u32 n_edges | n_edges × u32
//!   0x03 crowd    u64 generation | 4 × u64 rng state
//!                 | u32 n_workers | per worker: f64 points
//!                       | u32 n_response_times | n × f64
//!                 | u32 n_history | per entry: u32 worker | u32 landmark
//!                       | u64 correct | u64 wrong
//! footer:
//!   0xFF | u64 wal_watermark | u32 city_count | u32 crc32
//! ```
//!
//! The trailing CRC covers every byte before it. Putting it in the
//! footer (rather than the header) lets the writer stream sections
//! without seeking back to patch a checksum.
//!
//! ## Atomicity
//!
//! The writer streams to `snapshot.cps.tmp`, fsyncs, then renames over
//! `snapshot.cps`. A crash mid-write leaves only a stale `.tmp`, which
//! readers ignore — the previous checkpoint stays loadable.

use std::fs::{self, File};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc::{crc32, Crc32};
use crate::error::{DurableError, Result};
use crate::event::Reader;

const MAGIC: &[u8; 8] = b"CPSNAP01";
const VERSION: u32 = 1;
const TAG_CITY: u8 = 0x01;
const TAG_TRUTH: u8 = 0x02;
const TAG_CROWD: u8 = 0x03;
const TAG_FOOTER: u8 = 0xFF;

/// File name of the live checkpoint inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.cps";
const SNAPSHOT_TMP: &str = "snapshot.cps.tmp";

/// One truth-store entry as stored on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthRec {
    /// Store-assigned global sequence number.
    pub seq: u64,
    /// Origin node id.
    pub from: u32,
    /// Destination node id.
    pub to: u32,
    /// Departure-time tag (seconds since midnight).
    pub departure: f64,
    /// Confidence at verification time.
    pub confidence: f64,
    /// The route as edge ids.
    pub edges: Vec<u32>,
}

/// Crowd-desk state for one city: answer history plus everything needed
/// to make post-recovery sampling byte-identical to an uncrashed run.
///
/// Outstanding reservation counts are deliberately absent — they track
/// in-flight requests, which do not survive a restart by definition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrowdSnapshot {
    /// Crowd-platform generation (total answers ever given).
    pub generation: u64,
    /// The crowd RNG's internal state, for exact resumption.
    pub rng: [u64; 4],
    /// Accumulated reward points per worker.
    pub points: Vec<f64>,
    /// Response-time samples per worker (same length as `points`).
    pub response_times: Vec<Vec<f64>>,
    /// Per `(worker, landmark)` answer tallies as
    /// `(worker, landmark, correct, wrong)`, sorted for determinism.
    pub history: Vec<(u32, u32, u64, u64)>,
}

/// Everything snapshotted for one city.
#[derive(Debug, Clone, PartialEq)]
pub struct CitySnapshot {
    /// Platform city id.
    pub city: u32,
    /// The truth store's next global sequence number at snapshot time.
    pub next_seq: u64,
    /// All stored truths.
    pub truths: Vec<TruthRec>,
    /// Crowd state, when the city serves with a crowd desk.
    pub crowd: Option<CrowdSnapshot>,
}

/// A fully parsed, CRC-verified snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// WAL watermark: every logged record with `wal_seq` below this was
    /// already folded into the snapshot; replay starts here.
    pub wal_watermark: u64,
    /// Per-city state, in the order the writer streamed it.
    pub cities: Vec<CitySnapshot>,
}

/// Streams a snapshot to `<dir>/snapshot.cps.tmp`, renamed into place
/// by [`SnapshotWriter::finish`]. Dropping the writer without finishing
/// removes the temp file (a killed process simply leaves it; readers
/// ignore it either way).
pub struct SnapshotWriter {
    file: BufWriter<File>,
    crc: Crc32,
    tmp: PathBuf,
    dir: PathBuf,
    cities: u32,
    finished: bool,
}

impl SnapshotWriter {
    /// Opens a temp snapshot file in `dir` (created if absent) and
    /// writes the header.
    pub fn create(dir: &Path) -> Result<Self> {
        fs::create_dir_all(dir)?;
        let tmp = dir.join(SNAPSHOT_TMP);
        let file = File::create(&tmp)?;
        let mut w = SnapshotWriter {
            file: BufWriter::new(file),
            crc: Crc32::new(),
            tmp,
            dir: dir.to_path_buf(),
            cities: 0,
            finished: false,
        };
        w.write(MAGIC)?;
        w.write(&VERSION.to_le_bytes())?;
        Ok(w)
    }

    fn write(&mut self, bytes: &[u8]) -> Result<()> {
        self.crc.update(bytes);
        self.file.write_all(bytes)?;
        Ok(())
    }

    /// Opens a city scope; subsequent truth/crowd sections belong to it.
    pub fn begin_city(&mut self, city: u32, next_seq: u64) -> Result<()> {
        self.write(&[TAG_CITY])?;
        self.write(&city.to_le_bytes())?;
        self.write(&next_seq.to_le_bytes())?;
        self.cities += 1;
        Ok(())
    }

    /// Writes one truth entry for the current city.
    pub fn truth(&mut self, rec: &TruthRec) -> Result<()> {
        self.write(&[TAG_TRUTH])?;
        self.write(&rec.seq.to_le_bytes())?;
        self.write(&rec.from.to_le_bytes())?;
        self.write(&rec.to.to_le_bytes())?;
        self.write(&rec.departure.to_le_bytes())?;
        self.write(&rec.confidence.to_le_bytes())?;
        self.write(&(rec.edges.len() as u32).to_le_bytes())?;
        for e in &rec.edges {
            self.write(&e.to_le_bytes())?;
        }
        Ok(())
    }

    /// Writes the current city's crowd state.
    pub fn crowd(&mut self, c: &CrowdSnapshot) -> Result<()> {
        assert_eq!(
            c.points.len(),
            c.response_times.len(),
            "crowd vectors disagree"
        );
        self.write(&[TAG_CROWD])?;
        self.write(&c.generation.to_le_bytes())?;
        for s in &c.rng {
            self.write(&s.to_le_bytes())?;
        }
        self.write(&(c.points.len() as u32).to_le_bytes())?;
        for (points, rts) in c.points.iter().zip(&c.response_times) {
            self.write(&points.to_le_bytes())?;
            self.write(&(rts.len() as u32).to_le_bytes())?;
            for rt in rts {
                self.write(&rt.to_le_bytes())?;
            }
        }
        self.write(&(c.history.len() as u32).to_le_bytes())?;
        for (worker, landmark, correct, wrong) in &c.history {
            self.write(&worker.to_le_bytes())?;
            self.write(&landmark.to_le_bytes())?;
            self.write(&correct.to_le_bytes())?;
            self.write(&wrong.to_le_bytes())?;
        }
        Ok(())
    }

    /// Writes the footer, fsyncs, and atomically renames the temp file
    /// over `snapshot.cps`.
    pub fn finish(mut self, wal_watermark: u64) -> Result<()> {
        self.write(&[TAG_FOOTER])?;
        self.write(&wal_watermark.to_le_bytes())?;
        let cities = self.cities;
        self.write(&cities.to_le_bytes())?;
        let crc = self.crc.finish();
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        let final_path = self.dir.join(SNAPSHOT_FILE);
        fs::rename(&self.tmp, &final_path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.finished = true;
        Ok(())
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Loads and CRC-verifies `<dir>/snapshot.cps`. `Ok(None)` when no
/// snapshot exists (a stale `.tmp` alone does not count); `Corrupt`
/// when the file exists but fails validation — a finished snapshot was
/// renamed into place atomically, so damage here is not a crash
/// artifact and must not be silently dropped.
pub fn read_snapshot(dir: &Path) -> Result<Option<Snapshot>> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut buf)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if buf.len() < 8 + 4 + 4 || &buf[..8] != MAGIC {
        return Err(DurableError::Corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(DurableError::Corrupt(format!(
            "unknown snapshot version {version}"
        )));
    }
    let body_len = buf.len() - 4;
    let stored_crc = u32::from_le_bytes(buf[body_len..].try_into().unwrap());
    if crc32(&buf[..body_len]) != stored_crc {
        return Err(DurableError::Corrupt("snapshot CRC mismatch".into()));
    }
    let mut r = Reader::new(&buf[12..body_len]);
    let mut cities: Vec<CitySnapshot> = Vec::new();
    loop {
        match r.u8()? {
            TAG_CITY => {
                let city = r.u32()?;
                let next_seq = r.u64()?;
                cities.push(CitySnapshot {
                    city,
                    next_seq,
                    truths: Vec::new(),
                    crowd: None,
                });
            }
            TAG_TRUTH => {
                let seq = r.u64()?;
                let from = r.u32()?;
                let to = r.u32()?;
                let departure = r.f64()?;
                let confidence = r.f64()?;
                let n = r.u32()? as usize;
                let mut edges = Vec::with_capacity(n.min(body_len / 4));
                for _ in 0..n {
                    edges.push(r.u32()?);
                }
                let city = cities
                    .last_mut()
                    .ok_or_else(|| DurableError::Corrupt("truth section before any city".into()))?;
                city.truths.push(TruthRec {
                    seq,
                    from,
                    to,
                    departure,
                    confidence,
                    edges,
                });
            }
            TAG_CROWD => {
                let generation = r.u64()?;
                let mut rng = [0u64; 4];
                for s in &mut rng {
                    *s = r.u64()?;
                }
                let n_workers = r.u32()? as usize;
                let mut points = Vec::with_capacity(n_workers.min(body_len / 8));
                let mut response_times = Vec::with_capacity(n_workers.min(body_len / 8));
                for _ in 0..n_workers {
                    points.push(r.f64()?);
                    let n_rts = r.u32()? as usize;
                    let mut rts = Vec::with_capacity(n_rts.min(body_len / 8));
                    for _ in 0..n_rts {
                        rts.push(r.f64()?);
                    }
                    response_times.push(rts);
                }
                let n_hist = r.u32()? as usize;
                let mut history = Vec::with_capacity(n_hist.min(body_len / 24));
                for _ in 0..n_hist {
                    let worker = r.u32()?;
                    let landmark = r.u32()?;
                    let correct = r.u64()?;
                    let wrong = r.u64()?;
                    history.push((worker, landmark, correct, wrong));
                }
                let city = cities
                    .last_mut()
                    .ok_or_else(|| DurableError::Corrupt("crowd section before any city".into()))?;
                city.crowd = Some(CrowdSnapshot {
                    generation,
                    rng,
                    points,
                    response_times,
                    history,
                });
            }
            TAG_FOOTER => {
                let wal_watermark = r.u64()?;
                let city_count = r.u32()?;
                r.expect_end()?;
                if city_count as usize != cities.len() {
                    return Err(DurableError::Corrupt(format!(
                        "footer claims {city_count} cities, found {}",
                        cities.len()
                    )));
                }
                return Ok(Some(Snapshot {
                    wal_watermark,
                    cities,
                }));
            }
            t => {
                return Err(DurableError::Corrupt(format!(
                    "unknown snapshot tag {t:#x}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cp-durable-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_crowd() -> CrowdSnapshot {
        CrowdSnapshot {
            generation: 17,
            rng: [1, 2, 3, 4],
            points: vec![1.5, 0.0],
            response_times: vec![vec![10.0, 12.0], vec![]],
            history: vec![(0, 3, 5, 1), (1, 2, 0, 2)],
        }
    }

    fn write_sample(dir: &Path, watermark: u64) -> Snapshot {
        let mut w = SnapshotWriter::create(dir).unwrap();
        w.begin_city(0, 7).unwrap();
        w.truth(&TruthRec {
            seq: 3,
            from: 1,
            to: 2,
            departure: 600.0,
            confidence: 1.0,
            edges: vec![8, 9],
        })
        .unwrap();
        w.crowd(&sample_crowd()).unwrap();
        w.begin_city(1, 0).unwrap();
        w.finish(watermark).unwrap();
        read_snapshot(dir).unwrap().unwrap()
    }

    #[test]
    fn roundtrip() {
        let dir = tmp_dir("roundtrip");
        let snap = write_sample(&dir, 41);
        assert_eq!(snap.wal_watermark, 41);
        assert_eq!(snap.cities.len(), 2);
        assert_eq!(snap.cities[0].city, 0);
        assert_eq!(snap.cities[0].next_seq, 7);
        assert_eq!(snap.cities[0].truths.len(), 1);
        assert_eq!(snap.cities[0].truths[0].edges, vec![8, 9]);
        assert_eq!(snap.cities[0].crowd.as_ref().unwrap(), &sample_crowd());
        assert!(snap.cities[1].crowd.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none_and_stale_tmp_is_ignored() {
        let dir = tmp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(read_snapshot(&dir).unwrap().is_none());
        fs::write(dir.join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
        assert!(read_snapshot(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_rewrite_keeps_previous_checkpoint() {
        let dir = tmp_dir("interrupted");
        let first = write_sample(&dir, 5);
        // Simulate a writer killed mid-stream: a partial tmp file exists
        // but was never renamed. The previous snapshot must still load.
        let mut w = SnapshotWriter::create(&dir).unwrap();
        w.begin_city(9, 100).unwrap();
        std::mem::forget(w); // killed: no finish, no Drop cleanup
        assert!(dir.join(SNAPSHOT_TMP).exists());
        let still = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(still, first);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_final_snapshot_is_an_error() {
        let dir = tmp_dir("corrupt");
        write_sample(&dir, 1);
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&dir), Err(DurableError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
