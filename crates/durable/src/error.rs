//! Error type shared by the WAL and snapshot codecs.

use std::fmt;
use std::io;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DurableError>;

/// Why a durability operation failed.
///
/// Torn tails are **not** errors — the readers truncate them silently
/// (that is the whole point of the framing). `Corrupt` is reserved for
/// damage that cannot be attributed to a crashed writer: a bad magic
/// number, an unknown version, or a snapshot whose whole-file CRC does
/// not match.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A file exists but its contents are not trustworthy.
    Corrupt(String),
    /// Recovered state does not fit the live platform (e.g. a snapshot
    /// for a city that is not registered, or a crowd section whose
    /// worker count differs from the registered population).
    Mismatch(String),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability i/o error: {e}"),
            DurableError::Corrupt(msg) => write!(f, "corrupt durability file: {msg}"),
            DurableError::Mismatch(msg) => write!(f, "recovered state mismatch: {msg}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}
