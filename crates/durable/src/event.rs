//! Logged events and their byte codec.
//!
//! One event is appended per committed effect: a truth-store commit or a
//! crowd answer. Payload layout (all integers little-endian):
//!
//! ```text
//! u64 wal_seq     chained sequence number (previous record + 1)
//! u8  kind        1 = Truth, 2 = Answer
//! u32 city        platform city id
//! ...             kind-specific fields (see below)
//! ```
//!
//! `Truth` (kind 1): `u64 seq` (store-assigned global sequence), `u32
//! from`, `u32 to` (node ids), `f64 departure`, `f64 confidence`, `u32
//! n_edges`, then `n_edges × u32` edge ids. The path is stored as edges,
//! not nodes — edge ids are unambiguous under parallel edges, so replay
//! reconstructs the exact `Path`.
//!
//! `Answer` (kind 2): `u64 generation` (crowd-platform generation after
//! this answer), `u32 worker`, `u32 landmark`, `u8 correct`, `f64
//! response_time`.

use crate::error::{DurableError, Result};

/// Event kind tag for truth commits.
pub const KIND_TRUTH: u8 = 1;
/// Event kind tag for crowd answers.
pub const KIND_ANSWER: u8 = 2;

/// A committed effect worth re-deriving state from.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A verified route entered a city's truth store.
    Truth {
        /// Platform city id.
        city: u32,
        /// Store-assigned global sequence number.
        seq: u64,
        /// Origin node id.
        from: u32,
        /// Destination node id.
        to: u32,
        /// Departure-time tag (seconds since midnight).
        departure: f64,
        /// Confidence at verification time.
        confidence: f64,
        /// The route as edge ids (unambiguous under parallel edges).
        edges: Vec<u32>,
    },
    /// A crowd worker answered a verification question.
    Answer {
        /// Platform city id.
        city: u32,
        /// Crowd-platform generation after this answer.
        generation: u64,
        /// Worker id.
        worker: u32,
        /// Landmark id the question was about.
        landmark: u32,
        /// Whether the answer matched ground truth.
        correct: bool,
        /// Sampled response time in seconds.
        response_time: f64,
    },
}

impl Event {
    /// The city the event belongs to.
    pub fn city(&self) -> u32 {
        match self {
            Event::Truth { city, .. } | Event::Answer { city, .. } => *city,
        }
    }

    /// Appends the payload (including the leading `wal_seq`) to `buf`.
    pub fn encode_into(&self, wal_seq: u64, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&wal_seq.to_le_bytes());
        match self {
            Event::Truth {
                city,
                seq,
                from,
                to,
                departure,
                confidence,
                edges,
            } => {
                buf.push(KIND_TRUTH);
                buf.extend_from_slice(&city.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&from.to_le_bytes());
                buf.extend_from_slice(&to.to_le_bytes());
                buf.extend_from_slice(&departure.to_le_bytes());
                buf.extend_from_slice(&confidence.to_le_bytes());
                buf.extend_from_slice(&(edges.len() as u32).to_le_bytes());
                for e in edges {
                    buf.extend_from_slice(&e.to_le_bytes());
                }
            }
            Event::Answer {
                city,
                generation,
                worker,
                landmark,
                correct,
                response_time,
            } => {
                buf.push(KIND_ANSWER);
                buf.extend_from_slice(&city.to_le_bytes());
                buf.extend_from_slice(&generation.to_le_bytes());
                buf.extend_from_slice(&worker.to_le_bytes());
                buf.extend_from_slice(&landmark.to_le_bytes());
                buf.push(u8::from(*correct));
                buf.extend_from_slice(&response_time.to_le_bytes());
            }
        }
    }

    /// Decodes a payload produced by [`Event::encode_into`], returning
    /// the embedded `wal_seq` and the event.
    pub fn decode(payload: &[u8]) -> Result<(u64, Event)> {
        let mut r = Reader::new(payload);
        let wal_seq = r.u64()?;
        let kind = r.u8()?;
        let ev = match kind {
            KIND_TRUTH => {
                let city = r.u32()?;
                let seq = r.u64()?;
                let from = r.u32()?;
                let to = r.u32()?;
                let departure = r.f64()?;
                let confidence = r.f64()?;
                let n = r.u32()? as usize;
                // Cap pre-allocation by what the payload can actually
                // hold, so a corrupt length cannot balloon memory.
                let mut edges = Vec::with_capacity(n.min(payload.len() / 4));
                for _ in 0..n {
                    edges.push(r.u32()?);
                }
                Event::Truth {
                    city,
                    seq,
                    from,
                    to,
                    departure,
                    confidence,
                    edges,
                }
            }
            KIND_ANSWER => {
                let city = r.u32()?;
                let generation = r.u64()?;
                let worker = r.u32()?;
                let landmark = r.u32()?;
                let correct = r.u8()? != 0;
                let response_time = r.f64()?;
                Event::Answer {
                    city,
                    generation,
                    worker,
                    landmark,
                    correct,
                    response_time,
                }
            }
            k => return Err(DurableError::Corrupt(format!("unknown event kind {k}"))),
        };
        r.expect_end()?;
        Ok((wal_seq, ev))
    }
}

/// Little-endian cursor over a byte slice; every read is bounds-checked
/// and a short payload surfaces as `Corrupt`, never a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(DurableError::Corrupt(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn expect_end(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(DurableError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_truth() -> Event {
        Event::Truth {
            city: 3,
            seq: 42,
            from: 7,
            to: 11,
            departure: 28_800.5,
            confidence: 0.875,
            edges: vec![1, 5, 9, 2],
        }
    }

    fn sample_answer() -> Event {
        Event::Answer {
            city: 1,
            generation: 100,
            worker: 6,
            landmark: 13,
            correct: true,
            response_time: 12.25,
        }
    }

    #[test]
    fn roundtrip() {
        for (seq, ev) in [(0u64, sample_truth()), (u64::MAX, sample_answer())] {
            let mut buf = Vec::new();
            ev.encode_into(seq, &mut buf);
            let (got_seq, got) = Event::decode(&buf).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(got, ev);
        }
    }

    #[test]
    fn truncated_payload_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        sample_truth().encode_into(9, &mut buf);
        for cut in 0..buf.len() {
            assert!(Event::decode(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        sample_answer().encode_into(1, &mut buf);
        buf.push(0);
        assert!(Event::decode(&buf).is_err());
    }

    #[test]
    fn corrupt_edge_count_does_not_overallocate() {
        let mut buf = Vec::new();
        sample_truth().encode_into(1, &mut buf);
        // Overwrite n_edges (at offset 8+1+4+8+4+4+8+8 = 45) with a huge value.
        buf[45..49].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Event::decode(&buf).is_err());
    }
}
